//! `HybridTm`: the adaptive hybrid transaction system.
//!
//! Wraps a [`TsxHtm`] fast path and a [`RococoTm`] slow path over one
//! shared heap, routing each transaction attempt per the module docs of
//! [`crate::router`], [`crate::conflict`] and [`crate::gate`].

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rococo_sigs::{Sig, SigScheme};
use rococo_stm::{
    Abort, AbortKind, Addr, HtmConfig, PendingCommit, RococoConfig, RococoTm, StatsSnapshot,
    TmConfig, TmHeap, TmStats, TmSystem, Transaction, TsxHtm, Word,
};

use crate::conflict::ConflictTable;
use crate::gate::{ModeGate, ModeGuard};
use crate::router::{Hysteresis, Router};

type HwTx<'a> = <TsxHtm as TmSystem>::Tx<'a>;
type SwTx<'a> = <RococoTm as TmSystem>::Tx<'a>;
type SwPending<'a> = <SwTx<'a> as Transaction>::Pending;

/// Construction parameters for [`HybridTm`].
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Shared heap size and worker count (≤ 64 threads — the HTM
    /// emulation's snoop-filter limit).
    pub tm: TmConfig,
    /// Slow-path (ROCoCoTM) parameters; its `tm` field is overridden
    /// with [`HybridConfig::tm`].
    pub rococo: RococoConfig,
    /// Fast-path (HTM emulation) parameters.
    pub htm: HtmConfig,
    /// Scheduling classes the router distinguishes (class tags are
    /// clamped into this range).
    pub classes: usize,
    /// Initial/ceiling admission bound on predicted read footprints,
    /// in words (the limited-read-set half of the admission rule).
    pub read_bound: u32,
    /// Initial/ceiling admission bound on predicted write footprints,
    /// in words (the limited-write-set half).
    pub write_bound: u32,
    /// HTM capacity aborts tolerated before a class is banned from the
    /// fast path.
    pub strike_limit: u32,
    /// Base fast-path ban length, in router-clock ticks (one tick per
    /// route); doubles per consecutive ban.
    pub cooldown: u64,
    /// Cap on the exponential ban backoff.
    pub max_streak_shift: u32,
    /// Attributed abort edges per adapt interval that make a class pair
    /// hot enough to serialize through one admission token.
    pub hot_threshold: u32,
    /// Routes between feedback-loop steps.
    pub adapt_interval: u64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            tm: TmConfig::default(),
            rococo: RococoConfig::default(),
            htm: HtmConfig::default(),
            classes: 16,
            read_bound: 256,
            write_bound: 64,
            strike_limit: 3,
            cooldown: 256,
            max_streak_shift: 6,
            hot_threshold: 32,
            adapt_interval: 1024,
        }
    }
}

/// Router/scheduler counters, all monotone.
#[derive(Debug, Default)]
struct SchedStats {
    routes_htm: AtomicU64,
    routes_sw: AtomicU64,
    /// HTM-eligible attempts redirected to software because the software
    /// mode was active (they never block).
    htm_overflow: AtomicU64,
    /// Attempts re-routed to software immediately after an HTM capacity
    /// abort — the mid-retry backend migration.
    migrations: AtomicU64,
    /// Classes banned from the fast path by the capacity hysteresis.
    capacity_bans: AtomicU64,
    /// Attempts that waited on a conflict-serialization token.
    deferrals_token: AtomicU64,
    /// Attempts that waited for the other engine's epoch to drain.
    deferrals_mode: AtomicU64,
    /// Feedback-loop steps taken.
    adapts: AtomicU64,
    commits_htm: AtomicU64,
    commits_sw: AtomicU64,
}

/// A point-in-time copy of the scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedSnapshot {
    /// Attempts routed to the HTM fast path.
    pub routes_htm: u64,
    /// Attempts routed to the ROCoCoTM slow path.
    pub routes_sw: u64,
    /// HTM-eligible attempts redirected to software (mode conflict).
    pub htm_overflow: u64,
    /// Mid-retry migrations (HTM capacity abort → software re-route).
    pub migrations: u64,
    /// Fast-path bans issued by the capacity hysteresis.
    pub capacity_bans: u64,
    /// Attempts that waited on a conflict-serialization token.
    pub deferrals_token: u64,
    /// Attempts that waited for an engine epoch to drain.
    pub deferrals_mode: u64,
    /// Feedback-loop steps taken.
    pub adapts: u64,
    /// Commits retired on the fast path.
    pub commits_htm: u64,
    /// Commits retired on the slow path.
    pub commits_sw: u64,
    /// Classes currently inside a serialization group.
    pub serialized_classes: u32,
    /// Current admission bound on predicted read footprints (words).
    pub read_bound: u32,
    /// Current admission bound on predicted write footprints (words).
    pub write_bound: u32,
}

impl SchedSnapshot {
    /// Total routing deferrals (token + mode-drain waits).
    pub fn deferrals(&self) -> u64 {
        self.deferrals_token + self.deferrals_mode
    }

    /// Publishes the scheduler counters under `rococo_sched_*`.
    pub fn export_metrics(&self, reg: &mut rococo_telemetry::MetricsRegistry) {
        let routes = "Transaction attempts routed, by chosen path";
        reg.counter(
            "rococo_sched_routes_total",
            routes,
            &[("path", "htm")],
            self.routes_htm,
        );
        reg.counter(
            "rococo_sched_routes_total",
            routes,
            &[("path", "sw")],
            self.routes_sw,
        );
        let commits = "Commits retired, by path";
        reg.counter(
            "rococo_sched_commits_total",
            commits,
            &[("path", "htm")],
            self.commits_htm,
        );
        reg.counter(
            "rococo_sched_commits_total",
            commits,
            &[("path", "sw")],
            self.commits_sw,
        );
        reg.counter(
            "rococo_sched_htm_overflow_total",
            "HTM-eligible attempts redirected to software by the mode gate",
            &[],
            self.htm_overflow,
        );
        reg.counter(
            "rococo_sched_migrations_total",
            "Mid-retry migrations (HTM capacity abort re-routed to software)",
            &[],
            self.migrations,
        );
        reg.counter(
            "rococo_sched_capacity_bans_total",
            "Fast-path bans issued by the capacity hysteresis",
            &[],
            self.capacity_bans,
        );
        let defers = "Attempts that waited before admission, by reason";
        reg.counter(
            "rococo_sched_deferrals_total",
            defers,
            &[("reason", "token")],
            self.deferrals_token,
        );
        reg.counter(
            "rococo_sched_deferrals_total",
            defers,
            &[("reason", "mode-drain")],
            self.deferrals_mode,
        );
        reg.counter(
            "rococo_sched_adapts_total",
            "Feedback-loop steps taken",
            &[],
            self.adapts,
        );
        reg.gauge(
            "rococo_sched_serialized_classes",
            "Classes currently inside a conflict-serialization group",
            &[],
            f64::from(self.serialized_classes),
        );
        reg.gauge(
            "rococo_sched_read_bound_words",
            "Current admission bound on predicted read footprints",
            &[],
            f64::from(self.read_bound),
        );
        reg.gauge(
            "rococo_sched_write_bound_words",
            "Current admission bound on predicted write footprints",
            &[],
            f64::from(self.write_bound),
        );
    }
}

#[derive(Debug, Default)]
struct AdaptState {
    last_capacity_aborts: u64,
    epoch: u64,
}

/// The adaptive hybrid transaction system. See the crate docs.
#[derive(Debug)]
pub struct HybridTm {
    heap: Arc<TmHeap>,
    rococo: RococoTm,
    htm: TsxHtm,
    /// Outer stats: the generic entry points bump starts/commits/aborts
    /// here exactly once per attempt. The engines' own stats carry only
    /// their internal counters (fallback/read-only commits, validation
    /// timings), which [`HybridTm::stats_snapshot`] folds in.
    stats: TmStats,
    gate: ModeGate,
    router: Router,
    conflicts: ConflictTable,
    scheme: SigScheme,
    /// Per-thread scheduling class, set via `set_tx_class`.
    class_of: Vec<AtomicU32>,
    /// Per-thread flag: the previous attempt died of an HTM capacity
    /// abort, so the next attempt must migrate to the software path.
    migrate_next: Vec<AtomicBool>,
    /// Router clock: one tick per route (the cooldown time base — no
    /// wall clock, so routing decisions stay deterministic under test).
    clock: AtomicU64,
    sched: SchedStats,
    adapt_state: Mutex<AdaptState>,
    config: HybridConfig,
}

impl HybridTm {
    /// Creates a hybrid system with default routing parameters.
    pub fn with_config(tm: TmConfig) -> Self {
        Self::with_configs(HybridConfig {
            tm,
            ..HybridConfig::default()
        })
    }

    /// Creates a hybrid system with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `tm.max_threads > 64` (HTM emulation limit), if
    /// `classes` is 0 or greater than 64, or on invalid ROCoCoTM
    /// parameters.
    pub fn with_configs(mut config: HybridConfig) -> Self {
        assert!(
            config.tm.max_threads <= 64,
            "the hybrid's HTM fast path supports at most 64 threads"
        );
        assert!(
            (1..=64).contains(&config.classes),
            "classes must be in 1..=64"
        );
        config.rococo.tm = config.tm;
        let heap = Arc::new(TmHeap::new(config.tm.heap_words));
        let rococo = RococoTm::with_shared_heap(config.rococo.clone(), heap.clone());
        let htm = TsxHtm::with_shared_heap(config.tm, config.htm, heap.clone());
        let scheme = rococo.scheme().clone();
        let hysteresis = Hysteresis {
            strike_limit: config.strike_limit.max(1),
            cooldown: config.cooldown.max(1),
            max_streak_shift: config.max_streak_shift,
        };
        Self {
            router: Router::new(
                config.classes,
                hysteresis,
                config.read_bound,
                config.write_bound,
            ),
            conflicts: ConflictTable::new(config.classes, scheme.clone()),
            scheme,
            class_of: (0..config.tm.max_threads)
                .map(|_| AtomicU32::new(0))
                .collect(),
            migrate_next: (0..config.tm.max_threads)
                .map(|_| AtomicBool::new(false))
                .collect(),
            heap,
            rococo,
            htm,
            stats: TmStats::default(),
            gate: ModeGate::new(),
            clock: AtomicU64::new(0),
            sched: SchedStats::default(),
            adapt_state: Mutex::new(AdaptState::default()),
            config,
        }
    }

    /// The wrapped slow-path runtime (validator handle, FPGA stats).
    pub fn rococo(&self) -> &RococoTm {
        &self.rococo
    }

    /// A point-in-time copy of the router/scheduler counters.
    pub fn sched_snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            routes_htm: self.sched.routes_htm.load(Ordering::Relaxed),
            routes_sw: self.sched.routes_sw.load(Ordering::Relaxed),
            htm_overflow: self.sched.htm_overflow.load(Ordering::Relaxed),
            migrations: self.sched.migrations.load(Ordering::Relaxed),
            capacity_bans: self.sched.capacity_bans.load(Ordering::Relaxed),
            deferrals_token: self.sched.deferrals_token.load(Ordering::Relaxed),
            deferrals_mode: self.sched.deferrals_mode.load(Ordering::Relaxed),
            adapts: self.sched.adapts.load(Ordering::Relaxed),
            commits_htm: self.sched.commits_htm.load(Ordering::Relaxed),
            commits_sw: self.sched.commits_sw.load(Ordering::Relaxed),
            serialized_classes: self.conflicts.serialized_classes(),
            read_bound: self.router.read_bound(),
            write_bound: self.router.write_bound(),
        }
    }

    /// Commit bookkeeping shared by all commit shapes; runs while the
    /// committer's mode guard is still held.
    fn on_commit(&self, thread: usize, class: usize, on_htm: bool, fp: &Footprint) {
        self.router
            .record_commit(class, fp.reads, fp.writes, on_htm);
        if fp.writes > 0 {
            self.conflicts.record_commit_writes(class, &fp.wsig);
        }
        let ctr = if on_htm {
            &self.sched.commits_htm
        } else {
            &self.sched.commits_sw
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        self.migrate_next[thread].store(false, Ordering::Relaxed);
    }

    /// Abort bookkeeping shared by all abort shapes.
    fn on_abort(&self, thread: usize, class: usize, on_htm: bool, kind: AbortKind, fp: &Footprint) {
        match kind {
            AbortKind::Capacity if on_htm => {
                self.migrate_next[thread].store(true, Ordering::Relaxed);
                let now = self.clock.load(Ordering::Relaxed);
                if self.router.record_capacity(class, now) {
                    self.sched.capacity_bans.fetch_add(1, Ordering::Relaxed);
                }
            }
            AbortKind::Conflict | AbortKind::FpgaCycle | AbortKind::FpgaWindow => {
                self.conflicts.attribute_abort(class, &fp.sig);
            }
            _ => {}
        }
    }

    /// The feedback loop: consumes the abort-cause counters the generic
    /// entry points accumulate on the outer stats (the same counters the
    /// telemetry registry exports) plus the footprint samples already
    /// folded into the router EWMAs, and adapts admission bounds and
    /// serialization groups. Skipped when another thread is mid-step.
    fn adapt(&self) {
        let Some(mut st) = self.adapt_state.try_lock() else {
            return;
        };
        self.sched.adapts.fetch_add(1, Ordering::Relaxed);
        let caps = self.stats.aborts_capacity.load(Ordering::Relaxed);
        let delta = caps.saturating_sub(st.last_capacity_aborts);
        st.last_capacity_aborts = caps;
        let now = self.clock.load(Ordering::Relaxed);
        self.router.adapt_bounds(delta, now);
        self.conflicts.adapt(self.config.hot_threshold, st.epoch);
        st.epoch += 1;
    }
}

/// Footprint bookkeeping carried by a transaction from begin to its
/// commit/abort point.
#[derive(Debug)]
struct Footprint {
    reads: u32,
    writes: u32,
    /// Read+write footprint signature (abort attribution).
    sig: Sig,
    /// Write-only footprint signature (published on commit).
    wsig: Sig,
}

#[derive(Debug)]
enum Inner<'a> {
    Htm(HwTx<'a>),
    Sw(SwTx<'a>),
}

/// A [`HybridTm`] transaction.
///
/// Field order is load-bearing: the inner transaction must drop (and
/// release its engine claims) before the mode guard retires us from the
/// epoch, and the admission token goes last.
#[derive(Debug)]
pub struct HybridTx<'a> {
    tm: &'a HybridTm,
    thread: usize,
    class: usize,
    on_htm: bool,
    fp: Footprint,
    /// Ensures `on_abort` bookkeeping fires at most once per attempt
    /// (execution-time aborts surface through `read`/`write`, which a
    /// doomed-but-still-running closure may call again).
    abort_noted: bool,
    inner: Option<Inner<'a>>,
    guard: Option<ModeGuard<'a>>,
    /// Held for its release point, never read: the conflict-serialization
    /// token covers the *execute* window only. It is released at the
    /// first commit step (`submit_commit`/`commit_seq`), before anything
    /// that can block: a committer may turn-wait on sequences whose
    /// owners are parked in other workers' pending batches, and those
    /// workers must be able to acquire our token to reach their drain.
    #[allow(dead_code)]
    token: Option<parking_lot::MutexGuard<'a, ()>>,
}

impl HybridTx<'_> {
    /// Routes execution-time aborts (capacity overflows, eager conflict
    /// detection) into the scheduler's feedback loop. Commit-time aborts
    /// take their own path through `commit_seq`/`finish`.
    fn note_abort<T>(&mut self, res: Result<T, Abort>) -> Result<T, Abort> {
        if let Err(abort) = &res {
            if !self.abort_noted {
                self.abort_noted = true;
                self.tm
                    .on_abort(self.thread, self.class, self.on_htm, abort.kind, &self.fp);
            }
        }
        res
    }
}

impl<'a> Transaction for HybridTx<'a> {
    fn read(&mut self, addr: Addr) -> Result<Word, Abort> {
        self.fp.reads += 1;
        self.tm.scheme.insert(&mut self.fp.sig, addr as u64);
        let res = match self.inner.as_mut().expect("transaction already consumed") {
            Inner::Htm(tx) => tx.read(addr),
            Inner::Sw(tx) => tx.read(addr),
        };
        self.note_abort(res)
    }

    fn write(&mut self, addr: Addr, val: Word) -> Result<(), Abort> {
        self.fp.writes += 1;
        self.tm.scheme.insert(&mut self.fp.sig, addr as u64);
        self.tm.scheme.insert(&mut self.fp.wsig, addr as u64);
        let res = match self.inner.as_mut().expect("transaction already consumed") {
            Inner::Htm(tx) => tx.write(addr, val),
            Inner::Sw(tx) => tx.write(addr, val),
        };
        self.note_abort(res)
    }

    fn commit_seq(mut self) -> Result<Option<u64>, Abort> {
        // Execute window over: release the serialization token before the
        // commit can turn-wait (deadlock freedom — see the `token` docs).
        self.token = None;
        let res = match self.inner.take().expect("transaction already consumed") {
            Inner::Htm(tx) => tx.commit_seq(),
            Inner::Sw(tx) => tx.commit_seq(),
        };
        match res {
            Ok(seq) => {
                self.tm
                    .on_commit(self.thread, self.class, self.on_htm, &self.fp);
                // Map while the guard (still a field of `self`) pins the
                // mode — the rebase invariant of [`crate::gate`].
                Ok(seq.map(|s| self.tm.gate.map_seq(self.on_htm, s)))
            }
            Err(abort) => {
                if !self.abort_noted {
                    self.abort_noted = true;
                    self.tm
                        .on_abort(self.thread, self.class, self.on_htm, abort.kind, &self.fp);
                }
                Err(abort)
            }
        }
    }

    type Pending = HybridPending<'a>;

    fn submit_commit(mut self) -> Result<HybridPending<'a>, Self> {
        // Execute window over: release the serialization token before any
        // commit step, *including* the `Err(self)` hand-backs — the
        // worker drains its pending batch before the deferred commit, and
        // that drain turn-waits on sequences whose owners may be blocked
        // acquiring this very token (deadlock freedom — see `token`).
        self.token = None;
        match self.inner.take().expect("transaction already consumed") {
            Inner::Htm(tx) => {
                // The HTM emulation settles at submit; do the commit
                // bookkeeping now, while guard and token are still held.
                let outcome = match tx.submit_commit() {
                    Ok(ready) => ready.finish(),
                    Err(tx) => {
                        self.inner = Some(Inner::Htm(tx));
                        return Err(self);
                    }
                };
                let mapped = match outcome {
                    Ok(seq) => {
                        self.tm.on_commit(self.thread, self.class, true, &self.fp);
                        Ok(seq.map(|s| self.tm.gate.map_seq(true, s)))
                    }
                    Err(abort) => {
                        if !self.abort_noted {
                            self.abort_noted = true;
                            self.tm
                                .on_abort(self.thread, self.class, true, abort.kind, &self.fp);
                        }
                        Err(abort)
                    }
                };
                Ok(HybridPending(PendingInner::Ready(mapped)))
            }
            Inner::Sw(tx) => match tx.submit_commit() {
                Ok(pending) => {
                    // The pending keeps the mode guard (software mode
                    // stays pinned until the verdict lands); the token was
                    // already released above so a hot class's next attempt
                    // can overlap our verdict wait.
                    let wsig_empty = Sig::zeroed(0);
                    let sig_empty = Sig::zeroed(0);
                    Ok(HybridPending(PendingInner::Sw {
                        tm: self.tm,
                        pending,
                        guard: self.guard.take(),
                        thread: self.thread,
                        class: self.class,
                        fp: Footprint {
                            reads: self.fp.reads,
                            writes: self.fp.writes,
                            sig: std::mem::replace(&mut self.fp.sig, sig_empty),
                            wsig: std::mem::replace(&mut self.fp.wsig, wsig_empty),
                        },
                    }))
                }
                Err(tx) => {
                    // The slow path demands a synchronous commit
                    // (irrevocable or contended commit gate): hand the
                    // rebuilt hybrid transaction back for
                    // `commit_deferred`.
                    self.inner = Some(Inner::Sw(tx));
                    Err(self)
                }
            },
        }
    }
}

/// A [`HybridTx`] whose commit was submitted. HTM commits are settled
/// already; software commits carry the ROCoCoTM pending plus the mode
/// guard that pins the software epoch until the verdict lands.
#[derive(Debug)]
pub struct HybridPending<'a>(PendingInner<'a>);

// The size skew is deliberate: a pending is created per commit on the
// hot path and lives on the worker's stack/batch vector only — boxing
// the software variant would buy a heap allocation per transaction to
// save bytes nobody keeps around.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum PendingInner<'a> {
    /// Settled at submit (HTM path).
    Ready(Result<Option<u64>, Abort>),
    /// Validation in flight on the software path.
    Sw {
        tm: &'a HybridTm,
        pending: SwPending<'a>,
        /// Pins the software mode until finished/dropped.
        guard: Option<ModeGuard<'a>>,
        thread: usize,
        class: usize,
        fp: Footprint,
    },
}

impl PendingCommit for HybridPending<'_> {
    fn finish(self) -> Result<Option<u64>, Abort> {
        match self.0 {
            PendingInner::Ready(outcome) => outcome,
            PendingInner::Sw {
                tm,
                pending,
                guard,
                thread,
                class,
                fp,
            } => {
                let out = match pending.finish() {
                    Ok(seq) => {
                        tm.on_commit(thread, class, false, &fp);
                        Ok(seq.map(|s| tm.gate.map_seq(false, s)))
                    }
                    Err(abort) => {
                        tm.on_abort(thread, class, false, abort.kind, &fp);
                        Err(abort)
                    }
                };
                // Only now release the epoch.
                drop(guard);
                out
            }
        }
    }
}

impl TmSystem for HybridTm {
    type Tx<'a> = HybridTx<'a>;

    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn heap(&self) -> &TmHeap {
        &self.heap
    }

    fn begin(&self, thread_id: usize) -> HybridTx<'_> {
        let class = (self.class_of[thread_id].load(Ordering::Relaxed) as usize)
            .min(self.router.n_classes() - 1);
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if now.is_multiple_of(self.config.adapt_interval) {
            self.adapt();
        }
        // Mid-retry migration: an attempt that just died of an HTM
        // capacity abort re-routes to the software path immediately (the
        // hysteresis ban may or may not have triggered yet).
        let migrate = self.migrate_next[thread_id].load(Ordering::Relaxed);
        let eligible = !migrate && self.router.htm_eligible(class, now);
        // Conflict serialization first, gate second — always in this
        // order, and never while holding a gate guard, so the scheduler's
        // lock graph stays acyclic.
        let token = match self.conflicts.token_for(class) {
            Some(g) => {
                let (t, waited) = self.conflicts.acquire(g);
                if waited {
                    self.sched.deferrals_token.fetch_add(1, Ordering::Relaxed);
                    rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::RouteDefer {
                        class: class as u32,
                        reason: "token",
                    });
                }
                Some(t)
            }
            None => None,
        };
        let (guard, on_htm, waited) = self.gate.enter(eligible);
        if waited {
            self.sched.deferrals_mode.fetch_add(1, Ordering::Relaxed);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::RouteDefer {
                class: class as u32,
                reason: "mode-drain",
            });
        }
        if eligible && !on_htm {
            self.sched.htm_overflow.fetch_add(1, Ordering::Relaxed);
        }
        if migrate {
            self.migrate_next[thread_id].store(false, Ordering::Relaxed);
            if !on_htm {
                self.sched.migrations.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (ctr, path) = if on_htm {
            (&self.sched.routes_htm, "htm")
        } else {
            (&self.sched.routes_sw, "sw")
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Route {
            class: class as u32,
            path,
        });
        let inner = if on_htm {
            Inner::Htm(self.htm.begin(thread_id))
        } else {
            Inner::Sw(self.rococo.begin(thread_id))
        };
        HybridTx {
            tm: self,
            thread: thread_id,
            class,
            on_htm,
            fp: Footprint {
                reads: 0,
                writes: 0,
                sig: self.scheme.new_sig(),
                wsig: self.scheme.new_sig(),
            },
            abort_noted: false,
            inner: Some(inner),
            guard: Some(guard),
            token,
        }
    }

    fn stats(&self) -> &TmStats {
        &self.stats
    }

    fn mark_phase(&self) {
        self.rococo.mark_phase();
        self.htm.mark_phase();
    }

    fn injected_faults(&self) -> Option<rococo_fpga::FaultSnapshot> {
        self.rococo.injected_faults()
    }

    fn engine_stats(&self) -> Option<rococo_fpga::EngineStats> {
        self.rococo.engine_stats()
    }

    fn set_tx_class(&self, thread_id: usize, class: u32) {
        self.class_of[thread_id].store(class, Ordering::Relaxed);
    }

    /// Merges the engines' internal counters into the outer snapshot.
    /// The outer stats carry starts/commits/aborts (bumped exactly once
    /// per attempt by the generic entry points); the engines' own stats
    /// never see those, only their internal fallback/read-only/validation
    /// counters — so this sum double-counts nothing.
    fn stats_snapshot(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        for inner in [self.rococo.stats().snapshot(), self.htm.stats().snapshot()] {
            debug_assert_eq!(inner.starts, 0, "inner engines never see entry points");
            debug_assert_eq!(inner.commits, 0, "inner engines never see entry points");
            snap.fallback_commits += inner.fallback_commits;
            snap.read_only_commits += inner.read_only_commits;
            snap.validation_ns += inner.validation_ns;
            snap.validation_model_ns += inner.validation_model_ns;
            snap.validations += inner.validations;
        }
        snap
    }

    fn export_extra_metrics(&self, reg: &mut rococo_telemetry::MetricsRegistry) {
        self.sched_snapshot().export_metrics(reg);
    }
}
