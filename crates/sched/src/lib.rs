//! # rococo-sched — adaptive hybrid transaction routing
//!
//! A fourth [`TmSystem`] implementation, [`HybridTm`], that wraps the
//! repo's best-effort HTM emulation ([`rococo_stm::TsxHtm`]) and the
//! ROCoCoTM runtime ([`rococo_stm::RococoTm`]) over one shared heap and
//! routes every transaction attempt between them:
//!
//! * **Router** ([`mod@crate::router`]): predicts each transaction's
//!   footprint from an EWMA of committed read/write-set sizes keyed by a
//!   caller-supplied class tag ([`TmSystem::set_tx_class`]), and admits
//!   to the HTM fast path only under a limited-set bound (Kafousis'
//!   admission rule). Classes that blow the hardware capacity anyway are
//!   banned for an exponentially growing cooldown (hysteresis).
//! * **Contention-aware scheduler** ([`mod@crate::conflict`]): recent
//!   abort edges between classes are tracked in a bounded,
//!   bloom-signature-approximate conflict table; hot conflicting pairs
//!   are serialized through per-group admission tokens instead of
//!   retry-storming.
//! * **Feedback loop** ([`HybridTm`]'s adapt step): consumes the
//!   abort-cause counters and footprint samples the telemetry layer
//!   already collects and adapts the admission bounds (AIMD) and the
//!   serialization groups online.
//!
//! The two engines are mutually blind (eager line snooping vs. signature
//! validation), so a mode gate ([`mod@crate::gate`]) runs them in
//! alternating epochs and rebases each engine's dense commit sequence
//! into one dense hybrid sequence — the WAL recovery invariant holds
//! even when transactions migrate between backends mid-retry.
//!
//! ```
//! use rococo_sched::{run_classed, HybridConfig, HybridTm};
//! use rococo_stm::{TmConfig, TmSystem, Transaction};
//!
//! let tm = HybridTm::with_config(TmConfig { heap_words: 1 << 10, max_threads: 2 });
//! let a = tm.heap().alloc(1);
//! run_classed(&tm, 0, 1, |tx| {
//!     let v = tx.read(a)?;
//!     tx.write(a, v + 1)
//! });
//! assert_eq!(tm.heap().load_direct(a), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conflict;
mod gate;
mod hybrid;
mod router;

pub use hybrid::{HybridConfig, HybridPending, HybridTm, HybridTx, SchedSnapshot};
pub use router::Hysteresis;

use rococo_stm::{atomically, try_atomically_seq, Abort, TmSystem};

/// Runs `body` as a class-tagged transaction, retrying until it commits
/// — [`rococo_stm::atomically`] plus a [`TmSystem::set_tx_class`] tag.
///
/// The closure is re-executable and may run on *different backends*
/// across retries (the hybrid router migrates capacity-aborted attempts
/// from the HTM fast path to the software path), so the usual rule is
/// stricter than it looks: side effects must be idempotent across
/// engines, not just across retries of one engine.
pub fn run_classed<S, R, F>(system: &S, thread_id: usize, class: u32, body: F) -> R
where
    S: TmSystem + ?Sized,
    F: FnMut(&mut S::Tx<'_>) -> Result<R, Abort>,
{
    system.set_tx_class(thread_id, class);
    atomically(system, thread_id, body)
}

/// One class-tagged transaction attempt reporting the durable commit
/// sequence — [`rococo_stm::try_atomically_seq`] plus a
/// [`TmSystem::set_tx_class`] tag. The closure may re-execute on a
/// different backend on the caller's next attempt (see [`run_classed`]).
///
/// # Errors
///
/// Returns the [`Abort`] if either the closure or the commit aborts.
pub fn try_classed<S, R, F>(
    system: &S,
    thread_id: usize,
    class: u32,
    body: &mut F,
) -> Result<(R, Option<u64>), Abort>
where
    S: TmSystem + ?Sized,
    F: FnMut(&mut S::Tx<'_>) -> Result<R, Abort>,
{
    system.set_tx_class(thread_id, class);
    try_atomically_seq(system, thread_id, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{
        finish_submitted, try_submit, AbortKind, HtmConfig, Submitted, TmConfig, TmSystem,
        Transaction,
    };
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn small_tm() -> HybridTm {
        HybridTm::with_config(TmConfig {
            heap_words: 1 << 12,
            max_threads: 4,
        })
    }

    /// An HTM sized so any transaction writing ≥ 2 distinct lines
    /// capacity-aborts — forcing mid-retry migration to the slow path.
    fn tiny_htm_tm(classes: usize) -> HybridTm {
        HybridTm::with_configs(HybridConfig {
            tm: TmConfig {
                heap_words: 1 << 12,
                max_threads: 4,
            },
            htm: HtmConfig {
                line_shift: 0,
                write_sets: 1,
                write_ways: 1,
                read_capacity: 4096,
                max_attempts: 5,
            },
            classes,
            cooldown: 8,
            strike_limit: 2,
            ..HybridConfig::default()
        })
    }

    #[test]
    fn read_write_commit_roundtrip() {
        let tm = small_tm();
        let a = tm.heap().alloc(2);
        run_classed(&tm, 0, 0, |tx| {
            tx.write(a, 7)?;
            tx.write(a + 1, 9)
        });
        let (sum, _) = try_classed(&tm, 0, 0, &mut |tx: &mut HybridTx<'_>| {
            Ok(tx.read(a)? + tx.read(a + 1)?)
        })
        .unwrap();
        assert_eq!(sum, 16);
        let snap = tm.sched_snapshot();
        assert_eq!(snap.routes_htm + snap.routes_sw, 2);
        assert!(snap.commits_htm + snap.commits_sw == 2);
    }

    #[test]
    fn counters_stay_consistent_across_threads() {
        let tm = Arc::new(small_tm());
        let base = tm.heap().alloc(64);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let tm = tm.clone();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let addr = base + ((t as u64 * 7 + i) % 64) as usize;
                        run_classed(&*tm, t, (i % 3) as u32, |tx| {
                            let v = tx.read(addr)?;
                            tx.write(addr, v + 1)
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = tm.stats_snapshot();
        assert_eq!(snap.commits, 800, "one commit per closure success");
        let sched = tm.sched_snapshot();
        assert_eq!(
            sched.commits_htm + sched.commits_sw,
            800,
            "per-path commits partition total commits"
        );
        let total: u64 = (0..64).map(|i| tm.heap().load_direct(base + i)).sum();
        assert_eq!(total, 800, "no lost updates across engines");
    }

    #[test]
    fn capacity_abort_migrates_mid_retry_and_bans_with_hysteresis() {
        let tm = tiny_htm_tm(4);
        let a = tm.heap().alloc(8);
        // Class 5 clamps into range; writes 4 distinct lines ⇒ blows the
        // 1×1 write cache on the HTM path every time.
        for round in 0..8u64 {
            run_classed(&tm, 0, 3, |tx| {
                for k in 0..4 {
                    let addr = a + k;
                    let v = tx.read(addr)?;
                    tx.write(addr, v + round)?;
                }
                Ok(())
            });
        }
        let snap = tm.sched_snapshot();
        assert!(snap.migrations > 0, "capacity abort must migrate to sw");
        assert!(snap.capacity_bans > 0, "repeat offenders must be banned");
        assert!(snap.routes_sw >= snap.migrations);
        let stats = tm.stats_snapshot();
        assert!(
            stats.aborts.get(&AbortKind::Capacity).copied().unwrap_or(0) > 0,
            "outer stats carry the capacity aborts"
        );
    }

    #[test]
    fn hybrid_sequences_stay_dense_across_migrations() {
        let tm = tiny_htm_tm(2);
        let a = tm.heap().alloc(8);
        let mut seqs = Vec::new();
        for i in 0..40u64 {
            // Alternate small (HTM-fitting) and large (capacity-aborting,
            // migrating) transactions so commits interleave engines.
            let wide = i % 2 == 0;
            let (_, seq) = try_run(&tm, 0, |tx| {
                let n = if wide { 4 } else { 1 };
                for k in 0..n {
                    let v = tx.read(a + k)?;
                    tx.write(a + k, v + 1)?;
                }
                Ok(())
            });
            seqs.push(seq.expect("read-write commit must carry a seq"));
        }
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        let expect: Vec<u64> = (0..40).collect();
        assert_eq!(sorted, expect, "hybrid seq must stay dense: {seqs:?}");
    }

    /// Retry loop returning the commit sequence of the winning attempt.
    fn try_run<F>(tm: &HybridTm, thread: usize, mut body: F) -> ((), Option<u64>)
    where
        F: FnMut(&mut HybridTx<'_>) -> Result<(), rococo_stm::Abort>,
    {
        loop {
            match try_classed(tm, thread, 0, &mut body) {
                Ok(r) => return r,
                Err(_) => continue,
            }
        }
    }

    #[test]
    fn submit_finish_path_works_and_holds_the_epoch() {
        let tm = small_tm();
        let a = tm.heap().alloc(1);
        let submitted = try_submit(&tm, 0, &mut |tx: &mut HybridTx<'_>| {
            let v = tx.read(a)?;
            tx.write(a, v + 5)
        });
        match submitted {
            Submitted::Pending(p, ()) => {
                let seq = finish_submitted(&tm, p).unwrap();
                assert!(seq.is_some());
            }
            Submitted::Deferred(tx, ()) => {
                rococo_stm::commit_deferred(&tm, tx).unwrap();
            }
            Submitted::Aborted(a) => panic!("unexpected abort: {a}"),
        }
        assert_eq!(tm.heap().load_direct(a), 5);
        assert_eq!(tm.stats_snapshot().commits, 1);
    }

    #[test]
    fn inner_validation_counters_surface_without_double_counting() {
        // Bounds of 2 words: the 4-read/4-write class's EWMA exceeds them
        // after its first commit, so later routes take the software path.
        let tm = HybridTm::with_configs(HybridConfig {
            tm: TmConfig {
                heap_words: 1 << 12,
                max_threads: 4,
            },
            read_bound: 2,
            write_bound: 2,
            ..HybridConfig::default()
        });
        let a = tm.heap().alloc(4);
        // Big-footprint class predictions route to the software path,
        // whose commits run FPGA validation.
        for i in 0..50u64 {
            run_classed(&tm, 0, 1, |tx| {
                for k in 0..4 {
                    let v = tx.read(a + k)?;
                    tx.write(a + k, v + i)?;
                }
                Ok(())
            });
        }
        let merged = tm.stats_snapshot();
        let outer = tm.stats().snapshot();
        assert_eq!(merged.commits, outer.commits, "commits from outer only");
        assert_eq!(merged.starts, outer.starts);
        let sw = tm.sched_snapshot().commits_sw;
        assert!(sw > 0, "EWMA must push the wide class to the slow path");
        assert!(
            merged.validations >= sw.saturating_sub(1),
            "slow-path commits validate ({} validations, {sw} sw commits)",
            merged.validations,
        );
        assert_eq!(outer.validations, 0, "outer stats never see validation");
    }

    #[test]
    fn export_extra_metrics_emits_sched_family() {
        let tm = small_tm();
        let a = tm.heap().alloc(1);
        run_classed(&tm, 0, 0, |tx| {
            let v = tx.read(a)?;
            tx.write(a, v + 1)
        });
        let mut reg = rococo_telemetry::MetricsRegistry::new();
        tm.export_extra_metrics(&mut reg);
        let text = reg.render_prometheus();
        for family in [
            "rococo_sched_routes_total",
            "rococo_sched_commits_total",
            "rococo_sched_migrations_total",
            "rococo_sched_deferrals_total",
            "rococo_sched_read_bound_words",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn conflict_storm_forms_serialization_group() {
        // Two classes hammering one word with tiny adapt interval: the
        // conflict table must eventually serialize them through a token.
        let tm = HybridTm::with_configs(HybridConfig {
            tm: TmConfig {
                heap_words: 1 << 10,
                max_threads: 4,
            },
            adapt_interval: 64,
            hot_threshold: 4,
            ..HybridConfig::default()
        });
        let tm = Arc::new(tm);
        let hot = tm.heap().alloc(1);
        let stop = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..2)
            .map(|t| {
                let tm = tm.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    for _ in 0..3000 {
                        run_classed(&*tm, t, t as u32, |tx| {
                            let v = tx.read(hot)?;
                            tx.write(hot, v + 1)
                        });
                        if stop.load(Ordering::Relaxed) > 0 {
                            break;
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(tm.heap().load_direct(hot), tm.stats_snapshot().commits);
        // The storm may or may not persist long enough to trip the
        // threshold on a 1-core box, but the adapt loop must have run.
        assert!(tm.sched_snapshot().adapts > 0);
    }
}
