//! The mode gate: group mutual exclusion between the HTM and software
//! engines, plus the per-mode commit-sequence rebasing that keeps the
//! hybrid's durable sequence dense.
//!
//! # Why a gate at all
//!
//! The two wrapped engines detect conflicts through mechanisms that are
//! blind to each other: the HTM emulation snoops its own line table
//! eagerly, ROCoCoTM validates read/write signatures against its commit
//! queue. A software commit would be invisible to a concurrently running
//! hardware transaction and vice versa. The gate therefore admits
//! transactions in *epochs*: at any instant every in-flight transaction
//! (including software transactions whose validation verdict is still
//! pending) runs on the same engine. This is the classic phased approach
//! of hybrid TMs — cheap, and safe by construction.
//!
//! # Deadlock freedom
//!
//! A blocked `enter` holds no gate resource, and everything that *does*
//! hold the gate makes progress without acquiring anything new:
//!
//! * HTM-mode guards are held only between `begin` and the submit point
//!   (hardware commits settle synchronously at submit), so an HTM epoch
//!   drains as soon as its runners stop being admitted.
//! * Software-mode guards may additionally be parked inside pending
//!   commits, but a worker holding software pendings can never be the
//!   one waiting: its pendings pin the mode to software, and nobody
//!   waits while the software mode is active (every transaction may run
//!   on the software path).
//!
//! # Dense sequences across mode switches
//!
//! Both engines hand out their own dense `commit_seq` starting at 0. The
//! hybrid maps an inner sequence to `base[mode] + inner`, where
//! `base[mode]` is re-pinned at every mode switch (which happens under
//! the gate mutex with zero active transactions) so that the mapped
//! stream stays dense and monotone in serialization order — the WAL
//! recovery invariant.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Which engine currently owns the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// No transaction in flight; the next arrival picks the mode.
    Idle,
    /// Hardware (HTM-emulation) epoch.
    Htm,
    /// Software (ROCoCoTM) epoch.
    Sw,
}

#[derive(Debug)]
struct GateState {
    mode: Mode,
    /// Guards outstanding in the current epoch.
    active: usize,
    /// Blocked entrants (they wait only while an HTM epoch drains).
    waiting: usize,
    /// Owner of the previous non-idle epoch — the sequence-rebasing
    /// reference for the next switch.
    last_mode: Mode,
}

/// The two-engine admission gate. See the module docs.
#[derive(Debug)]
pub(crate) struct ModeGate {
    state: Mutex<GateState>,
    /// `hybrid_seq = base[mode] + inner_seq`. Written only at Idle→mode
    /// transitions under the state mutex (no transaction in flight);
    /// committers read it while holding a mode guard, and the mutex
    /// release/acquire pair orders the write before every read of the
    /// epoch it opens.
    base_htm: AtomicU64,
    base_sw: AtomicU64,
    /// One past the highest inner sequence committed on each engine
    /// (updated with `fetch_max` inside the commit bookkeeping, i.e.
    /// before the committing transaction's guard is released).
    granted_htm: AtomicU64,
    granted_sw: AtomicU64,
}

/// Membership in the current epoch; dropping it retires the transaction
/// from the gate (the last one out returns the gate to idle). The chosen
/// engine is reported by `enter`'s return value — the guard itself only
/// tracks membership.
#[derive(Debug)]
pub(crate) struct ModeGuard<'a> {
    gate: &'a ModeGate,
}

impl Drop for ModeGuard<'_> {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock();
        s.active -= 1;
        if s.active == 0 {
            s.mode = Mode::Idle;
        }
    }
}

impl ModeGate {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(GateState {
                mode: Mode::Idle,
                active: 0,
                waiting: 0,
                last_mode: Mode::Idle,
            }),
            base_htm: AtomicU64::new(0),
            base_sw: AtomicU64::new(0),
            granted_htm: AtomicU64::new(0),
            granted_sw: AtomicU64::new(0),
        }
    }

    /// Admits one transaction. `want_htm` requests the HTM fast path;
    /// the returned flag reports which engine actually admitted. An
    /// HTM-eligible transaction is redirected to the software path
    /// rather than blocked whenever the software mode is active (or a
    /// software transaction is already waiting for the HTM epoch to
    /// drain — redirecting keeps the drain short). The only blocking
    /// case is waiting out a draining HTM epoch, which terminates
    /// because draining epochs admit nobody.
    ///
    /// Returns `(guard, on_htm, waited)`.
    pub(crate) fn enter(&self, want_htm: bool) -> (ModeGuard<'_>, bool, bool) {
        let mut registered = false;
        let mut waited = false;
        loop {
            let mut s = self.state.lock();
            let others_waiting = s.waiting - usize::from(registered);
            // Admission runs entirely under the state mutex: the rebase
            // store must be ordered before any other entrant of the new
            // epoch can read `base_*`.
            let admit =
                |mut s: parking_lot::MutexGuard<'_, GateState>, htm: bool, registered: bool| {
                    s.active += 1;
                    if registered {
                        s.waiting -= 1;
                    }
                    s.mode = if htm { Mode::Htm } else { Mode::Sw };
                    if s.last_mode != s.mode {
                        s.last_mode = s.mode;
                        self.rebase(s.mode);
                    }
                };
            match s.mode {
                Mode::Idle => {
                    // Opening a new epoch. Software is always legal; the
                    // fast path is taken only when this transaction wants
                    // it and no other (possibly software-bound) waiter is
                    // queued behind us.
                    let htm = want_htm && others_waiting == 0;
                    admit(s, htm, registered);
                    return (ModeGuard { gate: self }, htm, waited);
                }
                Mode::Sw => {
                    admit(s, false, registered);
                    return (ModeGuard { gate: self }, false, waited);
                }
                Mode::Htm => {
                    if want_htm && others_waiting == 0 {
                        admit(s, true, registered);
                        return (ModeGuard { gate: self }, true, waited);
                    }
                    // Wait for the HTM epoch to drain. We hold nothing
                    // the drain depends on (see the module docs).
                    if !registered {
                        s.waiting += 1;
                        registered = true;
                    }
                    waited = true;
                    drop(s);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Re-pins `base[to]` so the hybrid sequence stream continues densely
    /// from wherever the previous epoch left off. Called under the state
    /// mutex at a mode switch (so no transaction of either epoch is in
    /// flight), and every committer of the new epoch acquires that mutex
    /// in `enter` after us — ordering these plain stores before their
    /// `map_seq` loads. The total sequences consumed so far is
    /// `base[p] + granted[p]` of the previous mode `p`; the other mode's
    /// pair is a stale (smaller) total from its last epoch, so the max
    /// picks the right one without tracking `p` explicitly.
    fn rebase(&self, to: Mode) {
        debug_assert!(to != Mode::Idle);
        let consumed_htm =
            self.base_htm.load(Ordering::Relaxed) + self.granted_htm.load(Ordering::Relaxed);
        let consumed_sw =
            self.base_sw.load(Ordering::Relaxed) + self.granted_sw.load(Ordering::Relaxed);
        let consumed = consumed_htm.max(consumed_sw);
        match to {
            Mode::Htm => self.base_htm.store(
                consumed - self.granted_htm.load(Ordering::Relaxed),
                Ordering::Relaxed,
            ),
            Mode::Sw => self.base_sw.store(
                consumed - self.granted_sw.load(Ordering::Relaxed),
                Ordering::Relaxed,
            ),
            Mode::Idle => unreachable!(),
        }
    }

    /// Maps an engine-local commit sequence to the hybrid's dense global
    /// sequence. Must be called while the committing transaction still
    /// holds its mode guard (every caller does: the bookkeeping runs
    /// before the guard is dropped).
    pub(crate) fn map_seq(&self, on_htm: bool, inner: u64) -> u64 {
        let (base, granted) = if on_htm {
            (&self.base_htm, &self.granted_htm)
        } else {
            (&self.base_sw, &self.granted_sw)
        };
        granted.fetch_max(inner + 1, Ordering::Relaxed);
        base.load(Ordering::Relaxed) + inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn htm_joins_htm_epoch_and_sw_waits() {
        let gate = ModeGate::new();
        let (g1, on1, w1) = gate.enter(true);
        assert!(on1 && !w1);
        // rococo-lint: allow(lock-order-cycle) -- test holds two same-epoch guards on purpose: same-mode joiners are admitted without blocking, so the re-entry cannot wedge
        let (g2, on2, _) = gate.enter(true);
        assert!(on2, "second HTM-eligible joins the epoch");
        drop(g1);
        drop(g2);
        let (g3, on3, _) = gate.enter(false);
        assert!(!on3);
        // HTM-eligible arrivals during a software epoch run software.
        // rococo-lint: allow(lock-order-cycle) -- test holds a software-epoch guard while an HTM-eligible arrival enters; the gate redirects it to software (asserted below) rather than blocking
        let (g4, on4, w4) = gate.enter(true);
        assert!(!on4 && !w4, "eligible transaction redirected, not blocked");
        drop(g3);
        drop(g4);
    }

    #[test]
    fn sequences_stay_dense_across_mode_flips() {
        let gate = ModeGate::new();
        let mut next_inner_htm = 0u64;
        let mut next_inner_sw = 0u64;
        let mut seen = Vec::new();
        for round in 0..6 {
            let htm = round % 2 == 0;
            let (guard, on, _) = gate.enter(htm);
            assert_eq!(on, htm);
            for _ in 0..3 {
                let inner = if on {
                    let s = next_inner_htm;
                    next_inner_htm += 1;
                    s
                } else {
                    let s = next_inner_sw;
                    next_inner_sw += 1;
                    s
                };
                seen.push(gate.map_seq(on, inner));
            }
            drop(guard);
        }
        let expect: Vec<u64> = (0..seen.len() as u64).collect();
        assert_eq!(seen, expect, "hybrid sequence must be dense and in order");
    }

    #[test]
    fn concurrent_epochs_never_mix() {
        use std::sync::atomic::{AtomicBool, AtomicUsize};
        use std::sync::Arc;
        let gate = Arc::new(ModeGate::new());
        let in_htm = Arc::new(AtomicUsize::new(0));
        let in_sw = Arc::new(AtomicUsize::new(0));
        let mixed = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..4 {
            let gate = gate.clone();
            let in_htm = in_htm.clone();
            let in_sw = in_sw.clone();
            let mixed = mixed.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let want = (t + i) % 2 == 0;
                    let (guard, on, _) = gate.enter(want);
                    let (mine, other) = if on {
                        (&in_htm, &in_sw)
                    } else {
                        (&in_sw, &in_htm)
                    };
                    mine.fetch_add(1, Ordering::SeqCst);
                    if other.load(Ordering::SeqCst) > 0 {
                        mixed.store(true, Ordering::SeqCst);
                    }
                    // rococo-lint: allow(guard-across-wait) -- single bounded spin hint inside the epoch, deliberately widening the overlap window this test measures; the guard drops right after
                    std::hint::spin_loop();
                    mine.fetch_sub(1, Ordering::SeqCst);
                    drop(guard);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            !mixed.load(Ordering::SeqCst),
            "observed both engines active at once"
        );
    }
}
