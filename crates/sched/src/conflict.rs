//! The contention-aware conflict table.
//!
//! Tracks *recent abort edges between scheduling classes* in a bounded,
//! signature-approximate structure: each class keeps a bloom signature
//! of its recently committed write sets ([`rococo_sigs::Sig`], the same
//! scheme the FPGA validator uses), and an aborting transaction
//! attributes its abort to every class whose write signature may
//! intersect its own footprint signature. Attribution heats a dense
//! `classes × classes` edge matrix; the periodic adapt step thresholds
//! the matrix into *serialization groups* (connected components of hot
//! edges) and assigns each group one admission token. Members of a hot
//! group acquire the token for the execute window of every attempt, so
//! conflicting classes take turns instead of retry-storming.
//!
//! Everything here is advisory: a stale group assignment or a bloom
//! false positive only costs scheduling quality (an unnecessary wait or
//! a missed serialization) — serializability is always enforced by the
//! underlying engines.
//!
//! # Starvation
//!
//! Tokens are plain mutexes held only between route and the *first
//! commit step* — never across a commit turn-wait, a verdict wait, or
//! into a pending commit — and token acquire always precedes gate entry
//! (tokens are never requested while a gate guard is held), so the
//! token graph is a forest of depth one and cannot deadlock. Waiters
//! make progress because every holder reaches its commit point without
//! blocking: transactional reads abort on spin-budget overrun instead
//! of waiting, and everything that *can* wait indefinitely (the dense
//! commit-sequence turn-wait) runs after the token is released.

use std::sync::atomic::{AtomicU32, Ordering};

use parking_lot::{Mutex, MutexGuard};
use rococo_sigs::{Sig, SigScheme};

/// Group sentinel: the class is not in any serialization group.
const NO_GROUP: u32 = u32::MAX;

/// See the module docs.
#[derive(Debug)]
pub(crate) struct ConflictTable {
    scheme: SigScheme,
    n: usize,
    /// Per-class signature of recently committed write sets; cleared
    /// periodically by [`ConflictTable::adapt`] so stale footprints age
    /// out.
    write_sigs: Vec<Mutex<Sig>>,
    /// `heat[a * n + b]`: recent aborts of class `a` attributed to class
    /// `b`'s writes. Decayed by the adapt step.
    heat: Vec<AtomicU32>,
    /// Serialization group of each class (`NO_GROUP` or the group's
    /// smallest class id, whose token the whole group shares).
    group_of: Vec<AtomicU32>,
    /// One potential admission token per class; only tokens of group
    /// leaders are ever locked.
    tokens: Vec<Mutex<()>>,
}

impl ConflictTable {
    pub(crate) fn new(n: usize, scheme: SigScheme) -> Self {
        Self {
            write_sigs: (0..n).map(|_| Mutex::new(scheme.new_sig())).collect(),
            heat: (0..n * n).map(|_| AtomicU32::new(0)).collect(),
            group_of: (0..n).map(|_| AtomicU32::new(NO_GROUP)).collect(),
            tokens: (0..n).map(|_| Mutex::new(())).collect(),
            scheme,
            n,
        }
    }

    /// Folds a committed write footprint into the class's signature.
    pub(crate) fn record_commit_writes(&self, class: usize, wsig: &Sig) {
        self.write_sigs[class].lock().union_with(wsig);
    }

    /// Attributes one conflict abort of `class` (whose read+write
    /// footprint signature is `sig`) to every class whose recent writes
    /// may intersect it — including `class` itself: a class fighting
    /// over its own hot keys is the most common case and is exactly what
    /// a self-edge serializes.
    pub(crate) fn attribute_abort(&self, class: usize, sig: &Sig) {
        for other in 0..self.n {
            // `try_lock`: attribution is best-effort and must never make
            // the abort path wait on the scheduler.
            let Some(wsig) = self.write_sigs[other].try_lock() else {
                continue;
            };
            if self.scheme.sets_may_intersect(sig, &wsig) {
                self.heat[class * self.n + other].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The admission token `class` must hold, if any.
    pub(crate) fn token_for(&self, class: usize) -> Option<usize> {
        let g = self.group_of[class].load(Ordering::Relaxed);
        (g != NO_GROUP).then_some(g as usize)
    }

    /// Acquires group token `g`. Returns the guard and whether the
    /// caller had to wait (deferral accounting).
    pub(crate) fn acquire(&self, g: usize) -> (MutexGuard<'_, ()>, bool) {
        match self.tokens[g].try_lock() {
            Some(guard) => (guard, false),
            None => (self.tokens[g].lock(), true),
        }
    }

    /// Recomputes serialization groups from the heat matrix, then decays
    /// it. Classes joined by an edge with combined heat ≥ `hot_threshold`
    /// (or a self-edge at half weight — self-conflicts need no pair to
    /// storm) land in one group keyed by the smallest member. Every 4th
    /// epoch the write signatures are cleared so attribution tracks the
    /// *recent* write sets, not all history.
    pub(crate) fn adapt(&self, hot_threshold: u32, epoch: u64) {
        let n = self.n;
        let hot = |a: usize, b: usize| {
            let h = self.heat[a * n + b].load(Ordering::Relaxed)
                + self.heat[b * n + a].load(Ordering::Relaxed);
            if a == b {
                h >= hot_threshold.div_ceil(2).max(1)
            } else {
                h >= hot_threshold.max(1)
            }
        };
        // Tiny-n union-find over hot edges.
        let mut leader: Vec<usize> = (0..n).collect();
        fn find(leader: &mut [usize], mut x: usize) -> usize {
            while leader[x] != x {
                leader[x] = leader[leader[x]];
                x = leader[x];
            }
            x
        }
        let mut in_group = vec![false; n];
        for a in 0..n {
            if hot(a, a) {
                in_group[a] = true;
            }
            for b in (a + 1)..n {
                if hot(a, b) {
                    in_group[a] = true;
                    in_group[b] = true;
                    let (ra, rb) = (find(&mut leader, a), find(&mut leader, b));
                    let (lo, hi) = (ra.min(rb), ra.max(rb));
                    leader[hi] = lo;
                }
            }
        }
        for c in 0..n {
            let g = if in_group[find(&mut leader, c)] || in_group[c] {
                find(&mut leader, c) as u32
            } else {
                NO_GROUP
            };
            self.group_of[c].store(g, Ordering::Relaxed);
        }
        for h in &self.heat {
            let v = h.load(Ordering::Relaxed);
            h.store(v / 2, Ordering::Relaxed);
        }
        if epoch % 4 == 3 {
            for ws in &self.write_sigs {
                if let Some(mut ws) = ws.try_lock() {
                    ws.clear();
                }
            }
        }
    }

    /// Number of classes currently inside some serialization group.
    pub(crate) fn serialized_classes(&self) -> u32 {
        self.group_of
            .iter()
            .map(|g| u32::from(g.load(Ordering::Relaxed) != NO_GROUP))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> SigScheme {
        SigScheme::new(256, 4)
    }

    #[test]
    fn hot_pair_forms_a_group_and_cold_classes_stay_out() {
        let t = ConflictTable::new(4, scheme());
        let mut w = t.scheme.new_sig();
        t.scheme.insert(&mut w, 42);
        t.record_commit_writes(1, &w);
        let mut mine = t.scheme.new_sig();
        t.scheme.insert(&mut mine, 42);
        for _ in 0..16 {
            t.attribute_abort(2, &mine);
        }
        t.adapt(8, 0);
        assert_eq!(t.token_for(1), Some(1), "victim class joins the group");
        assert_eq!(t.token_for(2), Some(1), "aborter shares the leader token");
        assert_eq!(t.token_for(0), None);
        assert_eq!(t.token_for(3), None);
        assert_eq!(t.serialized_classes(), 2);
    }

    #[test]
    fn self_conflicts_serialize_a_single_class() {
        let t = ConflictTable::new(2, scheme());
        let mut w = t.scheme.new_sig();
        t.scheme.insert(&mut w, 7);
        t.record_commit_writes(0, &w);
        for _ in 0..8 {
            t.attribute_abort(0, &w);
        }
        t.adapt(8, 0);
        assert_eq!(t.token_for(0), Some(0));
        assert_eq!(t.token_for(1), None);
    }

    #[test]
    fn heat_decays_and_groups_dissolve() {
        let t = ConflictTable::new(2, scheme());
        let mut w = t.scheme.new_sig();
        t.scheme.insert(&mut w, 9);
        t.record_commit_writes(1, &w);
        for _ in 0..8 {
            t.attribute_abort(0, &w);
        }
        t.adapt(8, 0);
        assert!(t.token_for(0).is_some());
        // No further aborts: heat halves each epoch until the group melts.
        for e in 1..8 {
            t.adapt(8, e);
        }
        assert_eq!(t.token_for(0), None, "group dissolves once traffic cools");
        assert_eq!(t.token_for(1), None);
    }
}
