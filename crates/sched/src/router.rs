//! Footprint prediction and HTM-admission hysteresis.
//!
//! The router implements the limited-set admission rule of the hybrid-TM
//! literature (Kafousis et al.): a transaction may take the best-effort
//! HTM fast path only if its *predicted* read and write footprints fit
//! under bounds derived from the hardware capacity. Prediction is an
//! EWMA of observed per-commit footprints keyed by the caller-supplied
//! scheduling class ([`rococo_stm::TmSystem::set_tx_class`]); classes
//! that repeatedly blow the capacity anyway are banned from the fast
//! path for an exponentially growing cooldown (hysteresis), so a
//! mispredicted class cannot oscillate between capacity-abort storms and
//! re-admission.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Fixed-point shift of the EWMA accumulators (value = accumulator >> 8).
const EWMA_FP: u32 = 8;
/// EWMA smoothing: new = old + (sample - old) / 2^EWMA_SHIFT.
const EWMA_SHIFT: u32 = 2;

/// The pure hysteresis rule, factored out of the per-class atomics so it
/// can be property-tested: cooldowns are *monotone* — banning a class
/// again can only push its re-admission time further out, never pull it
/// in, and while `now < cooldown_until` the class is never admitted.
#[derive(Debug, Clone, Copy)]
pub struct Hysteresis {
    /// Capacity aborts tolerated before a ban.
    pub strike_limit: u32,
    /// Base cooldown length, in router-clock ticks (one tick per route).
    pub cooldown: u64,
    /// Cap on the exponential ban-streak backoff (length ≤ cooldown << cap).
    pub max_streak_shift: u32,
}

impl Hysteresis {
    /// The cooldown deadline after one more ban at tick `now` with the
    /// given consecutive-ban streak, merged with the current deadline.
    /// Monotone in `current_until` by construction (`max`).
    pub fn ban(&self, now: u64, streak: u32, current_until: u64) -> u64 {
        let len = self
            .cooldown
            .saturating_mul(1u64 << streak.min(self.max_streak_shift));
        current_until.max(now.saturating_add(len.max(1)))
    }

    /// Whether a class with the given deadline may be admitted at `now`.
    pub fn admitted(&self, now: u64, cooldown_until: u64) -> bool {
        now >= cooldown_until
    }
}

/// Per-class router state. All fields are atomics updated from commit
/// and abort bookkeeping paths; approximate races (a lost EWMA update, a
/// strike counted twice) only perturb the prediction, never correctness.
#[derive(Debug, Default)]
pub(crate) struct ClassState {
    /// EWMA of committed read-footprint sizes, 24.8 fixed point.
    ewma_reads: AtomicU32,
    /// EWMA of committed write-footprint sizes, 24.8 fixed point.
    ewma_writes: AtomicU32,
    /// Capacity aborts since the last ban or fast-path commit.
    strikes: AtomicU32,
    /// Consecutive bans (exponent of the cooldown backoff).
    ban_streak: AtomicU32,
    /// Router-clock tick before which the class stays off the fast path.
    cooldown_until: AtomicU64,
}

/// The router: per-class prediction state plus the adaptive admission
/// bounds the feedback loop tunes online.
#[derive(Debug)]
pub(crate) struct Router {
    classes: Vec<ClassState>,
    hysteresis: Hysteresis,
    /// Admission bound on the predicted read footprint, in words.
    read_bound: AtomicU32,
    /// Admission bound on the predicted write footprint, in words.
    write_bound: AtomicU32,
    /// Configured ceilings the feedback loop may grow back toward.
    read_bound_cap: u32,
    write_bound_cap: u32,
}

impl Router {
    pub(crate) fn new(
        classes: usize,
        hysteresis: Hysteresis,
        read_bound: u32,
        write_bound: u32,
    ) -> Self {
        Self {
            classes: (0..classes).map(|_| ClassState::default()).collect(),
            hysteresis,
            read_bound: AtomicU32::new(read_bound),
            write_bound: AtomicU32::new(write_bound),
            read_bound_cap: read_bound,
            write_bound_cap: write_bound,
        }
    }

    pub(crate) fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The limited-set admission decision for `class` at tick `now`.
    pub(crate) fn htm_eligible(&self, class: usize, now: u64) -> bool {
        let cs = &self.classes[class];
        if !self
            .hysteresis
            .admitted(now, cs.cooldown_until.load(Ordering::Relaxed))
        {
            return false;
        }
        let reads = cs.ewma_reads.load(Ordering::Relaxed) >> EWMA_FP;
        let writes = cs.ewma_writes.load(Ordering::Relaxed) >> EWMA_FP;
        reads <= self.read_bound.load(Ordering::Relaxed)
            && writes <= self.write_bound.load(Ordering::Relaxed)
    }

    /// Folds one committed footprint sample into the class prediction.
    /// `on_htm` commits also clear the strike counter — the class fits.
    pub(crate) fn record_commit(&self, class: usize, reads: u32, writes: u32, on_htm: bool) {
        let cs = &self.classes[class];
        ewma_update(&cs.ewma_reads, reads);
        ewma_update(&cs.ewma_writes, writes);
        if on_htm {
            cs.strikes.store(0, Ordering::Relaxed);
        }
    }

    /// Records one HTM capacity abort; returns `true` when this strike
    /// banned the class (caller counts it and emits telemetry).
    pub(crate) fn record_capacity(&self, class: usize, now: u64) -> bool {
        let cs = &self.classes[class];
        let strikes = cs.strikes.fetch_add(1, Ordering::Relaxed) + 1;
        if strikes < self.hysteresis.strike_limit {
            return false;
        }
        cs.strikes.store(0, Ordering::Relaxed);
        let streak = cs.ban_streak.fetch_add(1, Ordering::Relaxed);
        let until = self
            .hysteresis
            .ban(now, streak, cs.cooldown_until.load(Ordering::Relaxed));
        cs.cooldown_until.fetch_max(until, Ordering::Relaxed);
        true
    }

    /// Feedback step: capacity pressure since the last step shrinks the
    /// admission bounds multiplicatively; a quiet interval grows them
    /// additively back toward the configured caps (AIMD). Expired
    /// cooldowns also bleed the ban streak so an old offender is not
    /// punished forever.
    pub(crate) fn adapt_bounds(&self, capacity_delta: u64, now: u64) {
        let step = |bound: &AtomicU32, cap: u32| {
            let b = bound.load(Ordering::Relaxed);
            let next = if capacity_delta > 0 {
                (b - b / 4).max(4)
            } else {
                (b + b / 8 + 1).min(cap)
            };
            bound.store(next, Ordering::Relaxed);
        };
        step(&self.read_bound, self.read_bound_cap);
        step(&self.write_bound, self.write_bound_cap);
        for cs in &self.classes {
            if self
                .hysteresis
                .admitted(now, cs.cooldown_until.load(Ordering::Relaxed))
            {
                let s = cs.ban_streak.load(Ordering::Relaxed);
                cs.ban_streak.store(s / 2, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn read_bound(&self) -> u32 {
        self.read_bound.load(Ordering::Relaxed)
    }

    pub(crate) fn write_bound(&self) -> u32 {
        self.write_bound.load(Ordering::Relaxed)
    }

    /// Predicted (EWMA) footprint of a class, in words — for tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn predicted(&self, class: usize) -> (u32, u32) {
        let cs = &self.classes[class];
        (
            cs.ewma_reads.load(Ordering::Relaxed) >> EWMA_FP,
            cs.ewma_writes.load(Ordering::Relaxed) >> EWMA_FP,
        )
    }
}

/// One EWMA step in 24.8 fixed point. A zero accumulator is treated as
/// unseeded and takes the sample directly (a genuinely zero-footprint
/// transaction predicts "tiny", which is the right answer anyway).
fn ewma_update(acc: &AtomicU32, sample: u32) {
    let sample_fp = sample.saturating_mul(1 << EWMA_FP);
    let old = acc.load(Ordering::Relaxed);
    let new = if old == 0 {
        sample_fp
    } else if sample_fp >= old {
        old + ((sample_fp - old) >> EWMA_SHIFT)
    } else {
        old - ((old - sample_fp) >> EWMA_SHIFT)
    };
    acc.store(new, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ewma_converges_to_constant_sample() {
        let acc = AtomicU32::new(0);
        for _ in 0..64 {
            ewma_update(&acc, 40);
        }
        assert_eq!(acc.load(Ordering::Relaxed) >> EWMA_FP, 40);
    }

    #[test]
    fn big_classes_lose_eligibility_small_classes_keep_it() {
        let h = Hysteresis {
            strike_limit: 3,
            cooldown: 16,
            max_streak_shift: 6,
        };
        let r = Router::new(2, h, 64, 16);
        for _ in 0..8 {
            r.record_commit(0, 4, 2, false);
            r.record_commit(1, 500, 200, false);
        }
        assert!(r.htm_eligible(0, 100));
        assert!(!r.htm_eligible(1, 100), "footprint above bound");
        let (pr, pw) = r.predicted(0);
        assert!(pr <= 64 && pw <= 16, "small class predicted small");
        let (pr, pw) = r.predicted(1);
        assert!(pr > 64 && pw > 16, "big class predicted big");
    }

    #[test]
    fn strikes_ban_and_cooldown_expires() {
        let h = Hysteresis {
            strike_limit: 2,
            cooldown: 10,
            max_streak_shift: 6,
        };
        let r = Router::new(1, h, 64, 16);
        assert!(!r.record_capacity(0, 5));
        assert!(r.record_capacity(0, 5), "second strike bans");
        assert!(!r.htm_eligible(0, 6));
        assert!(!r.htm_eligible(0, 14));
        assert!(
            r.htm_eligible(0, 15),
            "cooldown 10 from tick 5 expires at 15"
        );
    }

    proptest! {
        /// The satellite property: hysteresis is monotone. However a
        /// class is denied (banned) repeatedly, its re-admission deadline
        /// never moves earlier, and it is never admitted before the
        /// deadline standing at that moment.
        #[test]
        fn hysteresis_is_monotone(
            cooldown in 1u64..1_000,
            strike_limit in 1u32..8,
            bans in proptest::prop::collection::vec((0u64..10_000, 0u32..12), 1..40),
        ) {
            let h = Hysteresis { strike_limit, cooldown, max_streak_shift: 6 };
            let mut until = 0u64;
            let mut now = 0u64;
            for (advance, streak) in bans {
                now = now.saturating_add(advance);
                let next = h.ban(now, streak, until);
                // Deadlines only ever move out.
                prop_assert!(next >= until);
                // A ban at `now` always denies at least one future tick.
                prop_assert!(next > now);
                until = next;
                // Denied for every tick strictly before the deadline.
                prop_assert!(!h.admitted(until - 1, until));
                prop_assert!(h.admitted(until, until));
            }
            // A longer streak never shortens the deadline either.
            let base = h.ban(now, 0, until);
            for s in 1..10u32 {
                prop_assert!(h.ban(now, s, until) >= base);
            }
        }

        /// Router-level restatement: after a ban at tick `t`, the class
        /// is ineligible at every tick in `[t, deadline)` regardless of
        /// how many further capacity strikes land in between.
        #[test]
        fn banned_class_stays_out_for_the_full_cooldown(
            cooldown in 1u64..200,
            extra_strikes in 0usize..20,
        ) {
            let h = Hysteresis { strike_limit: 1, cooldown, max_streak_shift: 4 };
            let r = Router::new(1, h, 64, 16);
            prop_assert!(r.record_capacity(0, 0));
            let deadline = cooldown.max(1);
            for i in 0..extra_strikes {
                r.record_capacity(0, (i as u64) % deadline);
            }
            for t in 0..deadline {
                prop_assert!(!r.htm_eligible(0, t));
            }
        }
    }
}
