//! The replicated cluster: one durable TxKV primary, N in-process
//! follower nodes fed by WAL log shipping, and a deterministic fail-over
//! coordinator.
//!
//! # Architecture
//!
//! The primary is an ordinary durable [`TxKv`] (checkpointing disabled,
//! so its log is the complete history). A **shipper** thread tails the
//! primary's `wal.log`, decodes complete record frames (a partial frame
//! at the tail is withheld until the writer finishes it), and broadcasts
//! dense [`StreamBatch`]es to each follower over a simulated
//! [`link`](crate::link) — per-follower cursors, so a slow or faulty
//! link never stalls the others. Followers validate every batch
//! (CRC, framing, density), apply it batch-atomically into their own
//! key table, and advance a `next_expected` watermark; a gap or a
//! rejected batch triggers a **Nack** carrying the expected sequence,
//! which rewinds the shipper's cursor (resend). Resends overlap, so
//! followers skip duplicates by sequence number — the stream is
//! idempotent by construction.
//!
//! # Read-your-writes
//!
//! A durable write's ack carries its on-disk commit sequence `s`
//! ([`TxKv::call_with_seq`]). A follower read that passes `min_seq = s`
//! blocks until the follower's `next_expected > s`, at which point the
//! follower has applied that write and every write serialized before it
//! — the log is dense, so the watermark comparison is exact, not
//! heuristic.
//!
//! # Fail-over
//!
//! [`Cluster::fail_over`] (or a chaos kill) demotes the primary:
//! the poison flag fences new requests, the old primary drains and
//! dumps its flight-recorder history (`primary-demoted`), the
//! most-caught-up live follower is elected (a
//! [`ReplKillPoint::DuringElection`] kill crashes the candidate and the
//! coordinator re-elects), and a new primary is recovered from the
//! shared log — the simulated-process crash model keeps the disk, so
//! WAL recovery *is* catch-up. Under [`FsyncPolicy::Always`] every
//! acked write is on that disk before its ack, hence no
//! acked-then-lost writes across fail-over; the elected follower's
//! watermark is checked against the recovered log (`watermark ≤
//! recovered next_seq`) as a built-in oracle against phantom applies.
//! The promoted node leaves the follower read set; the epoch counter
//! makes [`Cluster::recover_primary`] idempotent for racing observers.

use crate::kill::{ReplKillPoint, ReplKillSwitch};
use crate::link::{link, LinkConfig, LinkStats, LinkTx};
use crate::stats::{ReplSnapshot, ReplStats};
use crate::stream::StreamBatch;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use rococo_server::{
    DurabilityConfig, Request, Response, RetryPolicy, TxKv, TxKvConfig, TxKvError, TxKvReport,
};
use rococo_stm::TmSystem;
use rococo_wal::record::decode_all;
use rococo_wal::{FsyncPolicy, KillSwitch, WalRecord};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Records per stream batch at most (bounds batch latency and makes the
/// mid-broadcast kill point land inside a burst, not after it).
const MAX_SHIP_RECORDS: usize = 64;

/// Cluster topology and failure-injection knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Follower node count (0 is legal: a cluster that can only recover
    /// from disk).
    pub followers: usize,
    /// Keyspace size, shared by the primary and every follower replica.
    pub keys: u64,
    /// Primary's shard count.
    pub shards: usize,
    /// Primary's workers per shard.
    pub workers_per_shard: usize,
    /// Primary's shard queue depth.
    pub queue_capacity: usize,
    /// Primary's retry policy.
    pub retry: RetryPolicy,
    /// The primary log's ack policy. Only [`FsyncPolicy::Always`] gives
    /// the acked-writes-survive-fail-over guarantee against real power
    /// loss; the simulated crashes here keep page-cache contents, so the
    /// chaos oracles hold for every mode.
    pub fsync: FsyncPolicy,
    /// WAL directory; `None` allocates a scratch directory the cluster
    /// removes at shutdown.
    pub dir: Option<PathBuf>,
    /// Shape and faults of every primary→follower link (per-follower
    /// fault streams are decorrelated from this seed).
    pub link: LinkConfig,
    /// Shipper poll cadence: how often the log tail is re-read and
    /// cursors advanced.
    pub ship_interval: Duration,
    /// Armed replication-layer crash point (chaos testing only).
    pub kill: Option<Arc<ReplKillSwitch>>,
    /// Armed WAL crash point for the *initial* primary (the `pre-ack`
    /// scenario arms `PostAppendPreAck` here); a recovered primary runs
    /// without one.
    pub wal_kill: Option<Arc<KillSwitch>>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            followers: 2,
            keys: 1 << 10,
            shards: 2,
            workers_per_shard: 2,
            queue_capacity: 128,
            retry: RetryPolicy::default(),
            fsync: FsyncPolicy::Always,
            dir: None,
            link: LinkConfig::default(),
            ship_interval: Duration::from_micros(500),
            kill: None,
            wal_kill: None,
        }
    }
}

impl ClusterConfig {
    /// The primary's TxKV configuration for `dir`, with checkpointing
    /// disabled — the log must stay the complete history for the shipper
    /// to tail and for fail-over recovery to rebuild from.
    pub fn kv_config(&self, dir: PathBuf, kill: Option<Arc<KillSwitch>>) -> TxKvConfig {
        TxKvConfig {
            shards: self.shards,
            workers_per_shard: self.workers_per_shard,
            queue_capacity: self.queue_capacity,
            keys: self.keys,
            retry: self.retry,
            max_batch: TxKvConfig::default().max_batch,
            durability: Some(DurabilityConfig {
                dir,
                fsync: self.fsync,
                checkpoint_every: 0,
                kill,
            }),
            telemetry: None,
            ..TxKvConfig::default()
        }
    }
}

/// Why a cluster operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplError {
    /// The primary is demoted, crashed, or mid-fail-over; retry after
    /// [`Cluster::recover_primary`].
    PrimaryDown,
    /// The addressed follower has crashed or was promoted away.
    FollowerDown {
        /// The follower index.
        follower: u32,
    },
    /// A watermark-gated follower read timed out before the follower
    /// caught up to `min_seq`.
    LagTimeout {
        /// The follower index.
        follower: u32,
        /// The watermark the read required.
        min_seq: u64,
        /// The follower's `next_expected` when the read gave up.
        applied: u64,
    },
    /// [`Cluster::recover_primary`] observed an epoch that has already
    /// passed: another coordinator completed the fail-over.
    StaleEpoch {
        /// The epoch the caller observed.
        observed: u64,
        /// The cluster's current epoch.
        current: u64,
    },
    /// An invariant the replication design guarantees was violated —
    /// this is a bug report, not a retryable condition.
    Inconsistent {
        /// The violated invariant.
        reason: &'static str,
    },
    /// The primary's service layer rejected or failed the request.
    Kv(TxKvError),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::PrimaryDown => write!(f, "primary down: awaiting fail-over"),
            ReplError::FollowerDown { follower } => {
                write!(f, "follower {follower} is not serving reads")
            }
            ReplError::LagTimeout {
                follower,
                min_seq,
                applied,
            } => write!(
                f,
                "follower {follower} read timed out: needs seq > {min_seq}, applied {applied}"
            ),
            ReplError::StaleEpoch { observed, current } => write!(
                f,
                "fail-over already completed: observed epoch {observed}, now {current}"
            ),
            ReplError::Inconsistent { reason } => {
                write!(f, "replication invariant violated: {reason}")
            }
            ReplError::Kv(e) => write!(f, "primary request failed: {e}"),
        }
    }
}

impl std::error::Error for ReplError {}

/// What one completed fail-over did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverReport {
    /// The cluster epoch after the fail-over.
    pub epoch: u64,
    /// The follower that won the election (`None` when no follower was
    /// alive — the new primary still recovers from the shared log).
    pub elected: Option<u32>,
    /// The winner's `next_expected` at election time.
    pub candidate_watermark: u64,
    /// `next_seq` the recovered log resumed at. The built-in oracle
    /// checks `candidate_watermark <= recovered_next_seq`.
    pub recovered_next_seq: u64,
    /// Candidates crashed by a `during-election` kill before one stuck.
    pub crashed_candidates: u32,
    /// Demotion-to-serving wall time (writes block for this long).
    pub downtime: Duration,
}

/// The final accounting a cluster hands back at shutdown.
#[derive(Debug)]
pub struct ReplReport {
    /// Replication counters and per-follower lag at shutdown.
    pub snapshot: ReplSnapshot,
    /// The serving primary's report (`None` if it was down at shutdown).
    pub primary: Option<TxKvReport>,
    /// Reports of every primary demoted by a fail-over, oldest first.
    pub demoted: Vec<TxKvReport>,
}

/// One follower node's shared state (the applier thread holds clones).
struct FollowerNode {
    store: Arc<RwLock<Vec<u64>>>,
    next_expected: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
    partitioned: Arc<AtomicBool>,
    link_stats: Arc<LinkStats>,
    handle: Option<JoinHandle<()>>,
}

/// A replicated TxKV cluster. See the module docs for the architecture.
pub struct Cluster<S: TmSystem + 'static> {
    cfg: ClusterConfig,
    dir: PathBuf,
    owns_dir: bool,
    /// Fresh-backend factory: durable recovery requires a backend that
    /// has never committed, so fail-over constructs a new one.
    make: Box<dyn Fn() -> Arc<S> + Send + Sync>,
    primary: Arc<RwLock<Option<TxKv<S>>>>,
    /// Fence: set the instant the primary is known dead or demoted;
    /// requests fail fast instead of reaching a zombie.
    poisoned: Arc<AtomicBool>,
    epoch: Arc<AtomicU64>,
    stats: Arc<ReplStats>,
    /// Sequence the shipper has read off the log (== durable records
    /// known to replication); follower lag is measured against this.
    shipped_seq: Arc<AtomicU64>,
    followers: Vec<FollowerNode>,
    shipper: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    failover_lock: Mutex<()>,
    demoted: Mutex<Vec<TxKvReport>>,
    final_primary: Option<TxKvReport>,
}

impl<S: TmSystem + 'static> Cluster<S> {
    /// Starts (or restarts, if `cfg.dir` holds state) a cluster. The
    /// factory must return a freshly constructed backend sized for
    /// [`ClusterConfig::kv_config`] on every call — fail-over uses it to
    /// build the recovered primary.
    ///
    /// # Errors
    ///
    /// [`ReplError::Kv`] when the primary cannot start (bad
    /// configuration, unopenable WAL directory).
    pub fn start(
        make: impl Fn() -> Arc<S> + Send + Sync + 'static,
        cfg: ClusterConfig,
    ) -> Result<Self, ReplError> {
        let owns_dir = cfg.dir.is_none();
        let dir = cfg
            .dir
            .clone()
            .unwrap_or_else(|| rococo_wal::scratch_dir("repl-cluster"));
        let make: Box<dyn Fn() -> Arc<S> + Send + Sync> = Box::new(make);
        let kv_cfg = cfg.kv_config(dir.clone(), cfg.wal_kill.clone());
        let (kv, _) = TxKv::recover(make(), kv_cfg).map_err(ReplError::Kv)?;

        let stats = Arc::new(ReplStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let poisoned = Arc::new(AtomicBool::new(false));
        let shipped_seq = Arc::new(AtomicU64::new(0));
        let (nack_tx, nack_rx) = unbounded::<(u32, u64)>();

        let mut followers = Vec::with_capacity(cfg.followers);
        let mut links = Vec::with_capacity(cfg.followers);
        for f in 0..cfg.followers {
            let mut link_cfg = cfg.link;
            // Decorrelate the per-link fault streams: identical seeds on
            // every link would drop the same batches everywhere.
            link_cfg.faults.seed = cfg
                .link
                .faults
                .seed
                .wrapping_add((f as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let (tx, rx, partitioned, link_stats) = link(link_cfg);
            let store = Arc::new(RwLock::new(vec![0u64; cfg.keys as usize]));
            let next_expected = Arc::new(AtomicU64::new(0));
            let alive = Arc::new(AtomicBool::new(true));
            let handle = {
                let store = Arc::clone(&store);
                let next_expected = Arc::clone(&next_expected);
                let alive = Arc::clone(&alive);
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let nack = nack_tx.clone();
                let keys = cfg.keys;
                std::thread::Builder::new()
                    .name(format!("repl-follower-{f}"))
                    .spawn(move || {
                        run_follower(
                            f as u32,
                            keys,
                            rx,
                            store,
                            next_expected,
                            alive,
                            stop,
                            nack,
                            stats,
                        )
                    })
                    .expect("failed to spawn repl follower")
            };
            followers.push(FollowerNode {
                store,
                next_expected,
                alive,
                partitioned,
                link_stats,
                handle: Some(handle),
            });
            links.push(tx);
        }
        drop(nack_tx);

        let shipper = {
            let log = dir.join("wal.log");
            let alive: Vec<Arc<AtomicBool>> =
                followers.iter().map(|n| Arc::clone(&n.alive)).collect();
            let stop = Arc::clone(&stop);
            let poisoned = Arc::clone(&poisoned);
            let shipped_seq = Arc::clone(&shipped_seq);
            let stats = Arc::clone(&stats);
            let kill = cfg.kill.clone();
            let interval = cfg.ship_interval;
            std::thread::Builder::new()
                .name("repl-shipper".into())
                .spawn(move || {
                    run_shipper(
                        log,
                        links,
                        alive,
                        nack_rx,
                        stop,
                        poisoned,
                        shipped_seq,
                        stats,
                        kill,
                        interval,
                    )
                })
                .expect("failed to spawn repl shipper")
        };

        Ok(Self {
            cfg,
            dir,
            owns_dir,
            make,
            primary: Arc::new(RwLock::new(Some(kv))),
            poisoned,
            epoch: Arc::new(AtomicU64::new(0)),
            stats,
            shipped_seq,
            followers,
            shipper: Some(shipper),
            stop,
            failover_lock: Mutex::new(()),
            demoted: Mutex::new(Vec::new()),
            final_primary: None,
        })
    }

    /// The WAL directory the cluster replicates from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the cluster started with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Current cluster epoch (bumped by every completed fail-over).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Whether the primary is fenced (crashed or demoted, fail-over not
    /// yet completed).
    pub fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Sends a request to the primary, returning the response and — for
    /// update requests in this durable cluster — the on-disk commit
    /// sequence usable as a [`Cluster::follower_read`] watermark.
    ///
    /// # Errors
    ///
    /// [`ReplError::PrimaryDown`] when the primary is fenced or its log
    /// died mid-request (the fence is raised as a side effect);
    /// [`ReplError::Kv`] for service-level failures.
    pub fn call(&self, req: Request) -> Result<(Response, Option<u64>), ReplError> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(ReplError::PrimaryDown);
        }
        let guard = self.primary.read();
        let Some(kv) = guard.as_ref() else {
            return Err(ReplError::PrimaryDown);
        };
        match kv.call_with_seq(req) {
            Ok(ok) => Ok(ok),
            Err(TxKvError::DurabilityLost) => {
                // The log writer died: fence immediately so no later
                // request can be acked by a primary that cannot log it.
                self.poisoned.store(true, Ordering::SeqCst);
                Err(ReplError::PrimaryDown)
            }
            Err(e) => {
                if let TxKvError::RetriesExhausted { last, .. } = e {
                    self.stats.note_retries_exhausted(last);
                }
                Err(ReplError::Kv(e))
            }
        }
    }

    /// Durable put; returns the write's on-disk commit sequence (its
    /// read-your-writes watermark).
    ///
    /// # Errors
    ///
    /// As [`Cluster::call`].
    pub fn put(&self, key: u64, value: u64) -> Result<u64, ReplError> {
        let (_, seq) = self.call(Request::Put { key, value })?;
        seq.ok_or(ReplError::Inconsistent {
            reason: "durable update acked without a commit sequence",
        })
    }

    /// Point read against the primary.
    ///
    /// # Errors
    ///
    /// As [`Cluster::call`].
    pub fn get(&self, key: u64) -> Result<u64, ReplError> {
        match self.call(Request::Get { key })? {
            (Response::Value(v), _) => Ok(v),
            _ => Err(ReplError::Inconsistent {
                reason: "get answered with a non-value response",
            }),
        }
    }

    /// Snapshot read against follower `f`, gated on the read-your-writes
    /// watermark: with `min_seq = Some(s)` the read blocks until the
    /// follower has applied sequence `s` (i.e. `next_expected > s`), so
    /// a client that writes with [`Cluster::put`] and reads back with
    /// that sequence always sees its own write.
    ///
    /// # Errors
    ///
    /// [`ReplError::FollowerDown`] for a crashed or promoted follower;
    /// [`ReplError::LagTimeout`] when the watermark is not reached in
    /// `timeout`; [`ReplError::Kv`] for an out-of-range key.
    pub fn follower_read(
        &self,
        f: usize,
        key: u64,
        min_seq: Option<u64>,
        timeout: Duration,
    ) -> Result<u64, ReplError> {
        let node = self.follower(f)?;
        if let Some(min) = min_seq {
            let deadline = Instant::now() + timeout;
            while node.next_expected.load(Ordering::SeqCst) <= min {
                if !node.alive.load(Ordering::SeqCst) {
                    return Err(ReplError::FollowerDown { follower: f as u32 });
                }
                if Instant::now() >= deadline {
                    return Err(ReplError::LagTimeout {
                        follower: f as u32,
                        min_seq: min,
                        applied: node.next_expected.load(Ordering::SeqCst),
                    });
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        let store = node.store.read();
        store
            .get(key as usize)
            .copied()
            .ok_or(ReplError::Kv(TxKvError::KeyOutOfRange {
                key,
                keys: self.cfg.keys,
            }))
    }

    /// A batch-atomic snapshot of follower `f`'s whole key table plus
    /// the watermark it is consistent with: the returned table reflects
    /// exactly the writes with sequence `< watermark` (appliers update
    /// the store and the watermark under one write lock).
    ///
    /// # Errors
    ///
    /// [`ReplError::FollowerDown`] for a crashed or promoted follower.
    pub fn follower_snapshot(&self, f: usize) -> Result<(Vec<u64>, u64), ReplError> {
        let node = self.follower(f)?;
        let store = node.store.read();
        let watermark = node.next_expected.load(Ordering::SeqCst);
        Ok((store.clone(), watermark))
    }

    /// Replication lag of follower `f` in sequence numbers: durable
    /// records known to the shipper minus records the follower applied.
    ///
    /// # Errors
    ///
    /// [`ReplError::FollowerDown`] for a crashed or promoted follower.
    pub fn lag(&self, f: usize) -> Result<u64, ReplError> {
        let node = self.follower(f)?;
        Ok(self
            .shipped_seq
            .load(Ordering::SeqCst)
            .saturating_sub(node.next_expected.load(Ordering::SeqCst)))
    }

    /// Crashes follower `f` (chaos injection): it stops applying and
    /// serving immediately and never comes back.
    pub fn crash_follower(&self, f: usize) {
        if let Some(node) = self.followers.get(f) {
            if node.alive.swap(false, Ordering::SeqCst) {
                self.stats.follower_crashes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Partitions (or heals) the link to follower `f`: while partitioned
    /// every shipped frame is dropped; the gap protocol re-converges the
    /// follower after healing.
    pub fn set_partitioned(&self, f: usize, partitioned: bool) {
        if let Some(node) = self.followers.get(f) {
            node.partitioned.store(partitioned, Ordering::SeqCst);
        }
    }

    /// Whether follower `f` is alive and serving reads.
    pub fn follower_alive(&self, f: usize) -> bool {
        self.followers
            .get(f)
            .is_some_and(|n| n.alive.load(Ordering::SeqCst))
    }

    /// Configured follower count (including crashed and promoted ones —
    /// indices are stable for the cluster's lifetime).
    pub fn follower_count(&self) -> usize {
        self.followers.len()
    }

    /// Link counters for follower `f`'s stream (sent, dropped, shed,
    /// reordered), for harness assertions.
    pub fn link_stats(&self, f: usize) -> Option<Arc<LinkStats>> {
        self.followers.get(f).map(|n| Arc::clone(&n.link_stats))
    }

    /// Blocks until every live follower has applied sequence numbers up
    /// to at least `min_seq`; `false` on timeout.
    pub fn wait_catch_up(&self, min_seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let behind = self.followers.iter().any(|n| {
                n.alive.load(Ordering::SeqCst) && n.next_expected.load(Ordering::SeqCst) < min_seq
            });
            if !behind {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Demotes the current primary (even a healthy one) and fails over.
    /// Equivalent to observing the current epoch and calling
    /// [`Cluster::recover_primary`].
    ///
    /// # Errors
    ///
    /// As [`Cluster::recover_primary`].
    pub fn fail_over(&self) -> Result<FailoverReport, ReplError> {
        self.recover_primary(self.epoch())
    }

    /// Runs the fail-over protocol, idempotently: the caller passes the
    /// epoch it observed the failure in, and if another coordinator has
    /// already moved the cluster past it this returns
    /// [`ReplError::StaleEpoch`] without touching anything.
    ///
    /// Protocol: fence (poison flag) → drain and demote the old primary
    /// (its flight recorder dumps as `primary-demoted`) → elect the
    /// most-caught-up live follower (re-electing past `during-election`
    /// crashes) → recover a new primary from the shared log → check the
    /// candidate's watermark against the recovered log → promote,
    /// unfence, bump the epoch.
    ///
    /// # Errors
    ///
    /// [`ReplError::StaleEpoch`] as above; [`ReplError::Kv`] when log
    /// recovery fails; [`ReplError::Inconsistent`] when a follower is
    /// ahead of the recovered log (an acked-write-loss or phantom-apply
    /// bug the oracle caught).
    pub fn recover_primary(&self, observed_epoch: u64) -> Result<FailoverReport, ReplError> {
        let _coordinator = self.failover_lock.lock();
        let current = self.epoch.load(Ordering::SeqCst);
        if current != observed_epoch {
            return Err(ReplError::StaleEpoch {
                observed: observed_epoch,
                current,
            });
        }
        let t0 = Instant::now();
        // Fence first: from here no request reaches the old primary, so
        // nothing can be acked by a node about to lose its identity.
        self.poisoned.store(true, Ordering::SeqCst);
        rococo_telemetry::dump_anomaly("primary-demoted");
        if let Some(kv) = self.primary.write().take() {
            // Drain: queued requests finish (their acks are backed by
            // the log) and the WAL writer flushes and exits.
            // rococo-lint: allow(guard-across-wait) -- the fail-over lock exists precisely to serialize recovery; shutdown's drain is bounded and never takes the fail-over lock, so the hold cannot deadlock
            self.demoted.lock().push(kv.shutdown());
        }
        // Let in-flight frames land so the election sees settled
        // watermarks; bounded, not required for correctness.
        std::thread::sleep(self.cfg.ship_interval * 2);

        let mut crashed = 0u32;
        let (elected, candidate_watermark) = loop {
            let best = self
                .followers
                .iter()
                .enumerate()
                .filter(|(_, n)| n.alive.load(Ordering::SeqCst))
                .max_by_key(|(_, n)| n.next_expected.load(Ordering::SeqCst));
            let Some((f, node)) = best else {
                break (None, 0);
            };
            if self
                .cfg
                .kill
                .as_ref()
                .is_some_and(|k| k.should_fire(ReplKillPoint::DuringElection))
            {
                // The winner dies before catch-up completes; count it
                // and re-elect among the survivors.
                node.alive.store(false, Ordering::SeqCst);
                self.stats.follower_crashes.fetch_add(1, Ordering::Relaxed);
                crashed += 1;
                continue;
            }
            break (Some(f as u32), node.next_expected.load(Ordering::SeqCst));
        };

        // Catch-up = WAL recovery on the shared disk: replays the full
        // log (torn tail truncated) and resumes the dense sequence.
        let kv_cfg = self.cfg.kv_config(self.dir.clone(), None);
        let (kv, report) = TxKv::recover((self.make)(), kv_cfg).map_err(ReplError::Kv)?;
        let recovered_next_seq = report.checkpoint_seq.unwrap_or(0) + report.replayed;
        if candidate_watermark > recovered_next_seq {
            return Err(ReplError::Inconsistent {
                reason: "elected follower is ahead of the recovered log",
            });
        }
        // The promoted node stops serving follower reads: its replica
        // is now the primary's identity.
        if let Some(f) = elected {
            self.followers[f as usize]
                .alive
                .store(false, Ordering::SeqCst);
        }
        *self.primary.write() = Some(kv);
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.poisoned.store(false, Ordering::SeqCst);
        self.stats.failovers.fetch_add(1, Ordering::Relaxed);
        rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Failover {
            epoch,
            elected: elected.unwrap_or(u32::MAX),
        });
        Ok(FailoverReport {
            epoch,
            elected,
            candidate_watermark,
            recovered_next_seq,
            crashed_candidates: crashed,
            downtime: t0.elapsed(),
        })
    }

    /// Point-in-time replication counters plus per-follower lag.
    pub fn snapshot(&self) -> ReplSnapshot {
        let shipped = self.shipped_seq.load(Ordering::SeqCst);
        let lags = self
            .followers
            .iter()
            .map(|n| shipped.saturating_sub(n.next_expected.load(Ordering::SeqCst)))
            .collect();
        self.stats.snapshot(lags, self.epoch.load(Ordering::SeqCst))
    }

    /// Stops the cluster — shipper, primary, appliers, in that order —
    /// and returns the final accounting.
    pub fn shutdown(mut self) -> ReplReport {
        self.stop_and_join();
        ReplReport {
            snapshot: self.snapshot(),
            primary: self.final_primary.take(),
            demoted: std::mem::take(&mut *self.demoted.lock()),
        }
    }

    fn follower(&self, f: usize) -> Result<&FollowerNode, ReplError> {
        let node = self
            .followers
            .get(f)
            .ok_or(ReplError::FollowerDown { follower: f as u32 })?;
        if !node.alive.load(Ordering::SeqCst) {
            return Err(ReplError::FollowerDown { follower: f as u32 });
        }
        Ok(node)
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.shipper.take() {
            let _ = h.join();
        }
        if let Some(kv) = self.primary.write().take() {
            self.final_primary = Some(kv.shutdown());
        }
        for node in &mut self.followers {
            if let Some(h) = node.handle.take() {
                let _ = h.join();
            }
        }
        if self.owns_dir {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

impl<S: TmSystem + 'static> Drop for Cluster<S> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl<S: TmSystem + 'static> std::fmt::Debug for Cluster<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("followers", &self.followers.len())
            .field("epoch", &self.epoch())
            .field("poisoned", &self.poisoned())
            .finish()
    }
}

/// The shipper loop: tail the log, honour nacks, broadcast batches.
#[allow(clippy::too_many_arguments)]
fn run_shipper(
    log: PathBuf,
    mut links: Vec<LinkTx>,
    alive: Vec<Arc<AtomicBool>>,
    nacks: Receiver<(u32, u64)>,
    stop: Arc<AtomicBool>,
    poisoned: Arc<AtomicBool>,
    shipped_seq: Arc<AtomicU64>,
    stats: Arc<ReplStats>,
    kill: Option<Arc<ReplKillSwitch>>,
    interval: Duration,
) {
    // The full record cache: `cache[i].seq == i`. The log is dense from
    // 0 and never truncated (checkpointing is disabled), so resends are
    // an index, not a disk seek.
    let mut cache: Vec<WalRecord> = Vec::new();
    let mut offset: u64 = 0; // bytes of complete frames consumed
    let mut cursors = vec![0u64; links.len()];
    let mut tick: u64 = 0;
    loop {
        tick += 1;
        if stop.load(Ordering::SeqCst) {
            for l in &mut links {
                l.flush();
            }
            break;
        }
        while let Ok((f, expected)) = nacks.try_recv() {
            let f = f as usize;
            if expected < cursors[f] {
                cursors[f] = expected;
                stats.resends.fetch_add(1, Ordering::Relaxed);
            }
        }
        if !poisoned.load(Ordering::SeqCst) {
            // Tail the log: decode complete frames past our offset; a
            // partial frame mid-append is left for the next poll. A
            // fail-over may truncate the torn tail, but never a complete
            // frame — the offset stays valid across primary changes.
            if let Ok(mut file) = File::open(&log) {
                let mut buf = Vec::new();
                if file.seek(SeekFrom::Start(offset)).is_ok()
                    && file.read_to_end(&mut buf).is_ok()
                    && !buf.is_empty()
                {
                    let (records, _end) = decode_all(&buf);
                    for rec in records {
                        debug_assert_eq!(rec.seq, cache.len() as u64, "log must be dense");
                        offset += rec.frame_len() as u64;
                        cache.push(rec);
                    }
                    shipped_seq.store(cache.len() as u64, Ordering::SeqCst);
                }
            }
            'broadcast: for (f, l) in links.iter_mut().enumerate() {
                if !alive[f].load(Ordering::SeqCst) {
                    // Dead follower: fast-forward so the loop stays cheap.
                    cursors[f] = cache.len() as u64;
                    continue;
                }
                while (cursors[f] as usize) < cache.len() {
                    if kill
                        .as_ref()
                        .is_some_and(|k| k.should_fire(ReplKillPoint::MidShip))
                    {
                        // Primary dies mid-broadcast: a strict prefix of
                        // the followers got this round's batches. Fence
                        // and stop shipping until fail-over recovers.
                        poisoned.store(true, Ordering::SeqCst);
                        break 'broadcast;
                    }
                    let first = cursors[f];
                    let end = (first as usize + MAX_SHIP_RECORDS).min(cache.len());
                    let batch = StreamBatch::new(first, cache[first as usize..end].to_vec());
                    let n = batch.records.len();
                    l.send(batch.encode());
                    cursors[f] = batch.next_seq();
                    stats.batches_shipped.fetch_add(1, Ordering::Relaxed);
                    stats.records_shipped.fetch_add(n as u64, Ordering::Relaxed);
                    rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::ReplShip {
                        first_seq: first,
                        records: n as u32,
                        follower: f as u32,
                    });
                }
                l.flush();
            }
            // Heartbeat: an empty batch at the cursor position, every
            // few polls. A caught-up follower skips it as a duplicate; a
            // follower whose *last* data batch was dropped sees a gap it
            // would otherwise never learn about (nothing newer is coming
            // to trigger detection) and nacks for the resend.
            if tick.is_multiple_of(8) && !poisoned.load(Ordering::SeqCst) {
                for (f, l) in links.iter_mut().enumerate() {
                    if alive[f].load(Ordering::SeqCst) {
                        l.send(StreamBatch::new(cursors[f], Vec::new()).encode());
                        l.flush();
                    }
                }
            }
        }
        std::thread::sleep(interval);
    }
    rococo_telemetry::flush_thread();
}

/// One follower's apply loop: validate, gap-check, apply batch-atomically.
#[allow(clippy::too_many_arguments)]
fn run_follower(
    f: u32,
    keys: u64,
    rx: crate::link::LinkRx,
    store: Arc<RwLock<Vec<u64>>>,
    next_expected: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    nack: Sender<(u32, u64)>,
    stats: Arc<ReplStats>,
) {
    while !stop.load(Ordering::SeqCst) && alive.load(Ordering::SeqCst) {
        let Some(bytes) = rx.recv(Duration::from_millis(5)) else {
            continue;
        };
        if !alive.load(Ordering::SeqCst) {
            break;
        }
        let batch = match StreamBatch::decode(&bytes) {
            Ok(b) => b,
            Err(_) => {
                // Corrupt on the wire: discard as a unit and rewind the
                // shipper to our position (a resend is idempotent).
                stats.batches_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = nack.send((f, next_expected.load(Ordering::SeqCst)));
                continue;
            }
        };
        let expected = next_expected.load(Ordering::SeqCst);
        if batch.first_seq > expected {
            // Gap: a predecessor was dropped or is still in flight
            // behind a reordering link. Ask for a resend from our
            // position; this batch will arrive again after it.
            stats.gaps_detected.fetch_add(1, Ordering::Relaxed);
            let _ = nack.send((f, expected));
            continue;
        }
        if batch.next_seq() <= expected {
            // Entirely behind us: an overlapping resend already applied.
            stats
                .duplicates_skipped
                .fetch_add(batch.records.len() as u64, Ordering::Relaxed);
            continue;
        }
        let skip = (expected - batch.first_seq) as usize;
        stats
            .duplicates_skipped
            .fetch_add(skip as u64, Ordering::Relaxed);
        let t0 = Instant::now();
        {
            // One write lock per batch: snapshot readers see whole
            // batches or nothing, and the watermark moves under the same
            // lock so a snapshot's (table, watermark) pair is exact.
            let mut table = store.write();
            for rec in &batch.records[skip..] {
                for &(k, v) in &rec.writes {
                    if k < keys {
                        table[k as usize] = v;
                    }
                }
            }
            next_expected.store(batch.next_seq(), Ordering::SeqCst);
        }
        let applied = batch.records.len() - skip;
        stats.apply_ns.record(t0.elapsed().as_nanos() as u64);
        stats.batches_applied.fetch_add(1, Ordering::Relaxed);
        stats
            .records_applied
            .fetch_add(applied as u64, Ordering::Relaxed);
        rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::ReplApply {
            follower: f,
            next_seq: batch.next_seq(),
            records: applied as u32,
        });
    }
    rococo_telemetry::flush_thread();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkFaults;
    use rococo_stm::{TinyStm, TmConfig};

    fn tiny_cluster(cfg: ClusterConfig) -> Cluster<TinyStm> {
        let kv_cfg = cfg.kv_config(PathBuf::new(), None);
        let tm_cfg = TmConfig {
            heap_words: kv_cfg.heap_words(),
            max_threads: kv_cfg.worker_threads(),
        };
        Cluster::start(move || Arc::new(TinyStm::with_config(tm_cfg)), cfg).unwrap()
    }

    #[test]
    fn followers_catch_up_and_serve_read_your_writes() {
        let cluster = tiny_cluster(ClusterConfig {
            followers: 2,
            keys: 128,
            ..ClusterConfig::default()
        });
        let mut last_seq = 0;
        for k in 0..50u64 {
            last_seq = cluster.put(k, k + 1000).unwrap();
        }
        assert!(cluster.wait_catch_up(last_seq + 1, Duration::from_secs(10)));
        for f in 0..2 {
            // The watermark rule: a read gated on the write's sequence
            // must see it.
            assert_eq!(
                cluster
                    .follower_read(f, 49, Some(last_seq), Duration::from_secs(5))
                    .unwrap(),
                1049
            );
            let (snap, watermark) = cluster.follower_snapshot(f).unwrap();
            assert!(watermark > last_seq);
            assert_eq!(snap[7], 1007);
            assert_eq!(cluster.lag(f).unwrap(), 0);
        }
        let report = cluster.shutdown();
        assert!(report.snapshot.batches_shipped >= 2, "{report:?}");
        assert_eq!(report.snapshot.failovers, 0);
        assert!(report.primary.is_some());
    }

    #[test]
    fn dropped_batches_gap_detect_and_resend() {
        let cluster = tiny_cluster(ClusterConfig {
            followers: 1,
            keys: 64,
            link: LinkConfig {
                faults: LinkFaults {
                    seed: 11,
                    drop_pct: 35,
                    reorder_pct: 20,
                    ..LinkFaults::none()
                },
                ..LinkConfig::default()
            },
            ..ClusterConfig::default()
        });
        let mut last_seq = 0;
        for k in 0..60u64 {
            last_seq = cluster.put(k % 64, k).unwrap();
            // One record per ship round, so drops hit distinct batches.
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            cluster.wait_catch_up(last_seq + 1, Duration::from_secs(10)),
            "follower never converged past the faulty link: {:?}",
            cluster.snapshot()
        );
        assert_eq!(
            cluster
                .follower_read(0, 59, Some(last_seq), Duration::from_secs(5))
                .unwrap(),
            59
        );
        let snap = cluster.snapshot();
        assert!(
            snap.gaps_detected > 0 && snap.resends > 0,
            "faults never exercised the gap protocol: {snap:?}"
        );
        cluster.shutdown();
    }

    #[test]
    fn failover_preserves_acked_writes() {
        let cluster = tiny_cluster(ClusterConfig {
            followers: 2,
            keys: 64,
            ..ClusterConfig::default()
        });
        let mut last_seq = 0;
        for k in 0..20u64 {
            last_seq = cluster.put(k, k * 3).unwrap();
        }
        cluster.wait_catch_up(last_seq + 1, Duration::from_secs(10));
        let report = cluster.fail_over().unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(cluster.epoch(), 1);
        let elected = report.elected.expect("a live follower must win");
        assert!(report.candidate_watermark <= report.recovered_next_seq);
        assert!(!cluster.follower_alive(elected as usize), "promoted");
        // Durability oracle: every acked write survives on the new
        // primary.
        for k in 0..20u64 {
            assert_eq!(cluster.get(k).unwrap(), k * 3);
        }
        // The cluster still accepts writes and replicates them to the
        // surviving follower.
        let seq = cluster.put(5, 999).unwrap();
        assert!(seq >= last_seq, "sequence must continue densely");
        let survivor = (0..2).find(|&f| cluster.follower_alive(f)).unwrap();
        assert_eq!(
            cluster
                .follower_read(survivor, 5, Some(seq), Duration::from_secs(10))
                .unwrap(),
            999
        );
        // Idempotency: a coordinator that observed the old epoch loses.
        assert!(matches!(
            cluster.recover_primary(0),
            Err(ReplError::StaleEpoch {
                observed: 0,
                current: 1
            })
        ));
        let report = cluster.shutdown();
        assert_eq!(report.snapshot.failovers, 1);
        assert_eq!(report.demoted.len(), 1, "the demoted primary reported");
    }

    #[test]
    fn mid_ship_kill_demotes_and_recovery_keeps_acked_writes() {
        let kill = ReplKillSwitch::arm(ReplKillPoint::MidShip, 3);
        let cluster = tiny_cluster(ClusterConfig {
            followers: 2,
            keys: 64,
            kill: Some(Arc::clone(&kill)),
            ..ClusterConfig::default()
        });
        let mut acked = Vec::new();
        for k in 0..200u64 {
            match cluster.put(k % 64, k + 1) {
                Ok(seq) => acked.push((k % 64, k + 1, seq)),
                Err(ReplError::PrimaryDown) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            std::thread::sleep(Duration::from_micros(300));
        }
        assert!(kill.fired(), "the mid-ship kill never triggered");
        assert!(cluster.poisoned());
        let report = cluster.recover_primary(0).unwrap();
        assert_eq!(report.epoch, 1);
        assert!(!cluster.poisoned());
        // Every write acked before the crash survives fail-over.
        let mut expect = std::collections::HashMap::new();
        for &(k, v, _) in &acked {
            expect.insert(k, v);
        }
        for (&k, &v) in &expect {
            assert_eq!(cluster.get(k).unwrap(), v, "acked write to key {k} lost");
        }
        cluster.shutdown();
    }

    #[test]
    fn during_election_kill_crashes_the_candidate_and_reelects() {
        let kill = ReplKillSwitch::arm(ReplKillPoint::DuringElection, 1);
        let cluster = tiny_cluster(ClusterConfig {
            followers: 2,
            keys: 32,
            kill: Some(Arc::clone(&kill)),
            ..ClusterConfig::default()
        });
        let mut last_seq = 0;
        for k in 0..10u64 {
            last_seq = cluster.put(k, k).unwrap();
        }
        cluster.wait_catch_up(last_seq + 1, Duration::from_secs(10));
        let report = cluster.fail_over().unwrap();
        assert!(kill.fired());
        assert_eq!(report.crashed_candidates, 1);
        let elected = report.elected.expect("the second candidate wins");
        // One follower crashed mid-election, the other was promoted:
        // nobody is left serving follower reads, but the primary is.
        assert!(!cluster.follower_alive(0));
        assert!(!cluster.follower_alive(1));
        assert!(matches!(
            cluster.follower_read(elected as usize, 0, None, Duration::ZERO),
            Err(ReplError::FollowerDown { .. })
        ));
        for k in 0..10u64 {
            assert_eq!(cluster.get(k).unwrap(), k);
        }
        let snap = cluster.snapshot();
        assert_eq!(snap.follower_crashes, 1);
        cluster.shutdown();
    }

    #[test]
    fn partition_heals_through_the_gap_protocol() {
        let cluster = tiny_cluster(ClusterConfig {
            followers: 1,
            keys: 32,
            ..ClusterConfig::default()
        });
        let seq0 = cluster.put(1, 10).unwrap();
        assert!(cluster.wait_catch_up(seq0 + 1, Duration::from_secs(10)));
        cluster.set_partitioned(0, true);
        let mut last_seq = 0;
        for k in 0..20u64 {
            last_seq = cluster.put(k % 32, k + 100).unwrap();
        }
        // Partitioned: the follower cannot reach the new watermark.
        assert!(matches!(
            cluster.follower_read(0, 0, Some(last_seq), Duration::from_millis(50)),
            Err(ReplError::LagTimeout { .. })
        ));
        cluster.set_partitioned(0, false);
        assert!(
            cluster.wait_catch_up(last_seq + 1, Duration::from_secs(10)),
            "follower never re-converged after healing: {:?}",
            cluster.snapshot()
        );
        assert_eq!(
            cluster
                .follower_read(0, 19, Some(last_seq), Duration::from_secs(5))
                .unwrap(),
            119
        );
        let stats = cluster.link_stats(0).unwrap();
        assert!(stats.dropped.load(Ordering::Relaxed) > 0);
        cluster.shutdown();
    }
}
