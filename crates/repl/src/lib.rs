//! `rococo-repl`: WAL-shipped replication for TxKV.
//!
//! Turns the durable TxKV service into a replicated primary/follower
//! cluster of in-process "nodes" connected by the same bounded-queue +
//! latency-model idiom the `rococo-fpga` crate uses for the CCI link:
//!
//! * [`stream`] — the wire format: group-committed WAL records shipped
//!   as CRC-checked [`StreamBatch`]es, dense in commit-sequence order,
//!   rejected as a unit on any framing, checksum, or density defect.
//! * [`link`] — the simulated primary→follower link: bounded queue,
//!   modelled latency, and seeded sender-side faults (drop, reorder,
//!   delay, partition) that exercise the receiver's gap/resend
//!   protocol.
//! * [`cluster`] — the nodes themselves: a shipper tailing the
//!   primary's log, follower appliers serving watermark-gated
//!   read-your-writes snapshot reads, and a deterministic fail-over
//!   coordinator with election, WAL-recovery catch-up, and fencing.
//! * [`kill`] — replication-layer crash points (`mid-batch-ship`,
//!   `during-election`) mirroring the WAL's kill-switch idiom.
//! * [`stats`] — counters, per-follower lag, and apply-latency
//!   histograms exported under the unified `rococo_repl_*` metric
//!   namespace.
//!
//! The guarantee chain, end to end: an acked write is on the primary's
//! disk before its ack ([`rococo_wal::FsyncPolicy::Always`]); the log
//! is dense in serialization order; followers apply only validated
//! dense prefixes; fail-over recovers the new primary from that same
//! disk — so no acknowledged write is ever lost, and a follower read
//! gated on the write's commit sequence always observes it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod kill;
pub mod link;
pub mod stats;
pub mod stream;

pub use cluster::{Cluster, ClusterConfig, FailoverReport, ReplError, ReplReport};
pub use kill::{ReplKillPoint, ReplKillSwitch};
pub use link::{LinkConfig, LinkFaults, LinkStats};
pub use stats::{ReplSnapshot, ReplStats};
pub use stream::{BatchError, StreamBatch, ENVELOPE_LEN, MAX_BATCH_PAYLOAD, STREAM_MAGIC};
