//! The replication stream's wire format: batches of WAL records inside a
//! CRC-checked envelope.
//!
//! A batch reuses the WAL's own record frames (see
//! [`rococo_wal::record`]) as its payload, wrapped in a header that lets
//! a follower validate the batch *before* touching its store:
//!
//! ```text
//! [magic: u32 = "RPL1"][first_seq: u64][n: u32]
//! [payload_len: u32][crc32(payload): u32][payload = n record frames]
//! ```
//!
//! All integers are little-endian, matching the log format. A batch is
//! valid iff the magic matches, the envelope CRC matches, the payload
//! decodes into exactly `n` clean record frames, and the record
//! sequence numbers are **dense from `first_seq`** — the serialization
//! order the WAL guarantees on disk is re-checked at every hop, so a
//! reordered, truncated, or bit-flipped batch is rejected as a unit and
//! the follower's gap/resend protocol takes over instead of a corrupt
//! record reaching a store.

use rococo_wal::record::{decode_all, DecodeEnd};
use rococo_wal::{crc32, WalRecord};

/// Stream envelope magic: `b"RPL1"` as a little-endian u32.
pub const STREAM_MAGIC: u32 = u32::from_le_bytes(*b"RPL1");

/// Fixed envelope size preceding the payload, in bytes.
pub const ENVELOPE_LEN: usize = 4 + 8 + 4 + 4 + 4;

/// Sanity cap on a batch payload (mirrors the WAL's per-record cap; a
/// batch near this size is corruption, not replication traffic).
pub const MAX_BATCH_PAYLOAD: u32 = 1 << 26;

/// One shipped unit of the replication stream: a dense run of committed
/// write sets, in serialization order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamBatch {
    /// Sequence number of the first record in the batch.
    pub first_seq: u64,
    /// The records, with `records[i].seq == first_seq + i`.
    pub records: Vec<WalRecord>,
}

/// Why a received batch was rejected. Every variant is a *unit*
/// rejection: the follower discards the whole batch and, if its stream
/// position no longer lines up, asks for a resend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// Fewer bytes than the fixed envelope.
    Truncated,
    /// The envelope magic did not match [`STREAM_MAGIC`].
    BadMagic,
    /// The declared payload length is implausible or disagrees with the
    /// frame size.
    BadLength,
    /// The envelope checksum did not cover the payload.
    BadCrc,
    /// The payload held a torn or corrupt record frame.
    TornRecord,
    /// The payload decoded to a different record count than declared.
    CountMismatch,
    /// The record sequence numbers were not dense from `first_seq`.
    NotDense,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let why = match self {
            BatchError::Truncated => "truncated envelope",
            BatchError::BadMagic => "bad magic",
            BatchError::BadLength => "implausible payload length",
            BatchError::BadCrc => "checksum mismatch",
            BatchError::TornRecord => "torn record frame",
            BatchError::CountMismatch => "record count disagrees with header",
            BatchError::NotDense => "sequence numbers not dense",
        };
        write!(f, "replication batch rejected: {why}")
    }
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

impl StreamBatch {
    /// Builds a batch from records already known to be dense; panics in
    /// debug builds if they are not (the shipper slices them out of the
    /// dense log, so a violation is a harness bug).
    pub fn new(first_seq: u64, records: Vec<WalRecord>) -> Self {
        debug_assert!(records
            .iter()
            .enumerate()
            .all(|(i, r)| r.seq == first_seq + i as u64));
        Self { first_seq, records }
    }

    /// Sequence number of the first record *not* in the batch: the
    /// follower's expected position after applying it.
    pub fn next_seq(&self) -> u64 {
        self.first_seq + self.records.len() as u64
    }

    /// Serialises the batch into its wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        for r in &self.records {
            r.encode_into(&mut payload);
        }
        let mut buf = Vec::with_capacity(ENVELOPE_LEN + payload.len());
        buf.extend_from_slice(&STREAM_MAGIC.to_le_bytes());
        buf.extend_from_slice(&self.first_seq.to_le_bytes());
        buf.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        buf
    }

    /// Parses and validates a wire frame.
    ///
    /// # Errors
    ///
    /// Any [`BatchError`]; the caller must treat the batch as if it never
    /// arrived (the gap protocol recovers the stream position).
    pub fn decode(bytes: &[u8]) -> Result<StreamBatch, BatchError> {
        if bytes.len() < ENVELOPE_LEN {
            return Err(BatchError::Truncated);
        }
        if read_u32(bytes) != STREAM_MAGIC {
            return Err(BatchError::BadMagic);
        }
        let first_seq = read_u64(&bytes[4..]);
        let n = read_u32(&bytes[12..]) as usize;
        let payload_len = read_u32(&bytes[16..]) as usize;
        if payload_len > MAX_BATCH_PAYLOAD as usize || bytes.len() != ENVELOPE_LEN + payload_len {
            return Err(BatchError::BadLength);
        }
        let crc = read_u32(&bytes[20..]);
        let payload = &bytes[ENVELOPE_LEN..];
        if crc32(payload) != crc {
            return Err(BatchError::BadCrc);
        }
        let (records, end) = decode_all(payload);
        if end != DecodeEnd::Clean {
            return Err(BatchError::TornRecord);
        }
        if records.len() != n {
            return Err(BatchError::CountMismatch);
        }
        if !records
            .iter()
            .enumerate()
            .all(|(i, r)| r.seq == first_seq + i as u64)
        {
            return Err(BatchError::NotDense);
        }
        Ok(StreamBatch { first_seq, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(first_seq: u64, n: usize) -> StreamBatch {
        StreamBatch::new(
            first_seq,
            (0..n as u64)
                .map(|i| WalRecord {
                    seq: first_seq + i,
                    writes: vec![(i, i * 7), (i + 1, i)],
                })
                .collect(),
        )
    }

    #[test]
    fn roundtrip() {
        for (first, n) in [(0u64, 0usize), (0, 1), (17, 5), (u64::MAX - 3, 3)] {
            let b = batch(first, n);
            let decoded = StreamBatch::decode(&b.encode()).unwrap();
            assert_eq!(decoded, b);
            assert_eq!(decoded.next_seq(), first.wrapping_add(n as u64));
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = batch(5, 3).encode();
        for cut in 0..bytes.len() {
            assert!(StreamBatch::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let bytes = batch(9, 2).encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            // A flip anywhere must not yield the original batch; almost
            // all flips are rejected outright, and the few that still
            // parse (e.g. in `first_seq`, compensated nowhere) must fail
            // the density check.
            match StreamBatch::decode(&bad) {
                Err(_) => {}
                Ok(b) => panic!("flip at {i} decoded as {b:?}"),
            }
        }
    }

    #[test]
    fn non_dense_payload_is_rejected() {
        let mut b = batch(4, 3);
        b.records[1].seq = 42;
        // Encode by hand (new() would debug-assert).
        let sneaky = StreamBatch {
            first_seq: b.first_seq,
            records: b.records,
        };
        assert_eq!(
            StreamBatch::decode(&sneaky.encode()),
            Err(BatchError::NotDense)
        );
    }

    #[test]
    fn foreign_magic_is_rejected() {
        let mut bytes = batch(1, 1).encode();
        bytes[0] ^= 0xFF;
        assert_eq!(StreamBatch::decode(&bytes), Err(BatchError::BadMagic));
    }
}
