//! Replication observability: stream counters, per-follower lag, apply
//! latency, and fail-over accounting, exported into the unified
//! `rococo_repl_*` metric namespace through the same `export_metrics`
//! adapter pattern every other stats struct in the workspace uses.

use rococo_stm::AbortKind;
use rococo_wal::{Pow2Histogram, Pow2Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live replication counters, shared between the shipper, the follower
/// apply threads, and the fail-over coordinator.
#[derive(Debug, Default)]
pub struct ReplStats {
    /// Stream batches shipped (first transmissions and resends).
    pub batches_shipped: AtomicU64,
    /// Records shipped across all batches.
    pub records_shipped: AtomicU64,
    /// Batches a follower applied.
    pub batches_applied: AtomicU64,
    /// Records a follower applied (duplicates from resends excluded).
    pub records_applied: AtomicU64,
    /// Gaps a follower detected (out-of-order or missing batches).
    pub gaps_detected: AtomicU64,
    /// Resend requests the shipper honoured.
    pub resends: AtomicU64,
    /// Batches a follower rejected (CRC, framing, density).
    pub batches_rejected: AtomicU64,
    /// Duplicate records skipped by followers (overlapping resends).
    pub duplicates_skipped: AtomicU64,
    /// Completed primary fail-overs.
    pub failovers: AtomicU64,
    /// Followers crashed (by chaos injection or election-time kills).
    pub follower_crashes: AtomicU64,
    /// Per-batch apply latency (decode through store update), ns.
    pub apply_ns: Pow2Histogram,
    /// Primary-side requests that exhausted their retries, by abort
    /// cause (indexed by [`AbortKind::index`]; exported with the
    /// canonical [`AbortKind::as_label`] labels).
    pub primary_retry_exhausted: [AtomicU64; AbortKind::COUNT],
}

impl ReplStats {
    /// Counts one primary-side retries-exhausted failure under its
    /// abort cause.
    pub fn note_retries_exhausted(&self, kind: AbortKind) {
        self.primary_retry_exhausted[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy, attaching the given per-follower lag
    /// readings (the lag is a property of the cluster, not a counter, so
    /// the caller measures it).
    pub fn snapshot(&self, lag_seq: Vec<u64>, epoch: u64) -> ReplSnapshot {
        let mut exhausted = [0u64; AbortKind::COUNT];
        for (d, s) in exhausted
            .iter_mut()
            .zip(self.primary_retry_exhausted.iter())
        {
            *d = s.load(Ordering::Relaxed);
        }
        ReplSnapshot {
            batches_shipped: self.batches_shipped.load(Ordering::Relaxed),
            records_shipped: self.records_shipped.load(Ordering::Relaxed),
            batches_applied: self.batches_applied.load(Ordering::Relaxed),
            records_applied: self.records_applied.load(Ordering::Relaxed),
            gaps_detected: self.gaps_detected.load(Ordering::Relaxed),
            resends: self.resends.load(Ordering::Relaxed),
            batches_rejected: self.batches_rejected.load(Ordering::Relaxed),
            duplicates_skipped: self.duplicates_skipped.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            follower_crashes: self.follower_crashes.load(Ordering::Relaxed),
            apply_ns: self.apply_ns.snapshot(),
            primary_retry_exhausted: exhausted,
            lag_seq,
            epoch,
        }
    }
}

/// A point-in-time copy of [`ReplStats`] plus the cluster-level gauges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplSnapshot {
    /// Stream batches shipped (first transmissions and resends).
    pub batches_shipped: u64,
    /// Records shipped across all batches.
    pub records_shipped: u64,
    /// Batches followers applied.
    pub batches_applied: u64,
    /// Records followers applied (duplicates excluded).
    pub records_applied: u64,
    /// Gaps followers detected.
    pub gaps_detected: u64,
    /// Resend requests the shipper honoured.
    pub resends: u64,
    /// Batches followers rejected (CRC, framing, density).
    pub batches_rejected: u64,
    /// Duplicate records skipped (overlapping resends).
    pub duplicates_skipped: u64,
    /// Completed primary fail-overs.
    pub failovers: u64,
    /// Followers crashed.
    pub follower_crashes: u64,
    /// Per-batch apply latency distribution, ns.
    pub apply_ns: Pow2Snapshot,
    /// Primary retries-exhausted failures by abort cause.
    pub primary_retry_exhausted: [u64; AbortKind::COUNT],
    /// Per-follower replication lag in sequence numbers at snapshot
    /// time (shipped-but-unapplied records; crashed followers excluded).
    pub lag_seq: Vec<u64>,
    /// Cluster epoch (bumped by each fail-over).
    pub epoch: u64,
}

impl ReplSnapshot {
    /// Publishes the replication counters into a metrics registry under
    /// the unified `rococo_repl_*` namespace.
    pub fn export_metrics(&self, reg: &mut rococo_telemetry::MetricsRegistry) {
        reg.counter(
            "rococo_repl_stream_batches_total",
            "Stream batches shipped (first transmissions and resends)",
            &[],
            self.batches_shipped,
        );
        reg.counter(
            "rococo_repl_stream_records_total",
            "Records shipped across all stream batches",
            &[],
            self.records_shipped,
        );
        reg.counter(
            "rococo_repl_applied_batches_total",
            "Stream batches followers applied",
            &[],
            self.batches_applied,
        );
        reg.counter(
            "rococo_repl_applied_records_total",
            "Records followers applied (duplicates excluded)",
            &[],
            self.records_applied,
        );
        reg.counter(
            "rococo_repl_gaps_total",
            "Stream gaps followers detected",
            &[],
            self.gaps_detected,
        );
        reg.counter(
            "rococo_repl_resends_total",
            "Resend requests the shipper honoured",
            &[],
            self.resends,
        );
        reg.counter(
            "rococo_repl_rejected_batches_total",
            "Stream batches rejected (CRC, framing, density)",
            &[],
            self.batches_rejected,
        );
        reg.counter(
            "rococo_repl_failovers_total",
            "Completed primary fail-overs",
            &[],
            self.failovers,
        );
        reg.counter(
            "rococo_repl_follower_crashes_total",
            "Followers crashed",
            &[],
            self.follower_crashes,
        );
        reg.gauge(
            "rococo_repl_epoch",
            "Cluster epoch (bumped by each fail-over)",
            &[],
            self.epoch as f64,
        );
        for (f, &lag) in self.lag_seq.iter().enumerate() {
            let label = f.to_string();
            reg.gauge(
                "rococo_repl_lag_seq",
                "Replication lag in sequence numbers (shipped but unapplied)",
                &[("follower", label.as_str())],
                lag as f64,
            );
        }
        reg.histogram(
            "rococo_repl_apply_ns",
            "Per-batch follower apply latency in nanoseconds",
            &[],
            self.apply_ns.to_points(),
        );
        for kind in AbortKind::ALL {
            let n = self.primary_retry_exhausted[kind.index()];
            if n > 0 {
                reg.counter(
                    "rococo_repl_primary_retries_exhausted_total",
                    "Primary requests that exhausted their retries, by abort cause",
                    &[("kind", kind.as_label())],
                    n,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_export_are_consistent() {
        let stats = ReplStats::default();
        stats.batches_shipped.store(3, Ordering::Relaxed);
        stats.records_shipped.store(12, Ordering::Relaxed);
        stats.apply_ns.record(1_000);
        stats.note_retries_exhausted(AbortKind::Conflict);
        let snap = stats.snapshot(vec![2, 0], 1);
        assert_eq!(snap.batches_shipped, 3);
        assert_eq!(snap.lag_seq, vec![2, 0]);
        assert_eq!(snap.primary_retry_exhausted[AbortKind::Conflict.index()], 1);
        let mut reg = rococo_telemetry::MetricsRegistry::new();
        snap.export_metrics(&mut reg);
        let prom = reg.render_prometheus();
        assert!(prom.contains("rococo_repl_stream_batches_total 3"));
        assert!(prom.contains("rococo_repl_lag_seq{follower=\"0\"} 2"));
        assert!(prom.contains("kind=\"cpu-stale-read\""));
        rococo_telemetry::validate_prometheus(&prom).expect("exposition must validate");
    }
}
