//! The simulated primary→follower link: a bounded queue plus a latency
//! model, the same idiom the `rococo-fpga` crate uses for the CCI
//! round-trip — messages carry a deliver-at timestamp, the receiver
//! sleeps out the remaining latency, and faults are injected at the
//! *sender* so the receiver's protocol handling is what gets exercised.
//!
//! Faults are seeded and deterministic per link: dropped frames force
//! the follower's gap detection, held-back frames arrive out of order
//! and force the duplicate/overlap handling, and extra delay widens the
//! replication lag the watermark rule has to absorb. A link can also be
//! *partitioned* — every frame silently dropped until healed — which is
//! how the chaos driver models a network partition.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seeded fault model for one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFaults {
    /// RNG seed (per-link streams are decorrelated by the cluster).
    pub seed: u64,
    /// Percent of frames dropped outright (gap + resend path).
    pub drop_pct: u32,
    /// Percent of frames held back and sent *after* their successor
    /// (reorder path: the follower sees a future batch first).
    pub reorder_pct: u32,
    /// Percent of frames given `extra_delay` on top of the base latency.
    pub delay_pct: u32,
    /// The extra delay for delayed frames.
    pub extra_delay: Duration,
}

impl LinkFaults {
    /// No faults (production-shaped link).
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_pct: 0,
            reorder_pct: 0,
            delay_pct: 0,
            extra_delay: Duration::ZERO,
        }
    }

    fn enabled(&self) -> bool {
        self.drop_pct > 0 || self.reorder_pct > 0 || self.delay_pct > 0
    }
}

/// One link's shape: queue depth and modelled one-way latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Bounded queue depth; a full queue sheds the frame like a switch
    /// dropping under backpressure (the gap protocol recovers it).
    pub capacity: usize,
    /// Modelled one-way delivery latency.
    pub latency: Duration,
    /// Seeded fault injection.
    pub faults: LinkFaults,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            latency: Duration::from_micros(50),
            faults: LinkFaults::none(),
        }
    }
}

/// A frame in flight: the encoded batch plus when the model says it may
/// be delivered.
struct Frame {
    deliver_at: Instant,
    bytes: Vec<u8>,
}

/// Sender-side counters for one link.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Frames handed to the queue.
    pub sent: AtomicU64,
    /// Frames dropped by fault injection or partition.
    pub dropped: AtomicU64,
    /// Frames shed because the bounded queue was full.
    pub shed: AtomicU64,
    /// Frames delivered out of order by the reorder fault.
    pub reordered: AtomicU64,
}

/// The sending half, owned by the shipper.
pub struct LinkTx {
    tx: Sender<Frame>,
    cfg: LinkConfig,
    rng: u64,
    /// A frame held back by the reorder fault, sent after its successor.
    held: Option<Frame>,
    partitioned: Arc<AtomicBool>,
    stats: Arc<LinkStats>,
}

/// The receiving half, owned by the follower's apply thread.
pub struct LinkRx {
    rx: Receiver<Frame>,
}

/// Creates a link; returns the two halves plus the shared partition
/// flag and stats the cluster keeps for control and observability.
pub fn link(cfg: LinkConfig) -> (LinkTx, LinkRx, Arc<AtomicBool>, Arc<LinkStats>) {
    let (tx, rx) = bounded(cfg.capacity.max(1));
    let partitioned = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(LinkStats::default());
    (
        LinkTx {
            tx,
            rng: cfg.faults.seed | 1,
            cfg,
            held: None,
            partitioned: Arc::clone(&partitioned),
            stats: Arc::clone(&stats),
        },
        LinkRx { rx },
        partitioned,
        stats,
    )
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl LinkTx {
    fn roll(&mut self, pct: u32) -> bool {
        pct > 0 && xorshift(&mut self.rng) % 100 < u64::from(pct)
    }

    fn push(&mut self, frame: Frame) {
        match self.tx.try_send(frame) {
            Ok(()) => {
                self.stats.sent.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => {} // follower gone
        }
    }

    /// Offers a frame to the link. Partition and fault rolls happen
    /// here; the frame may be dropped, delayed, held back behind its
    /// successor, or shed by the bounded queue — every loss is
    /// recoverable through the follower's gap protocol.
    pub fn send(&mut self, bytes: Vec<u8>) {
        if self.partitioned.load(Ordering::Relaxed) {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.cfg.faults.enabled() && self.roll(self.cfg.faults.drop_pct) {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut latency = self.cfg.latency;
        if self.cfg.faults.enabled() && self.roll(self.cfg.faults.delay_pct) {
            latency += self.cfg.faults.extra_delay;
        }
        let frame = Frame {
            deliver_at: Instant::now() + latency,
            bytes,
        };
        if self.cfg.faults.enabled()
            && self.held.is_none()
            && self.roll(self.cfg.faults.reorder_pct)
        {
            // Hold this frame back; it goes out right after the next one
            // (or at flush), arriving out of order at the follower.
            self.held = Some(frame);
            return;
        }
        self.push(frame);
        if let Some(held) = self.held.take() {
            self.stats.reordered.fetch_add(1, Ordering::Relaxed);
            self.push(held);
        }
    }

    /// Sends any frame the reorder fault is still holding (called when
    /// the shipper goes idle, bounding the reordering delay like the
    /// FPGA service's reorder flush).
    pub fn flush(&mut self) {
        if let Some(held) = self.held.take() {
            self.stats.reordered.fetch_add(1, Ordering::Relaxed);
            self.push(held);
        }
    }
}

impl LinkRx {
    /// Receives the next frame, honouring its modelled latency; `None`
    /// on timeout or when the sender is gone and the queue is drained.
    pub fn recv(&self, timeout: Duration) -> Option<Vec<u8>> {
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => {
                let now = Instant::now();
                if frame.deliver_at > now {
                    std::thread::sleep(frame.deliver_at - now);
                }
                Some(frame.bytes)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_link_delivers_in_order() {
        let (mut tx, rx, _, stats) = link(LinkConfig {
            latency: Duration::from_micros(10),
            ..LinkConfig::default()
        });
        for i in 0u8..10 {
            tx.send(vec![i]);
        }
        for i in 0u8..10 {
            assert_eq!(rx.recv(Duration::from_secs(1)), Some(vec![i]));
        }
        assert_eq!(stats.sent.load(Ordering::Relaxed), 10);
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn partition_drops_everything_until_healed() {
        let (mut tx, rx, partitioned, stats) = link(LinkConfig::default());
        partitioned.store(true, Ordering::Relaxed);
        tx.send(vec![1]);
        tx.send(vec![2]);
        assert_eq!(rx.recv(Duration::from_millis(10)), None);
        partitioned.store(false, Ordering::Relaxed);
        tx.send(vec![3]);
        assert_eq!(rx.recv(Duration::from_secs(1)), Some(vec![3]));
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn reorder_fault_swaps_adjacent_frames() {
        let (mut tx, rx, _, stats) = link(LinkConfig {
            latency: Duration::ZERO,
            faults: LinkFaults {
                seed: 7,
                reorder_pct: 100,
                ..LinkFaults::none()
            },
            ..LinkConfig::default()
        });
        tx.send(vec![1]); // held
        tx.send(vec![2]); // sent, then releases the held frame
        assert_eq!(rx.recv(Duration::from_secs(1)), Some(vec![2]));
        assert_eq!(rx.recv(Duration::from_secs(1)), Some(vec![1]));
        tx.send(vec![3]); // held again
        tx.flush();
        assert_eq!(rx.recv(Duration::from_secs(1)), Some(vec![3]));
        assert_eq!(stats.reordered.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn full_queue_sheds() {
        let (mut tx, _rx, _, stats) = link(LinkConfig {
            capacity: 2,
            latency: Duration::ZERO,
            ..LinkConfig::default()
        });
        for i in 0u8..5 {
            tx.send(vec![i]);
        }
        assert_eq!(stats.sent.load(Ordering::Relaxed), 2);
        assert_eq!(stats.shed.load(Ordering::Relaxed), 3);
    }
}
