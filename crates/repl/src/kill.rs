//! Crash-point injection for the replication layer, mirroring the WAL's
//! [`rococo_wal::KillSwitch`] idiom: the chaos harness arms one point
//! with an occurrence count, the cluster polls it, and when it fires the
//! affected component dies on the spot.
//!
//! The WAL's own kill points still apply to the primary's log (the
//! `pre-ack` scenario arms [`rococo_wal::KillPoint::PostAppendPreAck`]
//! there); the points here cover the parts of the failure surface the
//! log cannot see — the broadcast fan-out and the election itself.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Where in the replication lifecycle the simulated crash strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplKillPoint {
    /// The primary dies midway through broadcasting a stream batch: a
    /// strict prefix of the followers receives it, the rest must
    /// gap-detect against whatever the fail-over recovers.
    MidShip,
    /// The elected follower crashes after winning the election but
    /// before catch-up completes: the coordinator must fall back to the
    /// next-most-caught-up follower (or recover with none left).
    DuringElection,
}

impl ReplKillPoint {
    /// Every replication kill point, in lifecycle order.
    pub const ALL: [ReplKillPoint; 2] = [ReplKillPoint::MidShip, ReplKillPoint::DuringElection];

    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ReplKillPoint::MidShip => "mid-batch-ship",
            ReplKillPoint::DuringElection => "during-election",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// A one-shot crash trigger shared between the harness and the cluster.
#[derive(Debug)]
pub struct ReplKillSwitch {
    point: ReplKillPoint,
    /// Opportunities left before firing; fires when this hits zero.
    remaining: AtomicU64,
    fired: AtomicBool,
}

impl ReplKillSwitch {
    /// Arms a switch that fires at the `after`-th occurrence (1-based)
    /// of `point`.
    pub fn arm(point: ReplKillPoint, after: u64) -> Arc<Self> {
        Arc::new(Self {
            point,
            remaining: AtomicU64::new(after.max(1)),
            fired: AtomicBool::new(false),
        })
    }

    /// Polled by the cluster at each kill point; `true` means "die now".
    pub fn should_fire(&self, point: ReplKillPoint) -> bool {
        if point != self.point || self.fired.load(Ordering::SeqCst) {
            return false;
        }
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.fired.store(true, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Whether the simulated crash actually happened.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// The armed kill point.
    pub fn point(&self) -> ReplKillPoint {
        self.point
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_at_the_nth_opportunity() {
        let k = ReplKillSwitch::arm(ReplKillPoint::MidShip, 2);
        assert!(!k.should_fire(ReplKillPoint::DuringElection));
        assert!(!k.should_fire(ReplKillPoint::MidShip));
        assert!(!k.fired());
        assert!(k.should_fire(ReplKillPoint::MidShip));
        assert!(k.fired());
        assert!(!k.should_fire(ReplKillPoint::MidShip));
    }

    #[test]
    fn names_roundtrip() {
        for p in ReplKillPoint::ALL {
            assert_eq!(ReplKillPoint::parse(p.name()), Some(p));
        }
        assert_eq!(ReplKillPoint::parse("nope"), None);
    }
}
