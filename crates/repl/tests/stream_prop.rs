//! Property tests for the replication stream framing: encode/decode must
//! round-trip any dense batch exactly, and any torn or bit-flipped frame
//! must be rejected as a unit — never partially applied, never decoded
//! into a different batch.

use proptest::prelude::*;
use rococo_repl::{BatchError, StreamBatch, ENVELOPE_LEN};
use rococo_wal::WalRecord;

/// A dense batch: `first_seq` anywhere sensible, each record with an
/// arbitrary small write set.
fn batch() -> impl Strategy<Value = StreamBatch> {
    (
        0u64..1 << 48,
        prop::collection::vec(
            prop::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..5),
            0..12,
        ),
    )
        .prop_map(|(first_seq, write_sets)| {
            let records = write_sets
                .into_iter()
                .enumerate()
                .map(|(i, writes)| WalRecord {
                    seq: first_seq + i as u64,
                    writes,
                })
                .collect();
            StreamBatch::new(first_seq, records)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn encode_decode_roundtrips(b in batch()) {
        let bytes = b.encode();
        prop_assert!(bytes.len() >= ENVELOPE_LEN);
        let decoded = StreamBatch::decode(&bytes).unwrap();
        prop_assert_eq!(&decoded, &b);
        prop_assert_eq!(decoded.next_seq(), b.first_seq + b.records.len() as u64);
    }

    #[test]
    fn torn_frames_are_rejected(b in batch(), cut_frac in 0.0f64..1.0) {
        let bytes = b.encode();
        // Every strict prefix must fail — a torn batch is discarded as a
        // unit, not decoded into a shorter batch.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < bytes.len());
        let err = StreamBatch::decode(&bytes[..cut]).unwrap_err();
        if cut < ENVELOPE_LEN {
            prop_assert_eq!(err, BatchError::Truncated);
        }
    }

    #[test]
    fn corruption_is_rejected(b in batch(), pos_frac in 0.0f64..1.0, flip in 1u32..256) {
        let mut bytes = b.encode();
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        prop_assert!(pos < bytes.len());
        bytes[pos] ^= flip as u8;
        // A corrupted frame must never decode back to the original
        // batch; almost all flips are rejected outright, and any that
        // still parse must differ (e.g. a first_seq flip fails density).
        match StreamBatch::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert!(decoded != b),
        }
    }
}
