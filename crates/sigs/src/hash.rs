//! Approximately universal hashing with the multiply-shift scheme.
//!
//! The paper (section 5.2) chooses multiply-shift hashing [Dietzfelbinger et
//! al. 1997] because one hash evaluation is a single multiply plus a shift,
//! which maps both to a handful of AVX instructions on the CPU and to DSP
//! blocks on the FPGA.

/// SplitMix64 step — a tiny, high-quality seeded generator used to derive the
/// random odd multipliers of a hash family without pulling in a full RNG
/// dependency.
///
/// Advances `state` and returns the next 64-bit output.
///
/// ```
/// # use rococo_sigs::splitmix64;
/// let mut s = 42;
/// let a = splitmix64(&mut s);
/// let b = splitmix64(&mut s);
/// assert_ne!(a, b);
/// ```
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A family of `k` multiply-shift hash functions mapping a 64-bit key into
/// `[0, 2^out_bits)`.
///
/// Function `i` computes `(a_i * x) >> (64 - out_bits)` with a fixed random
/// odd multiplier `a_i`. The family is approximately 2-universal, which is
/// the property the bloom false-positivity model of [`crate::fp_model`]
/// assumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiplyShift {
    mults: Vec<u64>,
    out_bits: u32,
}

impl MultiplyShift {
    /// Creates a family of `k` functions with `out_bits` output bits, with
    /// multipliers derived deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `out_bits` is not in `1..=63`.
    pub fn new(k: usize, out_bits: u32, seed: u64) -> Self {
        assert!(k > 0, "hash family must have at least one function");
        assert!(
            (1..=63).contains(&out_bits),
            "out_bits must be in 1..=63, got {out_bits}"
        );
        let mut state = seed ^ 0xa076_1d64_78bd_642f;
        let mults = (0..k)
            .map(|_| splitmix64(&mut state) | 1) // multipliers must be odd
            .collect();
        Self { mults, out_bits }
    }

    /// Number of functions in the family.
    pub fn len(&self) -> usize {
        self.mults.len()
    }

    /// Whether the family is empty (never true for a constructed family).
    pub fn is_empty(&self) -> bool {
        self.mults.is_empty()
    }

    /// Output width in bits of every function.
    pub fn out_bits(&self) -> u32 {
        self.out_bits
    }

    /// Evaluates function `i` on `key`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn hash(&self, i: usize, key: u64) -> u64 {
        self.mults[i].wrapping_mul(key) >> (64 - self.out_bits)
    }

    /// Evaluates the whole family on `key`, yielding one bucket per function.
    pub fn hash_all<'a>(&'a self, key: u64) -> impl Iterator<Item = u64> + 'a {
        (0..self.len()).map(move |i| self.hash(i, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 7;
        let mut b = 7;
        for _ in 0..16 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
    }

    #[test]
    fn outputs_fit_in_range() {
        let fam = MultiplyShift::new(8, 6, 1);
        for key in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            for h in fam.hash_all(key) {
                assert!(h < 64, "hash {h} out of range for 6 output bits");
            }
        }
    }

    #[test]
    fn different_seeds_give_different_families() {
        let a = MultiplyShift::new(4, 9, 1);
        let b = MultiplyShift::new(4, 9, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn family_spreads_keys() {
        // A crude avalanche check: consecutive keys should not all collide.
        let fam = MultiplyShift::new(1, 10, 3);
        let mut buckets = std::collections::HashSet::new();
        for key in 0..1024u64 {
            buckets.insert(fam.hash(0, key));
        }
        assert!(
            buckets.len() > 256,
            "only {} distinct buckets out of 1024 keys",
            buckets.len()
        );
    }

    #[test]
    #[should_panic(expected = "out_bits")]
    fn rejects_zero_width() {
        let _ = MultiplyShift::new(1, 0, 0);
    }
}
