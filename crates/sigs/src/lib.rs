//! Parallel (partitioned) bloom-filter signatures for ROCoCoTM.
//!
//! This crate implements the signature machinery of the paper's section 5.2:
//!
//! * [`SigScheme`] — a parallel (partitioned) bloom-filter scheme [Sanchez et
//!   al., MICRO'07]: `m` total bits split into `k` partitions, each insert
//!   sets exactly one bit per partition, chosen by an approximately universal
//!   *multiply-shift* hash [Dietzfelbinger et al. 1997].
//! * [`Sig`] — a signature value supporting insertion, membership query, set
//!   union and set intersection with plain bitwise operators, exactly the
//!   operation set the paper lists (citing Bulk [Ceze et al., ISCA'06]).
//! * [`fp_model`] — the probabilistic false-positivity model used to pick the
//!   paper's `m = 512`, eight-elements-per-intersection design point
//!   (Figure 7), following Jeffrey & Steffan [SPAA'11].
//! * [`ChunkedSig`] — the read-set summarisation of Algorithm 1: one
//!   signature per sub-set of [`CHUNK`](ChunkedSig::CHUNK) addresses plus a
//!   whole-set signature, so that a coarse overlap can be refined chunk by
//!   chunk and finally by per-address queries.
//!
//! # Example
//!
//! ```
//! use rococo_sigs::SigScheme;
//!
//! let scheme = SigScheme::paper_default(); // m = 512, k = 8
//! let mut ws = scheme.new_sig();
//! scheme.insert(&mut ws, 0xdead_beef);
//! assert!(scheme.query(&ws, 0xdead_beef));
//!
//! let mut rs = scheme.new_sig();
//! scheme.insert(&mut rs, 0x1234_5678);
//! // Two signatures of (probably) disjoint sets rarely overlap at n = 1.
//! let _ = rs.overlaps(&ws);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bloom;
mod chunked;
pub mod fp_model;
mod hash;

pub use bloom::{PrehashedAddr, Sig, SigScheme};
pub use chunked::ChunkedSig;
pub use hash::{splitmix64, MultiplyShift};
