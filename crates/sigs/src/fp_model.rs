//! Probabilistic false-positivity model for partitioned bloom signatures.
//!
//! Reproduces the analysis behind Figure 7 of the paper, which follows the
//! model of Jeffrey & Steffan, *Understanding bloom filter intersection for
//! lazy address-set disambiguation* (SPAA'11). Two quantities matter to
//! ROCoCoTM:
//!
//! * **query false positivity** — the probability that a membership query for
//!   an address *not* in the summarised set answers `true`;
//! * **intersection false set-overlap** — the probability that the bitwise
//!   AND of the signatures of two *disjoint* sets is non-empty.
//!
//! The paper's conclusion, which these functions reproduce: false set-overlap
//! rises sharply even for small sets, so ROCoCoTM (a) sizes signatures at
//! `m = 512`, and (b) only performs intersections on signatures holding at
//! most 8 elements, falling back to per-address queries for precision.

/// Probability that a *specific* bit of a partition is set after inserting
/// `n` elements into a partitioned filter with `m` total bits and `k`
/// partitions.
///
/// Each insert sets exactly one bit in each partition of `m/k` bits, so a
/// given bit survives one insert with probability `1 - k/m`.
///
/// # Panics
///
/// Panics if `k == 0` or `m < k`.
pub fn bit_set_probability(m: usize, k: usize, n: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert!(m >= k, "m must be at least k");
    1.0 - (1.0 - k as f64 / m as f64).powi(n as i32)
}

/// False-positive probability of a membership **query** against a signature
/// summarising `n` elements (m total bits, k partitions).
///
/// A query tests one bit per partition, so the false-positive probability is
/// the per-bit set probability raised to the `k`-th power.
///
/// # Panics
///
/// Panics if `k == 0` or `m < k`.
///
/// ```
/// let fp = rococo_sigs::fp_model::query_fp(512, 8, 8);
/// assert!(fp < 1e-6, "m=512,k=8,n=8 should be a very accurate filter");
/// ```
pub fn query_fp(m: usize, k: usize, n: usize) -> f64 {
    bit_set_probability(m, k, n).powi(k as i32)
}

/// False **set-overlap** probability of an intersection between the
/// signatures of two disjoint sets of `n_a` and `n_b` elements.
///
/// For a *partitioned* filter, an element common to both sets would set the
/// same bit in **every** partition of both signatures, so the AND of two
/// signatures summarises a non-empty intersection only if it is non-zero in
/// every partition (the Bulk intersection rule). Under the independent-bits
/// approximation, a given bit of a partition with `m/k` bits is set in both
/// signatures with probability `p_a * p_b`, so
///
/// ```text
/// P_fso = ( 1 - (1 - p_a * p_b)^(m/k) )^k
/// ```
///
/// This is the quantity plotted in Figure 7(b) and the reason the paper caps
/// intersected signatures at eight elements: at `m = 512, k = 8` it is about
/// 1.6 % for `n = 8` but rises above 70 % by `n = 16`.
///
/// # Panics
///
/// Panics if `k == 0` or `m < k`.
pub fn intersection_fp(m: usize, k: usize, n_a: usize, n_b: usize) -> f64 {
    let pa = bit_set_probability(m, k, n_a);
    let pb = bit_set_probability(m, k, n_b);
    let per_partition = 1.0 - (1.0 - pa * pb).powi((m / k) as i32);
    per_partition.powi(k as i32)
}

/// Expected number of set bits in a signature of `n` elements.
pub fn expected_ones(m: usize, k: usize, n: usize) -> f64 {
    m as f64 * bit_set_probability(m, k, n)
}

/// A single row of a Figure 7 sweep: analytic query and intersection false
/// positivity for one element count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpPoint {
    /// Number of elements stored in the signature(s).
    pub n: usize,
    /// Query false-positive probability.
    pub query_fp: f64,
    /// Intersection false set-overlap probability (both sides hold `n`).
    pub intersection_fp: f64,
}

/// Sweeps `n = 1..=n_max` for a given geometry, producing the series plotted
/// in Figure 7.
pub fn sweep(m: usize, k: usize, n_max: usize) -> Vec<FpPoint> {
    (1..=n_max)
        .map(|n| FpPoint {
            n,
            query_fp: query_fp(m, k, n),
            intersection_fp: intersection_fp(m, k, n, n),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_n() {
        for n in 1..63 {
            assert!(query_fp(512, 8, n + 1) >= query_fp(512, 8, n));
            assert!(intersection_fp(512, 8, n + 1, n + 1) >= intersection_fp(512, 8, n, n));
        }
    }

    #[test]
    fn larger_m_reduces_fp() {
        for n in [4, 8, 16, 32] {
            assert!(query_fp(1024, 8, n) < query_fp(512, 8, n));
        }
        // Away from saturation, a larger filter also reduces false
        // set-overlap (both sides approach 1.0 for very large n).
        for n in [4, 8, 16] {
            assert!(intersection_fp(1024, 8, n, n) < intersection_fp(512, 8, n, n));
        }
    }

    #[test]
    fn intersection_is_much_worse_than_query() {
        // The paper's central observation in 5.2: false set-overlap is
        // frequent even with a small number of elements.
        let q = query_fp(512, 8, 8);
        let i = intersection_fp(512, 8, 8, 8);
        assert!(i > 100.0 * q, "query {q} vs intersection {i}");
    }

    #[test]
    fn paper_design_point_is_acceptable() {
        // With at most 8 elements per intersected signature, false
        // set-overlap stays in the low percents.
        assert!(intersection_fp(512, 8, 8, 8) < 0.05);
        // ... while at n = 32 it would already be unusable.
        assert!(intersection_fp(512, 8, 32, 32) > 0.3);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        for m in [256usize, 512, 1024] {
            for n in [0usize, 1, 8, 64, 512] {
                for f in [query_fp(m, 8, n), intersection_fp(m, 8, n, n)] {
                    assert!((0.0..=1.0).contains(&f), "m={m} n={n} fp={f}");
                }
            }
        }
    }

    #[test]
    fn zero_elements_never_false_positive() {
        assert_eq!(query_fp(512, 8, 0), 0.0);
        assert_eq!(intersection_fp(512, 8, 0, 8), 0.0);
    }

    #[test]
    fn sweep_has_requested_length() {
        let s = sweep(512, 8, 64);
        assert_eq!(s.len(), 64);
        assert_eq!(s[0].n, 1);
        assert_eq!(s[63].n, 64);
    }
}
