//! Partitioned bloom-filter signatures.

use crate::hash::MultiplyShift;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of partitions a scheme supports (bounds a stack buffer on
/// the hot path).
const MAX_K: usize = 16;

/// A parallel (partitioned) bloom-filter scheme.
///
/// The scheme fixes the signature geometry — `m` total bits split into `k`
/// equal partitions — and owns the hash family. Signatures ([`Sig`]) are
/// plain bit vectors; all operations that need hashing (insert, query) go
/// through the scheme so that every signature in a system is guaranteed to
/// use the same geometry.
///
/// The paper's design point is `m = 512`, `k = 8`
/// ([`SigScheme::paper_default`]): eight partitions of 64 bits, matching one
/// 512-bit AVX register / cache line on the CPU and a flat wire bundle on the
/// FPGA.
#[derive(Debug, Clone)]
pub struct SigScheme {
    m_bits: usize,
    k: usize,
    part_bits: usize,
    words: usize,
    hashers: MultiplyShift,
}

impl SigScheme {
    /// Default seed used by [`SigScheme::paper_default`] and
    /// [`SigScheme::new`]'s convenience callers. Fixed so that every
    /// component of a system (CPU side, simulated FPGA side) derives the same
    /// hash family, exactly like a synthesised bitstream would.
    pub const DEFAULT_SEED: u64 = 0x5eed_0000_0c0c_0a19;

    /// Creates a scheme with `m_bits` total bits and `k` partitions, deriving
    /// the hash family from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `m_bits` is not a multiple of `64 * k`, if the partition
    /// size is not a power of two, or if `k` is 0 or greater than 16.
    pub fn with_seed(m_bits: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0 && k <= MAX_K, "k must be in 1..=16, got {k}");
        assert!(
            m_bits.is_multiple_of(64) && m_bits.is_multiple_of(k),
            "m_bits ({m_bits}) must be a multiple of 64 and of k ({k})"
        );
        let part_bits = m_bits / k;
        assert!(
            part_bits.is_power_of_two(),
            "partition size {part_bits} must be a power of two"
        );
        let out_bits = part_bits.trailing_zeros();
        Self {
            m_bits,
            k,
            part_bits,
            words: m_bits / 64,
            hashers: MultiplyShift::new(k, out_bits, seed),
        }
    }

    /// Creates a scheme with the default seed.
    ///
    /// See [`SigScheme::with_seed`] for panics.
    pub fn new(m_bits: usize, k: usize) -> Self {
        Self::with_seed(m_bits, k, Self::DEFAULT_SEED)
    }

    /// The paper's design point: 512 bits, 8 partitions.
    pub fn paper_default() -> Self {
        Self::new(512, 8)
    }

    /// Total signature size in bits (`m`).
    pub fn m_bits(&self) -> usize {
        self.m_bits
    }

    /// Number of partitions (`k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Signature size in 64-bit words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Creates an empty signature of this scheme's geometry.
    pub fn new_sig(&self) -> Sig {
        Sig {
            words: vec![0; self.words],
        }
    }

    /// Computes the `k` (word index, bit mask) positions `addr` maps to, one
    /// per partition.
    #[inline]
    fn positions(&self, addr: u64) -> ([(u32, u64); MAX_K], usize) {
        let mut out = [(0u32, 0u64); MAX_K];
        for (i, slot) in out.iter_mut().enumerate().take(self.k) {
            let h = self.hashers.hash(i, addr) as usize;
            let bit = i * self.part_bits + h;
            *slot = ((bit / 64) as u32, 1u64 << (bit % 64));
            debug_assert!(bit / 64 < self.words);
        }
        (out, self.k)
    }

    /// Inserts `addr` into `sig` (one bit per partition).
    ///
    /// # Panics
    ///
    /// Panics if `sig` does not match this scheme's geometry.
    #[inline]
    pub fn insert(&self, sig: &mut Sig, addr: u64) {
        assert_eq!(sig.words.len(), self.words, "signature geometry mismatch");
        let (pos, n) = self.positions(addr);
        for &(w, mask) in &pos[..n] {
            sig.words[w as usize] |= mask;
        }
    }

    /// Tests whether `addr` may be a member of the set summarised by `sig`.
    ///
    /// A `false` answer is exact (no false negatives); a `true` answer may be
    /// a false positive with the probability modelled by
    /// [`crate::fp_model::query_fp`].
    ///
    /// # Panics
    ///
    /// Panics if `sig` does not match this scheme's geometry.
    #[inline]
    pub fn query(&self, sig: &Sig, addr: u64) -> bool {
        assert_eq!(sig.words.len(), self.words, "signature geometry mismatch");
        let (pos, n) = self.positions(addr);
        pos[..n]
            .iter()
            .all(|&(w, mask)| sig.words[w as usize] & mask != 0)
    }

    /// Builds a signature summarising all of `addrs`.
    pub fn sig_of<I: IntoIterator<Item = u64>>(&self, addrs: I) -> Sig {
        let mut sig = self.new_sig();
        for a in addrs {
            self.insert(&mut sig, a);
        }
        sig
    }

    /// Partition-aware set-intersection test (the Bulk rule).
    ///
    /// An element common to both summarised sets sets the same bit in every
    /// partition of both signatures, so the sets *may* intersect only if the
    /// bitwise AND is non-zero in **every** partition. A `false` answer is
    /// exact; a `true` answer is a false set-overlap with the probability
    /// modelled by [`crate::fp_model::intersection_fp`].
    ///
    /// Word-parallel: partitions are a power of two bits wide, so they either
    /// span whole 64-bit words (`part_bits >= 64`) or pack evenly into one
    /// word without straddling (`part_bits < 64`). Either way each partition's
    /// AND-is-zero test is a handful of word operations with no per-bit
    /// iteration — the software shadow of the FPGA's flat AND/OR reduction
    /// tree over the 512-bit signature bundle.
    ///
    /// # Panics
    ///
    /// Panics if either signature does not match this scheme's geometry.
    pub fn sets_may_intersect(&self, a: &Sig, b: &Sig) -> bool {
        assert_eq!(a.words.len(), self.words, "signature geometry mismatch");
        assert_eq!(b.words.len(), self.words, "signature geometry mismatch");
        let aw = &a.words;
        let bw = &b.words;
        if self.part_bits >= 64 {
            // Whole words per partition: OR-accumulate the per-word ANDs and
            // fail fast on the first all-zero partition.
            let mut w = 0;
            while w < self.words {
                let part_end = w + self.part_bits / 64;
                let mut acc = 0u64;
                while w < part_end {
                    acc |= aw[w] & bw[w];
                    w += 1;
                }
                if acc == 0 {
                    return false;
                }
            }
            true
        } else {
            // Sub-word partitions (power of two < 64) never straddle a word:
            // one masked AND decides each partition.
            let per_word = 64 / self.part_bits;
            let part_mask = (1u64 << self.part_bits) - 1;
            let mut p = 0;
            while p < self.k {
                let word = p / per_word;
                let shift = (p % per_word) * self.part_bits;
                if aw[word] & bw[word] & (part_mask << shift) == 0 {
                    return false;
                }
                p += 1;
            }
            true
        }
    }

    /// Precomputes the signature positions of `addr` so repeated membership
    /// queries ([`SigScheme::query_prehashed`]) skip the hash family entirely.
    ///
    /// The validator probes each request address against every write
    /// signature in its history window; hashing once per address instead of
    /// once per (address, window entry) pair removes the dominant cost.
    #[inline]
    pub fn prehash(&self, addr: u64) -> PrehashedAddr {
        let (pos, n) = self.positions(addr);
        PrehashedAddr { pos, n }
    }

    /// [`SigScheme::query`] against positions computed by
    /// [`SigScheme::prehash`].
    ///
    /// # Panics
    ///
    /// Panics if `sig` does not match this scheme's geometry.
    #[inline]
    pub fn query_prehashed(&self, sig: &Sig, pre: &PrehashedAddr) -> bool {
        assert_eq!(sig.words.len(), self.words, "signature geometry mismatch");
        pre.pos[..pre.n]
            .iter()
            .all(|&(w, mask)| sig.words[w as usize] & mask != 0)
    }
}

/// The `k` (word index, bit mask) positions an address maps to under one
/// [`SigScheme`], precomputed via [`SigScheme::prehash`].
///
/// Only meaningful with the scheme that produced it — querying through a
/// different scheme of the same word count silently tests the wrong bits.
#[derive(Debug, Clone, Copy)]
pub struct PrehashedAddr {
    pos: [(u32, u64); MAX_K],
    n: usize,
}

/// A bloom-filter signature: a fixed-width bit vector.
///
/// All set-algebra operations (`union_with`, `intersect`, `overlaps`) are
/// geometry-agnostic bitwise operations; insertion and membership query live
/// on [`SigScheme`].
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sig {
    words: Vec<u64>,
}

impl Sig {
    /// Creates an empty signature with `words` 64-bit words. Prefer
    /// [`SigScheme::new_sig`], which ties the size to a scheme.
    pub fn zeroed(words: usize) -> Self {
        Self {
            words: vec![0; words],
        }
    }

    /// Whether no bit is set (summarises the empty set, or is only ever
    /// compared against).
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Size in 64-bit words.
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// In-place set union (`self |= other`).
    ///
    /// # Panics
    ///
    /// Panics if the signatures have different sizes.
    pub fn union_with(&mut self, other: &Sig) {
        assert_eq!(
            self.words.len(),
            other.words.len(),
            "signature size mismatch"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Set intersection (`self & other`), returned as a new signature.
    ///
    /// # Panics
    ///
    /// Panics if the signatures have different sizes.
    pub fn intersect(&self, other: &Sig) -> Sig {
        assert_eq!(
            self.words.len(),
            other.words.len(),
            "signature size mismatch"
        );
        Sig {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Whether the intersection with `other` is non-empty.
    ///
    /// This is the *set intersection* test the paper uses for eager conflict
    /// detection; a `true` may be a false set-overlap with probability
    /// modelled by [`crate::fp_model::intersection_fp`].
    ///
    /// # Panics
    ///
    /// Panics if the signatures have different sizes.
    #[inline]
    pub fn overlaps(&self, other: &Sig) -> bool {
        assert_eq!(
            self.words.len(),
            other.words.len(),
            "signature size mismatch"
        );
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Raw word view (for hardware-model code that shifts signatures through
    /// register files).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for Sig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Sig[{}b, {} ones]",
            self.words.len() * 64,
            self.count_ones()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let s = SigScheme::paper_default();
        let mut sig = s.new_sig();
        let addrs: Vec<u64> = (0..64).map(|i| i * 977 + 13).collect();
        for &a in &addrs {
            s.insert(&mut sig, a);
        }
        for &a in &addrs {
            assert!(s.query(&sig, a), "false negative for {a}");
        }
    }

    #[test]
    fn empty_sig_queries_false() {
        let s = SigScheme::paper_default();
        let sig = s.new_sig();
        for a in 0..1000u64 {
            assert!(!s.query(&sig, a));
        }
    }

    #[test]
    fn one_bit_per_partition() {
        let s = SigScheme::paper_default();
        let mut sig = s.new_sig();
        s.insert(&mut sig, 0xfeed);
        assert_eq!(sig.count_ones(), 8, "one insert must set exactly k bits");
    }

    #[test]
    fn union_superset_of_both() {
        let s = SigScheme::paper_default();
        let mut a = s.sig_of([1, 2, 3]);
        let b = s.sig_of([100, 200]);
        a.union_with(&b);
        for addr in [1u64, 2, 3, 100, 200] {
            assert!(s.query(&a, addr));
        }
    }

    #[test]
    fn intersect_of_disjoint_small_sets_is_usually_empty() {
        // With n = 1 on each side and m = 512, a false set-overlap should be
        // extremely rare; over 500 trials expect at most a few.
        let s = SigScheme::paper_default();
        let mut overlap = 0;
        for i in 0..500u64 {
            let a = s.sig_of([i * 2 + 1_000_000]);
            let b = s.sig_of([i * 2 + 2_000_001]);
            if a.overlaps(&b) {
                overlap += 1;
            }
        }
        assert!(overlap < 20, "too many false set-overlaps: {overlap}");
    }

    #[test]
    fn overlaps_matches_intersect_nonempty() {
        let s = SigScheme::new(256, 4);
        let a = s.sig_of(0..20u64);
        let b = s.sig_of(15..40u64);
        assert_eq!(a.overlaps(&b), !a.intersect(&b).is_empty());
    }

    #[test]
    fn scheme_sizes() {
        let s = SigScheme::new(1024, 8);
        assert_eq!(s.words(), 16);
        assert_eq!(s.m_bits(), 1024);
        assert_eq!(s.k(), 8);
        assert_eq!(s.new_sig().len_words(), 16);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn mismatched_sig_rejected() {
        let s = SigScheme::paper_default();
        let mut wrong = Sig::zeroed(4);
        s.insert(&mut wrong, 1);
    }

    /// Reference implementation of the partition rule: per-bit scan, no word
    /// tricks. The word-parallel fast paths must agree with this exactly.
    fn intersect_reference(s: &SigScheme, a: &Sig, b: &Sig) -> bool {
        (0..s.k).all(|p| {
            (p * s.part_bits..(p + 1) * s.part_bits)
                .any(|bit| a.words[bit / 64] & b.words[bit / 64] & (1u64 << (bit % 64)) != 0)
        })
    }

    #[test]
    fn word_parallel_intersection_matches_reference() {
        // Geometries covering every fast path: part_bits = 64 (paper
        // default), multi-word partitions (128), and sub-word partitions
        // (32 and 16).
        for (m, k) in [(512, 8), (1024, 8), (512, 16), (256, 16), (256, 4)] {
            let s = SigScheme::new(m, k);
            let mut seed = 0x1234_5678_9abc_def0u64 ^ (m as u64) << 16 ^ k as u64;
            let mut next = || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            };
            for trial in 0..200 {
                // Vary set sizes so some trials saturate partitions and some
                // leave them empty.
                let na = (trial % 17) as usize;
                let nb = (trial % 5) as usize;
                let a = s.sig_of((0..na).map(|_| next()));
                let b = s.sig_of((0..nb).map(|_| next()));
                assert_eq!(
                    s.sets_may_intersect(&a, &b),
                    intersect_reference(&s, &a, &b),
                    "m={m} k={k} trial={trial}"
                );
                // Shared-element case: must always report possible overlap.
                if na > 0 {
                    let shared = next();
                    let mut a2 = a.clone();
                    let mut b2 = b.clone();
                    s.insert(&mut a2, shared);
                    s.insert(&mut b2, shared);
                    assert!(s.sets_may_intersect(&a2, &b2));
                }
            }
            // Empty signatures never intersect anything.
            let empty = s.new_sig();
            assert!(!s.sets_may_intersect(&empty, &empty));
        }
    }

    #[test]
    fn prehashed_query_matches_query() {
        for (m, k) in [(512, 8), (512, 16), (1024, 8)] {
            let s = SigScheme::new(m, k);
            let sig = s.sig_of((0..40u64).map(|i| i * 131 + 7));
            for a in 0..600u64 {
                let pre = s.prehash(a);
                assert_eq!(
                    s.query(&sig, a),
                    s.query_prehashed(&sig, &pre),
                    "m={m} k={k} addr={a}"
                );
            }
        }
    }
}
