//! Chunked read-set summaries (Algorithm 1's per-8-address sub-signatures).
//!
//! Section 5.3: "Since the set intersection on bloom-filter signatures
//! features a sharp rise of false positivity after recording eight elements,
//! the read set summarizes a signature for every subset of eight addresses.
//! If the signature of the whole read set overlaps with TempSet, the
//! transaction iterates signatures in each sub-set for more accurate
//! intersection with TempSet."

use crate::bloom::{Sig, SigScheme};

/// A read-set summary holding a whole-set signature plus one signature per
/// chunk of up to [`ChunkedSig::CHUNK`] addresses, along with the raw
/// addresses themselves.
///
/// The three-level overlap test ([`ChunkedSig::conflicts_with`]) mirrors the
/// paper's refinement ladder:
///
/// 1. whole-set signature ∩ other — O(1), coarse;
/// 2. per-chunk signature ∩ other — O(r/8), keeps each intersected signature
///    at ≤ 8 elements where false set-overlap is low (Figure 7);
/// 3. per-address membership query against `other` — exact up to query false
///    positivity, which is orders of magnitude lower than intersection false
///    overlap.
#[derive(Debug, Clone)]
pub struct ChunkedSig {
    whole: Sig,
    chunks: Vec<Sig>,
    addrs: Vec<u64>,
}

impl ChunkedSig {
    /// Addresses per sub-signature. The paper picks 8: a 512-bit signature's
    /// intersection false positivity is acceptable up to eight elements, and
    /// "each 512-bit cacheline can store exactly eight 64-bit addresses".
    pub const CHUNK: usize = 8;

    /// Creates an empty summary for `scheme`'s geometry.
    pub fn new(scheme: &SigScheme) -> Self {
        Self {
            whole: scheme.new_sig(),
            chunks: Vec::new(),
            addrs: Vec::new(),
        }
    }

    /// Number of addresses recorded.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether no address has been recorded.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The recorded addresses, in insertion order.
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The whole-set signature.
    pub fn whole_sig(&self) -> &Sig {
        &self.whole
    }

    /// Records `addr` in the whole-set signature and the current chunk.
    ///
    /// Chunk signatures retained by a previous [`ChunkedSig::clear`] are
    /// reused in place, so a recycled summary inserts without allocating
    /// until it outgrows its previous high-water mark.
    pub fn insert(&mut self, scheme: &SigScheme, addr: u64) {
        scheme.insert(&mut self.whole, addr);
        let idx = self.addrs.len() / Self::CHUNK;
        if idx == self.chunks.len() {
            self.chunks.push(scheme.new_sig());
        }
        scheme.insert(&mut self.chunks[idx], addr);
        self.addrs.push(addr);
    }

    /// Clears the summary for reuse, zeroing chunk signatures in place
    /// rather than freeing them: read-set summaries are recycled on every
    /// transaction, and keeping the chunk allocations makes the steady
    /// state allocation-free.
    pub fn clear(&mut self) {
        self.whole.clear();
        for chunk in &mut self.chunks {
            chunk.clear();
        }
        self.addrs.clear();
    }

    /// Three-level refined conflict test against `other` (typically the
    /// union of committed write-set signatures, the paper's `TempSet`).
    ///
    /// Returns `true` only if some *recorded address* queries positive in
    /// `other`, i.e. the result has only the (tiny) query false positivity —
    /// intersection false overlaps at levels 1 and 2 merely cost extra work,
    /// not extra aborts.
    pub fn conflicts_with(&self, scheme: &SigScheme, other: &Sig) -> bool {
        if other.is_empty() || !scheme.sets_may_intersect(&self.whole, other) {
            return false;
        }
        // Only the chunks actually covering recorded addresses are live;
        // trailing chunks retained by `clear` are zeroed and skipped.
        let live = self.addrs.len().div_ceil(Self::CHUNK);
        for (ci, chunk) in self.chunks[..live].iter().enumerate() {
            if !scheme.sets_may_intersect(chunk, other) {
                continue;
            }
            let start = ci * Self::CHUNK;
            let end = (start + Self::CHUNK).min(self.addrs.len());
            if self.addrs[start..end]
                .iter()
                .any(|&a| scheme.query(other, a))
            {
                return true;
            }
        }
        false
    }

    /// Coarse conflict test: whole-set signature overlap only (what a
    /// hardware structure without the address list would report).
    pub fn coarse_overlaps(&self, other: &Sig) -> bool {
        self.whole.overlaps(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> SigScheme {
        SigScheme::paper_default()
    }

    #[test]
    fn detects_true_conflicts() {
        let s = scheme();
        let mut rs = ChunkedSig::new(&s);
        for a in 0..20u64 {
            rs.insert(&s, a * 31);
        }
        // Write set containing one of the read addresses.
        let ws = s.sig_of([5 * 31]);
        assert!(rs.conflicts_with(&s, &ws));
    }

    #[test]
    fn no_conflict_with_empty_other() {
        let s = scheme();
        let mut rs = ChunkedSig::new(&s);
        rs.insert(&s, 42);
        assert!(!rs.conflicts_with(&s, &s.new_sig()));
    }

    #[test]
    fn refinement_filters_false_overlaps() {
        // Build a large read set and many disjoint write sets; the refined
        // test must report (almost) no conflicts even though the coarse
        // whole-set signature is saturated enough to overlap frequently.
        let s = scheme();
        let mut rs = ChunkedSig::new(&s);
        for a in 0..64u64 {
            rs.insert(&s, a);
        }
        let mut coarse = 0;
        let mut refined = 0;
        for i in 0..200u64 {
            let ws = s.sig_of([1_000_000 + i * 7, 2_000_000 + i * 13]);
            if rs.coarse_overlaps(&ws) {
                coarse += 1;
            }
            if rs.conflicts_with(&s, &ws) {
                refined += 1;
            }
        }
        assert!(
            refined <= coarse,
            "refinement may never add conflicts ({refined} > {coarse})"
        );
        assert!(
            refined < 5,
            "refined false conflicts too frequent: {refined}"
        );
    }

    #[test]
    fn chunk_count_tracks_len() {
        let s = scheme();
        let mut rs = ChunkedSig::new(&s);
        assert!(rs.is_empty());
        for a in 0..17u64 {
            rs.insert(&s, a);
        }
        assert_eq!(rs.len(), 17);
        assert_eq!(rs.chunks.len(), 3); // ceil(17 / 8)
        rs.clear();
        assert!(rs.is_empty());
        // Chunk allocations are retained (zeroed) for reuse.
        assert_eq!(rs.chunks.len(), 3);
        assert!(rs.chunks.iter().all(Sig::is_empty));
    }

    #[test]
    fn reuse_after_clear_behaves_like_fresh() {
        let s = scheme();
        let mut rs = ChunkedSig::new(&s);
        for a in 0..20u64 {
            rs.insert(&s, a * 31);
        }
        rs.clear();
        // A recycled summary must not remember cleared addresses...
        let old = s.sig_of([5 * 31]);
        assert!(!rs.conflicts_with(&s, &old));
        // ...and must detect conflicts on its new contents.
        for a in [7u64, 1000, 2000] {
            rs.insert(&s, a);
        }
        assert!(rs.conflicts_with(&s, &s.sig_of([1000u64])));
        assert!(!rs.conflicts_with(&s, &s.sig_of([31u64 * 3])));
        assert_eq!(rs.addrs(), &[7, 1000, 2000]);
    }

    #[test]
    fn addrs_returns_insertion_order() {
        let s = scheme();
        let mut rs = ChunkedSig::new(&s);
        for a in [5u64, 3, 9] {
            rs.insert(&s, a);
        }
        assert_eq!(rs.addrs(), &[5, 3, 9]);
    }
}
