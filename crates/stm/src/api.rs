//! The TM-system interface shared by every runtime.

use crate::heap::{Addr, TmHeap, Word};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortKind {
    /// Eagerly detected conflict on the CPU side (lock conflict, doomed by
    /// a concurrent transaction, stale read / broken snapshot).
    Conflict,
    /// The simulated FPGA rejected the transaction: dependency cycle.
    FpgaCycle,
    /// The simulated FPGA rejected the transaction: sliding-window overflow
    /// (also used for commit-queue overruns on the CPU side).
    FpgaWindow,
    /// Hardware-capacity abort (HTM cache-footprint overflow).
    Capacity,
    /// The HTM fallback lock was taken, dooming hardware transactions.
    FallbackLock,
    /// The user closure requested a retry.
    Explicit,
    /// The backend's validation service stopped before producing a
    /// verdict (shutdown or validator death). The transaction's effects
    /// were discarded; retrying is pointless unless the service comes
    /// back.
    ServiceStopped,
}

impl AbortKind {
    /// Every abort kind, in the order the per-reason counters are laid
    /// out. Service layers iterate this to build abort-cause breakdowns
    /// without hard-coding the variant list.
    pub const ALL: [AbortKind; 7] = [
        AbortKind::Conflict,
        AbortKind::FpgaCycle,
        AbortKind::FpgaWindow,
        AbortKind::Capacity,
        AbortKind::FallbackLock,
        AbortKind::Explicit,
        AbortKind::ServiceStopped,
    ];

    /// Number of abort kinds — the length of dense per-cause counter
    /// arrays indexed by [`AbortKind::index`].
    pub const COUNT: usize = Self::ALL.len();

    /// The position of this kind within [`AbortKind::ALL`] (stable index
    /// for dense per-cause counter arrays).
    pub fn index(self) -> usize {
        match self {
            AbortKind::Conflict => 0,
            AbortKind::FpgaCycle => 1,
            AbortKind::FpgaWindow => 2,
            AbortKind::Capacity => 3,
            AbortKind::FallbackLock => 4,
            AbortKind::Explicit => 5,
            AbortKind::ServiceStopped => 6,
        }
    }

    /// Canonical short label for this kind — the one spelling used by
    /// service reports, chaos reproducer output, and telemetry metric
    /// label values (`rococo_*_aborts_total{kind="..."}`).
    pub fn as_label(self) -> &'static str {
        match self {
            AbortKind::Conflict => "cpu-stale-read",
            AbortKind::FpgaCycle => "fpga-cycle",
            AbortKind::FpgaWindow => "fpga-window",
            AbortKind::Capacity => "htm-capacity",
            AbortKind::FallbackLock => "htm-fallback-lock",
            AbortKind::Explicit => "explicit-retry",
            AbortKind::ServiceStopped => "validator-stopped",
        }
    }
}

/// A transaction abort. Returned by [`Transaction`] operations; propagate
/// it with `?` so [`atomically`] can retry the closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort {
    /// The abort class (used for the per-reason statistics of Figure 10).
    pub kind: AbortKind,
}

impl Abort {
    /// Convenience constructor.
    pub fn new(kind: AbortKind) -> Self {
        Self { kind }
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted: {}", self.kind.as_label())
    }
}

impl std::error::Error for Abort {}

/// Construction parameters common to all TM systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TmConfig {
    /// Heap capacity in 64-bit words.
    pub heap_words: usize,
    /// Maximum number of worker threads that will ever call
    /// [`TmSystem::begin`] concurrently (thread ids must be `< max_threads`).
    pub max_threads: usize,
}

impl Default for TmConfig {
    fn default() -> Self {
        Self {
            heap_words: 1 << 20,
            max_threads: 28,
        }
    }
}

/// One in-flight transaction.
///
/// Reads and writes return [`Abort`] when the runtime detects a conflict
/// eagerly; the caller should propagate the error outwards (the
/// [`atomically`] loop re-executes the closure). Writes are buffered by
/// every runtime and only reach the heap on a successful commit.
pub trait Transaction {
    /// Transactionally reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the runtime detects that this transaction can
    /// no longer commit (e.g. its snapshot broke).
    fn read(&mut self, addr: Addr) -> Result<Word, Abort>;

    /// Transactionally writes `val` to `addr` (buffered until commit).
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if the runtime detects that this transaction can
    /// no longer commit.
    fn write(&mut self, addr: Addr, val: Word) -> Result<(), Abort>;

    /// Attempts to commit, consuming the transaction and reporting the
    /// transaction's **durable sequence number**: a dense counter
    /// (`0, 1, 2, ...` per system) fetched *inside* the commit critical
    /// section, so that sequence order is consistent with serialization
    /// order for every dependent pair of transactions. Read-only commits
    /// return `Ok(None)` — they change nothing and need no log record.
    ///
    /// The durability layer writes committed transactions to its redo
    /// log in this order; density is what lets crash recovery prove the
    /// log has no holes.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if validation fails; all buffered writes are
    /// discarded.
    fn commit_seq(self) -> Result<Option<u64>, Abort>
    where
        Self: Sized;

    /// Attempts to commit, consuming the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if validation fails; all buffered writes are
    /// discarded.
    fn commit(self) -> Result<(), Abort>
    where
        Self: Sized,
    {
        self.commit_seq().map(|_| ())
    }

    /// The in-flight commit handle produced by [`Transaction::submit_commit`].
    /// Backends without asynchronous validation use [`ReadyCommit`], which
    /// holds the already-final verdict.
    type Pending: PendingCommit;

    /// Splits the commit into **submit** and **await + write back** so a
    /// caller can overlap the validation round-trips of several
    /// transactions (the paper's Figure 6 pipelining argument applied at
    /// the worker level).
    ///
    /// On `Ok`, validation has been dispatched (or already finished for
    /// synchronous backends) and the caller must eventually call
    /// [`PendingCommit::finish`] to learn the verdict and publish the
    /// writes. On `Err`, the backend demands a synchronous commit for this
    /// attempt (e.g. an irrevocable transaction, or the commit gate is
    /// contended); the transaction is handed back untouched so the caller
    /// can fall through to [`Transaction::commit_seq`].
    ///
    /// # Errors
    ///
    /// `Err(self)` — not a failure, merely "commit me synchronously".
    fn submit_commit(self) -> Result<Self::Pending, Self>
    where
        Self: Sized;
}

/// An in-flight commit: validation has been submitted, the verdict and
/// the write-back are still owed. Produced by
/// [`Transaction::submit_commit`].
pub trait PendingCommit {
    /// Awaits the verdict, publishes buffered writes on success, and
    /// reports the durable sequence number exactly like
    /// [`Transaction::commit_seq`].
    ///
    /// # Errors
    ///
    /// Returns [`Abort`] if validation failed; all buffered writes are
    /// discarded.
    fn finish(self) -> Result<Option<u64>, Abort>;
}

/// A [`PendingCommit`] whose verdict was already decided at submission
/// time — the degenerate pending handle used by backends that commit
/// synchronously (seqlock, global-lock, TinySTM, HTM).
#[derive(Debug)]
pub struct ReadyCommit(Result<Option<u64>, Abort>);

impl ReadyCommit {
    /// Wraps an already-final commit outcome.
    pub fn new(outcome: Result<Option<u64>, Abort>) -> Self {
        Self(outcome)
    }
}

impl PendingCommit for ReadyCommit {
    fn finish(self) -> Result<Option<u64>, Abort> {
        self.0
    }
}

/// A transactional-memory runtime.
pub trait TmSystem: Send + Sync {
    /// The transaction type handed to worker closures.
    type Tx<'a>: Transaction
    where
        Self: 'a;

    /// Human-readable system name (used by benchmark reports).
    fn name(&self) -> &'static str;

    /// The shared heap.
    fn heap(&self) -> &TmHeap;

    /// Starts a transaction on behalf of worker `thread_id`.
    ///
    /// # Panics
    ///
    /// May panic if `thread_id` exceeds the configured `max_threads`.
    fn begin(&self, thread_id: usize) -> Self::Tx<'_>;

    /// Statistics accumulated since construction.
    fn stats(&self) -> &TmStats;

    /// Phase-boundary hook: the STAMP harness calls this at the start and
    /// end of every timed parallel phase. The default does nothing; the
    /// recording wrapper uses it to tag transaction records with a phase
    /// epoch.
    fn mark_phase(&self) {}

    /// Injected-fault counters of the backend's validation service, when
    /// the backend runs one with chaos-testing fault injection enabled.
    /// `None` for backends without a validation service (or with
    /// injection disabled counters stay zero). Service layers surface
    /// this in their reports so injected chaos is distinguishable from
    /// organic aborts.
    fn injected_faults(&self) -> Option<rococo_fpga::FaultSnapshot> {
        None
    }

    /// Counters of the backend's FPGA validation engine, when the backend
    /// runs one. `None` for backends without a validation service.
    /// Telemetry scrapers surface these under `rococo_fpga_*`.
    fn engine_stats(&self) -> Option<rococo_fpga::EngineStats> {
        None
    }

    /// Tags the transactions worker `thread_id` begins next with a
    /// scheduling class. Plain backends ignore the tag; the hybrid
    /// scheduler keys footprint prediction and conflict serialization on
    /// it. Calling this is not a transactional side effect — it is safe
    /// (if pointless) to call between retries of the same request.
    fn set_tx_class(&self, _thread_id: usize, _class: u32) {}

    /// A coherent statistics view for reporting. The default reads
    /// [`TmSystem::stats`] directly. Composite systems override this to
    /// fold in backend-internal counters (fallback/read-only commits,
    /// validation timings) that the generic entry points only ever bump
    /// on the *inner* backends' stats — without touching starts, commits
    /// or aborts, which the entry points bump exactly once on the outer
    /// stats.
    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }

    /// Exports backend-specific metric families beyond `rococo_tm_*`
    /// into `reg`. The default exports nothing; the hybrid scheduler
    /// publishes its `rococo_sched_*` router counters through this hook
    /// (the service scraper cannot name the sched crate without a
    /// dependency cycle).
    fn export_extra_metrics(&self, _reg: &mut rococo_telemetry::MetricsRegistry) {}
}

/// Runs `body` as a transaction on `system`, retrying on abort with
/// exponential backoff until it commits. Returns the closure's result.
///
/// The closure may be executed multiple times; side effects outside the
/// transaction should be idempotent. Returning `Err(Abort)` from the
/// closure also triggers a retry (use [`AbortKind::Explicit`] for
/// programmatic retry).
pub fn atomically<S, R, F>(system: &S, thread_id: usize, mut body: F) -> R
where
    S: TmSystem + ?Sized,
    F: FnMut(&mut S::Tx<'_>) -> Result<R, Abort>,
{
    let mut backoff = 0u32;
    loop {
        match try_atomically(system, thread_id, &mut body) {
            Ok(r) => return r,
            Err(_) => {
                // Bounded randomised-ish exponential backoff.
                let spins = 1u32 << backoff.min(10);
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
                if backoff >= 10 {
                    std::thread::yield_now();
                }
                backoff += 1;
            }
        }
    }
}

/// Runs `body` as a single transaction attempt: begin, execute, commit.
///
/// # Errors
///
/// Returns the [`Abort`] if either the closure or the commit aborts.
pub fn try_atomically<S, R, F>(system: &S, thread_id: usize, body: &mut F) -> Result<R, Abort>
where
    S: TmSystem + ?Sized,
    F: FnMut(&mut S::Tx<'_>) -> Result<R, Abort>,
{
    try_atomically_seq(system, thread_id, body).map(|(r, _)| r)
}

/// Like [`try_atomically`] but also reports the commit's durable
/// sequence number (`None` for read-only commits) — the hook the
/// durability layer uses to log committed transactions in serialization
/// order. See [`Transaction::commit_seq`].
///
/// # Errors
///
/// Returns the [`Abort`] if either the closure or the commit aborts.
pub fn try_atomically_seq<S, R, F>(
    system: &S,
    thread_id: usize,
    body: &mut F,
) -> Result<(R, Option<u64>), Abort>
where
    S: TmSystem + ?Sized,
    F: FnMut(&mut S::Tx<'_>) -> Result<R, Abort>,
{
    system.stats().starts.fetch_add(1, Ordering::Relaxed);
    // Emitted before `begin` so any escalation event the backend records
    // while admitting the attempt lands inside this attempt's history.
    rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Begin);
    let mut tx = system.begin(thread_id);
    match body(&mut tx) {
        Ok(r) => match tx.commit_seq() {
            Ok(seq) => {
                system.stats().commits.fetch_add(1, Ordering::Relaxed);
                rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Commit {
                    seq: seq.unwrap_or(0),
                });
                Ok((r, seq))
            }
            Err(abort) => {
                system.stats().record_abort(abort.kind);
                rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Abort {
                    kind: abort.kind.as_label(),
                });
                Err(abort)
            }
        },
        Err(abort) => {
            system.stats().record_abort(abort.kind);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Abort {
                kind: abort.kind.as_label(),
            });
            Err(abort)
        }
    }
}

/// Outcome of one batched transaction attempt ([`try_submit`]).
pub enum Submitted<'a, S: TmSystem + ?Sized + 'a, R> {
    /// The body succeeded and validation is in flight; call
    /// [`finish_submitted`] to collect the verdict and write back.
    Pending(<S::Tx<'a> as Transaction>::Pending, R),
    /// The body succeeded but the backend demands a synchronous commit
    /// for this attempt; call [`commit_deferred`] (after draining any
    /// earlier pendings, so lock-ordering stays acyclic).
    Deferred(S::Tx<'a>, R),
    /// The body itself aborted (already recorded in the stats).
    Aborted(Abort),
}

/// Runs one transaction attempt up to the validation point and submits
/// the commit without waiting for the verdict — the batch-friendly half
/// of [`try_atomically_seq`]. Pair every [`Submitted::Pending`] with a
/// [`finish_submitted`] call and every [`Submitted::Deferred`] with
/// [`commit_deferred`]; both record the commit/abort bookkeeping that
/// `try_atomically_seq` would.
pub fn try_submit<'a, S, R, F>(system: &'a S, thread_id: usize, body: &mut F) -> Submitted<'a, S, R>
where
    S: TmSystem + ?Sized,
    F: FnMut(&mut S::Tx<'a>) -> Result<R, Abort>,
{
    system.stats().starts.fetch_add(1, Ordering::Relaxed);
    rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Begin);
    let mut tx = system.begin(thread_id);
    match body(&mut tx) {
        Ok(r) => match tx.submit_commit() {
            Ok(pending) => Submitted::Pending(pending, r),
            Err(tx) => Submitted::Deferred(tx, r),
        },
        Err(abort) => {
            system.stats().record_abort(abort.kind);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Abort {
                kind: abort.kind.as_label(),
            });
            Submitted::Aborted(abort)
        }
    }
}

/// Awaits a pending commit produced by [`try_submit`] and records the
/// same commit/abort bookkeeping as [`try_atomically_seq`].
///
/// # Errors
///
/// Returns the [`Abort`] if validation failed.
pub fn finish_submitted<S, P>(system: &S, pending: P) -> Result<Option<u64>, Abort>
where
    S: TmSystem + ?Sized,
    P: PendingCommit,
{
    match pending.finish() {
        Ok(seq) => {
            system.stats().commits.fetch_add(1, Ordering::Relaxed);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Commit {
                seq: seq.unwrap_or(0),
            });
            Ok(seq)
        }
        Err(abort) => {
            system.stats().record_abort(abort.kind);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Abort {
                kind: abort.kind.as_label(),
            });
            Err(abort)
        }
    }
}

/// Synchronously commits a transaction handed back by
/// [`Submitted::Deferred`], with the same bookkeeping as
/// [`try_atomically_seq`].
///
/// # Errors
///
/// Returns the [`Abort`] if validation failed.
pub fn commit_deferred<'a, S>(system: &S, tx: S::Tx<'a>) -> Result<Option<u64>, Abort>
where
    S: TmSystem + ?Sized + 'a,
{
    match tx.commit_seq() {
        Ok(seq) => {
            system.stats().commits.fetch_add(1, Ordering::Relaxed);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Commit {
                seq: seq.unwrap_or(0),
            });
            Ok(seq)
        }
        Err(abort) => {
            system.stats().record_abort(abort.kind);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Abort {
                kind: abort.kind.as_label(),
            });
            Err(abort)
        }
    }
}

/// Shared statistics counters. All counters are monotonically increasing
/// and updated with relaxed atomics; read a coherent-enough view with
/// [`TmStats::snapshot`].
#[derive(Debug, Default)]
pub struct TmStats {
    /// Transaction attempts started.
    pub starts: AtomicU64,
    /// Successful commits.
    pub commits: AtomicU64,
    /// Aborts: eager CPU-side conflicts.
    pub aborts_conflict: AtomicU64,
    /// Aborts: FPGA cycle rejections.
    pub aborts_fpga_cycle: AtomicU64,
    /// Aborts: FPGA window overflow.
    pub aborts_fpga_window: AtomicU64,
    /// Aborts: HTM capacity.
    pub aborts_capacity: AtomicU64,
    /// Aborts: HTM fallback-lock interference.
    pub aborts_fallback: AtomicU64,
    /// Aborts: explicit user retry.
    pub aborts_explicit: AtomicU64,
    /// Aborts: validation service stopped mid-request.
    pub aborts_service_stopped: AtomicU64,
    /// Commits that ran on a fallback path (HTM global lock).
    pub fallback_commits: AtomicU64,
    /// Commits of read-only transactions (never leave the CPU).
    pub read_only_commits: AtomicU64,
    /// Wall-clock nanoseconds spent in the validation phase.
    pub validation_ns: AtomicU64,
    /// Model-time nanoseconds the validation phase would take on the
    /// simulated platform (FPGA pipeline + CCI hops).
    pub validation_model_ns: AtomicU64,
    /// Number of validation phases measured.
    pub validations: AtomicU64,
}

impl TmStats {
    /// Records one abort of the given kind.
    pub fn record_abort(&self, kind: AbortKind) {
        let ctr = match kind {
            AbortKind::Conflict => &self.aborts_conflict,
            AbortKind::FpgaCycle => &self.aborts_fpga_cycle,
            AbortKind::FpgaWindow => &self.aborts_fpga_window,
            AbortKind::Capacity => &self.aborts_capacity,
            AbortKind::FallbackLock => &self.aborts_fallback,
            AbortKind::Explicit => &self.aborts_explicit,
            AbortKind::ServiceStopped => &self.aborts_service_stopped,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            starts: self.starts.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: HashMap::from([
                (
                    AbortKind::Conflict,
                    self.aborts_conflict.load(Ordering::Relaxed),
                ),
                (
                    AbortKind::FpgaCycle,
                    self.aborts_fpga_cycle.load(Ordering::Relaxed),
                ),
                (
                    AbortKind::FpgaWindow,
                    self.aborts_fpga_window.load(Ordering::Relaxed),
                ),
                (
                    AbortKind::Capacity,
                    self.aborts_capacity.load(Ordering::Relaxed),
                ),
                (
                    AbortKind::FallbackLock,
                    self.aborts_fallback.load(Ordering::Relaxed),
                ),
                (
                    AbortKind::Explicit,
                    self.aborts_explicit.load(Ordering::Relaxed),
                ),
                (
                    AbortKind::ServiceStopped,
                    self.aborts_service_stopped.load(Ordering::Relaxed),
                ),
            ]),
            fallback_commits: self.fallback_commits.load(Ordering::Relaxed),
            read_only_commits: self.read_only_commits.load(Ordering::Relaxed),
            validation_ns: self.validation_ns.load(Ordering::Relaxed),
            validation_model_ns: self.validation_model_ns.load(Ordering::Relaxed),
            validations: self.validations.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`TmStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Transaction attempts started.
    pub starts: u64,
    /// Successful commits.
    pub commits: u64,
    /// Aborts per kind.
    pub aborts: HashMap<AbortKind, u64>,
    /// Commits on a fallback path.
    pub fallback_commits: u64,
    /// Read-only commits.
    pub read_only_commits: u64,
    /// Wall nanoseconds in validation.
    pub validation_ns: u64,
    /// Model nanoseconds in validation.
    pub validation_model_ns: u64,
    /// Validation phases measured.
    pub validations: u64,
}

impl StatsSnapshot {
    /// Total aborts.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Aborted attempts over all attempts — the Figure 10 abort-rate
    /// metric ("the ratio of the number of aborted transactions over the
    /// total number of executed transactions").
    pub fn abort_rate(&self) -> f64 {
        let total = self.commits + self.total_aborts();
        if total == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / total as f64
        }
    }

    /// Aborts attributed to the FPGA (the dotted series of Figure 10).
    pub fn fpga_aborts(&self) -> u64 {
        self.aborts.get(&AbortKind::FpgaCycle).copied().unwrap_or(0)
            + self
                .aborts
                .get(&AbortKind::FpgaWindow)
                .copied()
                .unwrap_or(0)
    }

    /// FPGA-attributed abort rate.
    pub fn fpga_abort_rate(&self) -> f64 {
        let total = self.commits + self.total_aborts();
        if total == 0 {
            0.0
        } else {
            self.fpga_aborts() as f64 / total as f64
        }
    }

    /// Mean wall-clock validation overhead per measured transaction, in
    /// microseconds (Figure 11).
    pub fn mean_validation_us(&self) -> f64 {
        if self.validations == 0 {
            0.0
        } else {
            self.validation_ns as f64 / self.validations as f64 / 1000.0
        }
    }

    /// Mean model-time validation overhead per measured transaction, in
    /// microseconds (Figure 11, simulated-platform time).
    pub fn mean_validation_model_us(&self) -> f64 {
        if self.validations == 0 {
            0.0
        } else {
            self.validation_model_ns as f64 / self.validations as f64 / 1000.0
        }
    }

    /// Publishes the runtime counters into a metrics registry under the
    /// unified `rococo_tm_*` namespace, abort causes keyed by the
    /// canonical [`AbortKind::as_label`] spellings.
    pub fn export_metrics(&self, reg: &mut rococo_telemetry::MetricsRegistry) {
        reg.counter(
            "rococo_tm_starts_total",
            "Transaction attempts started",
            &[],
            self.starts,
        );
        reg.counter(
            "rococo_tm_commits_total",
            "Transactions committed",
            &[],
            self.commits,
        );
        for kind in AbortKind::ALL {
            reg.counter(
                "rococo_tm_aborts_total",
                "Transaction aborts by cause",
                &[("kind", kind.as_label())],
                self.aborts.get(&kind).copied().unwrap_or(0),
            );
        }
        reg.counter(
            "rococo_tm_fallback_commits_total",
            "Commits that ran on a fallback path",
            &[],
            self.fallback_commits,
        );
        reg.counter(
            "rococo_tm_read_only_commits_total",
            "Read-only commits (never leave the CPU)",
            &[],
            self.read_only_commits,
        );
        reg.counter(
            "rococo_tm_validation_ns_total",
            "Wall-clock nanoseconds spent in validation",
            &[],
            self.validation_ns,
        );
        reg.counter(
            "rococo_tm_validation_model_ns_total",
            "Model-time nanoseconds spent in validation",
            &[],
            self.validation_model_ns,
        );
        reg.counter(
            "rococo_tm_validations_total",
            "Validation phases measured",
            &[],
            self.validations,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_rates() {
        let s = TmStats::default();
        s.commits.store(80, Ordering::Relaxed);
        s.record_abort(AbortKind::Conflict);
        s.record_abort(AbortKind::FpgaCycle);
        for _ in 0..18 {
            s.record_abort(AbortKind::Conflict);
        }
        let snap = s.snapshot();
        assert_eq!(snap.total_aborts(), 20);
        assert!((snap.abort_rate() - 0.2).abs() < 1e-9);
        assert_eq!(snap.fpga_aborts(), 1);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let snap = TmStats::default().snapshot();
        assert_eq!(snap.abort_rate(), 0.0);
        assert_eq!(snap.mean_validation_us(), 0.0);
    }

    #[test]
    fn abort_display_uses_the_canonical_label() {
        let a = Abort::new(AbortKind::Capacity);
        assert_eq!(a.to_string(), "transaction aborted: htm-capacity");
    }

    #[test]
    fn labels_are_unique_and_stable() {
        let labels: Vec<&str> = AbortKind::ALL.iter().map(|k| k.as_label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), AbortKind::COUNT, "duplicate label");
        assert_eq!(labels[AbortKind::Conflict.index()], "cpu-stale-read");
    }
}
