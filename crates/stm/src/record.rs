//! A recording TM wrapper: captures every committed transaction's
//! footprint and measured execution time.
//!
//! [`Recorder`] wraps any [`TmSystem`] and logs a [`TxnRecord`] per commit.
//! The virtual-time multicore simulator (`rococo-sim`) replays these
//! records to study scaling on hardware the build host does not have.
//!
//! Records carry the *phase epoch* — bumped by [`TmSystem::mark_phase`],
//! which the STAMP harness calls at parallel-phase boundaries — so that
//! sequential setup work can be separated from the timed parallel region.

use crate::api::{Abort, PendingCommit, TmConfig, TmStats, TmSystem, Transaction};
use crate::heap::{Addr, TmHeap, Word};
use crate::seq::SeqTm;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One committed transaction's footprint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TxnRecord {
    /// Deduplicated read set (addresses, excluding read-own-write hits).
    pub reads: Vec<u64>,
    /// Deduplicated write set.
    pub writes: Vec<u64>,
    /// Measured wall time from begin to successful commit, nanoseconds.
    pub exec_ns: f64,
    /// Phase epoch at commit time (odd = inside a marked parallel phase).
    pub epoch: u64,
}

impl TxnRecord {
    /// Whether the transaction wrote nothing.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

/// A [`TmSystem`] wrapper that records committed transactions.
#[derive(Debug)]
pub struct Recorder<S> {
    inner: S,
    log: Mutex<Vec<TxnRecord>>,
    epoch: AtomicU64,
}

impl<S: TmSystem> Recorder<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            log: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(0),
        }
    }

    /// Consumes the recorder, returning the log.
    pub fn into_log(self) -> Vec<TxnRecord> {
        self.log.into_inner()
    }

    /// A copy of the log so far.
    pub fn log(&self) -> Vec<TxnRecord> {
        self.log.lock().clone()
    }

    /// The wrapped system.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

/// Convenience constructor: a recorder over a sequential runtime — the
/// standard way to extract a workload for the simulator.
pub fn recording_seq(config: TmConfig) -> Recorder<SeqTm> {
    Recorder::new(SeqTm::with_config(config))
}

/// A recording transaction.
pub struct RecordTx<'a, S: TmSystem + 'a> {
    inner: S::Tx<'a>,
    log: &'a Mutex<Vec<TxnRecord>>,
    epoch: &'a AtomicU64,
    reads: Vec<u64>,
    writes: Vec<u64>,
    started: Instant,
}

impl<'a, S: TmSystem> std::fmt::Debug for RecordTx<'a, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordTx")
            .field("reads", &self.reads.len())
            .field("writes", &self.writes.len())
            .finish()
    }
}

impl<'a, S: TmSystem> Transaction for RecordTx<'a, S> {
    fn read(&mut self, addr: Addr) -> Result<Word, Abort> {
        let v = self.inner.read(addr)?;
        let a = addr as u64;
        if !self.writes.contains(&a) && !self.reads.contains(&a) {
            self.reads.push(a);
        }
        Ok(v)
    }

    fn write(&mut self, addr: Addr, val: Word) -> Result<(), Abort> {
        self.inner.write(addr, val)?;
        let a = addr as u64;
        if !self.writes.contains(&a) {
            self.writes.push(a);
        }
        Ok(())
    }

    fn commit_seq(self) -> Result<Option<u64>, Abort> {
        let exec_ns = self.started.elapsed().as_nanos() as f64;
        let seq = self.inner.commit_seq()?;
        self.log.lock().push(TxnRecord {
            reads: self.reads,
            writes: self.writes,
            exec_ns,
            epoch: self.epoch.load(Ordering::Relaxed),
        });
        Ok(seq)
    }

    type Pending = RecordPending<'a, S>;

    fn submit_commit(self) -> Result<RecordPending<'a, S>, Self> {
        // Execution time stops at submission: the verdict wait is commit
        // overhead, not workload execution.
        let exec_ns = self.started.elapsed().as_nanos() as f64;
        match self.inner.submit_commit() {
            Ok(inner) => Ok(RecordPending {
                inner,
                log: self.log,
                epoch: self.epoch,
                reads: self.reads,
                writes: self.writes,
                exec_ns,
            }),
            Err(inner) => Err(Self {
                inner,
                log: self.log,
                epoch: self.epoch,
                reads: self.reads,
                writes: self.writes,
                started: self.started,
            }),
        }
    }
}

/// An in-flight [`RecordTx`] commit: logs the footprint once the inner
/// commit is confirmed.
pub struct RecordPending<'a, S: TmSystem + 'a> {
    inner: <S::Tx<'a> as Transaction>::Pending,
    log: &'a Mutex<Vec<TxnRecord>>,
    epoch: &'a AtomicU64,
    reads: Vec<u64>,
    writes: Vec<u64>,
    exec_ns: f64,
}

impl<'a, S: TmSystem> PendingCommit for RecordPending<'a, S> {
    fn finish(self) -> Result<Option<u64>, Abort> {
        let seq = self.inner.finish()?;
        self.log.lock().push(TxnRecord {
            reads: self.reads,
            writes: self.writes,
            exec_ns: self.exec_ns,
            epoch: self.epoch.load(Ordering::Relaxed),
        });
        Ok(seq)
    }
}

impl<S: TmSystem> TmSystem for Recorder<S> {
    type Tx<'a>
        = RecordTx<'a, S>
    where
        S: 'a;

    fn name(&self) -> &'static str {
        "Recorder"
    }

    fn heap(&self) -> &TmHeap {
        self.inner.heap()
    }

    fn begin(&self, thread_id: usize) -> RecordTx<'_, S> {
        RecordTx {
            inner: self.inner.begin(thread_id),
            log: &self.log,
            epoch: &self.epoch,
            reads: Vec::new(),
            writes: Vec::new(),
            started: Instant::now(),
        }
    }

    fn stats(&self) -> &TmStats {
        self.inner.stats()
    }

    fn mark_phase(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    fn injected_faults(&self) -> Option<rococo_fpga::FaultSnapshot> {
        self.inner.injected_faults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::atomically;

    #[test]
    fn records_committed_footprints() {
        let rec = recording_seq(TmConfig {
            heap_words: 64,
            max_threads: 1,
        });
        atomically(&rec, 0, |tx| {
            let v = tx.read(1)?;
            tx.write(2, v + 1)?;
            tx.write(2, v + 2) // duplicate write: dedup
        });
        let log = rec.into_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].reads, vec![1]);
        assert_eq!(log[0].writes, vec![2]);
        assert!(log[0].exec_ns >= 0.0);
        assert_eq!(log[0].epoch, 0);
    }

    #[test]
    fn aborted_attempts_are_not_recorded() {
        let rec = recording_seq(TmConfig {
            heap_words: 64,
            max_threads: 1,
        });
        let mut first = true;
        atomically(&rec, 0, |tx| {
            tx.write(0, 1)?;
            if first {
                first = false;
                return Err(Abort::new(crate::api::AbortKind::Explicit));
            }
            Ok(())
        });
        assert_eq!(rec.log().len(), 1, "only the committed attempt is logged");
    }

    #[test]
    fn phase_epochs_tag_records() {
        let rec = recording_seq(TmConfig {
            heap_words: 64,
            max_threads: 1,
        });
        atomically(&rec, 0, |tx| tx.write(0, 1));
        rec.mark_phase();
        atomically(&rec, 0, |tx| tx.write(1, 1));
        rec.mark_phase();
        atomically(&rec, 0, |tx| tx.write(2, 1));
        let log = rec.into_log();
        assert_eq!(
            log.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn read_own_write_not_in_read_set() {
        let rec = recording_seq(TmConfig {
            heap_words: 64,
            max_threads: 1,
        });
        atomically(&rec, 0, |tx| {
            tx.write(5, 9)?;
            let v = tx.read(5)?;
            assert_eq!(v, 9);
            Ok(())
        });
        let log = rec.into_log();
        assert!(log[0].reads.is_empty());
        assert_eq!(log[0].writes, vec![5]);
    }
}
