//! ROCoCoTM: the hybrid TM of section 5.
//!
//! The CPU side implements Algorithm 1 and the snapshot machinery of
//! Figure 8; validation of read-write transactions is offloaded to the
//! simulated FPGA pipeline (`rococo-fpga`) through asynchronous queues:
//!
//! * a global timestamp `GlobalTS` counts committed read-write
//!   transactions and doubles as the FPGA's commit sequence;
//! * every commit publishes its write-set bloom signature in the
//!   **commit queue** indexed by its sequence number; executing
//!   transactions drain the queue into a `TempSet` to detect snapshot
//!   breaks and maintain `ValidTS` (the newest sequence their whole read
//!   set is consistent with);
//! * the **update set** holds the signatures of transactions currently
//!   writing back, serving as commit-time locking: an executor reading one
//!   of those addresses backs off (or aborts if it already missed
//!   updates);
//! * a transaction with writes sends `(read addresses, write addresses,
//!   ValidTS)` to the validator and, when granted sequence `s`, waits for
//!   its turn (`GlobalTS == s`), publishes its update-set entry, writes
//!   back its redo log, publishes the commit-queue signature and bumps
//!   `GlobalTS`. Read-only transactions commit directly on the CPU.

use crate::api::{Abort, AbortKind, PendingCommit, TmConfig, TmStats, TmSystem, Transaction};
use crate::heap::{Addr, TmHeap, Word};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use rococo_fpga::{
    EngineConfig, EngineStats, FaultConfig, FaultSnapshot, FpgaVerdict, PendingVerdict,
    ServiceHandle, TimingModel, ValidateRequest, ValidationService,
};
use rococo_sigs::{ChunkedSig, PrehashedAddr, Sig, SigScheme};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// ROCoCoTM-specific configuration.
#[derive(Debug, Clone)]
pub struct RococoConfig {
    /// Common TM parameters.
    pub tm: TmConfig,
    /// FPGA sliding-window capacity `W`.
    pub window: usize,
    /// Signature geometry shared between CPU and FPGA.
    pub scheme: SigScheme,
    /// Commit-queue length (must exceed the number of commits that can
    /// happen while one transaction executes; overruns abort the laggard).
    pub queue_len: usize,
    /// Timing model used to charge model time for validation (Figure 11).
    pub timing: TimingModel,
    /// Bounded back-off iterations when a read hits the update set before
    /// the conflict is treated as an abort.
    pub update_spin: usize,
    /// Consecutive aborts after which a thread's next attempt runs
    /// *irrevocably*: it takes the commit gate exclusively, so no other
    /// transaction can commit underneath it and it is guaranteed to
    /// succeed. This is the escape hatch the paper sketches for long
    /// transactions starved by the sliding window ("to ensure long
    /// transactions can eventually commit, irrevocability may be
    /// required", section 4.2).
    pub irrevocable_after: u32,
    /// Fault injection applied to the spawned validation service (chaos
    /// testing). Disabled by default; the `rococo-chaos` harness enables
    /// it to exercise the commit path under pathological FPGA timing.
    pub faults: FaultConfig,
}

impl Default for RococoConfig {
    fn default() -> Self {
        Self {
            tm: TmConfig::default(),
            window: 64,
            scheme: SigScheme::paper_default(),
            queue_len: 1024,
            timing: TimingModel::default(),
            update_spin: 1 << 14,
            irrevocable_after: 16,
            faults: FaultConfig::disabled(),
        }
    }
}

/// One slot of the update set: the write signature of a transaction that is
/// currently writing back, used as commit-time locking.
#[derive(Debug)]
struct UpdateSlot {
    sig: RwLock<Option<Sig>>,
}

/// Recycled per-transaction buffers, pooled per thread so `begin` is
/// allocation-free in the steady state. At a few hundred thousand
/// transactions per second the handful of small vector allocations each
/// `begin` would otherwise perform (read-set summary, write/miss
/// signatures, write-address list, redo map) is measurable on the commit
/// hot path, and all of them are trivially reusable: each is cleared when
/// it is handed back.
///
/// The pool is per thread (the same index space as the update slots), so
/// the mutex is effectively uncontended — only the owning thread takes
/// from it, and the only cross-thread traffic is a pending commit handle
/// finishing on another thread, which cannot happen under the worker
/// model (`finish` runs on the submitting worker).
#[derive(Debug, Default)]
struct Scratch {
    read_sets: Vec<ChunkedSig>,
    sigs: Vec<Sig>,
    addr_lists: Vec<Vec<Addr>>,
    redos: Vec<HashMap<Addr, Word>>,
}

/// The ROCoCoTM runtime.
#[derive(Debug)]
pub struct RococoTm {
    heap: Arc<TmHeap>,
    stats: TmStats,
    config: RococoConfig,
    scheme: SigScheme,
    /// Count of committed read-write transactions; also the next FPGA
    /// commit sequence to be published.
    global_ts: AtomicU64,
    /// Ring buffer of committed write-set signatures, indexed by
    /// `seq % queue_len`. Slot contents are valid for `seq < global_ts`.
    commit_queue: Vec<RwLock<Sig>>,
    /// Per-thread update-set slots plus a fast-path occupancy bitmap
    /// (bit `t` of word `t / 64` set while thread `t`'s slot is
    /// published), so the read path only locks slots that are in use.
    update_slots: Vec<UpdateSlot>,
    update_occupancy: Vec<AtomicU64>,
    /// Commit gate: committers hold it shared; an irrevocable transaction
    /// holds it exclusively for its whole lifetime, freezing `GlobalTS` so
    /// nothing can invalidate its snapshot.
    commit_gate: RwLock<()>,
    /// Consecutive aborts per thread (irrevocability escalation).
    consecutive_aborts: Vec<std::sync::atomic::AtomicU32>,
    /// Per-thread recycled transaction buffers (see [`Scratch`]).
    scratch: Vec<Mutex<Scratch>>,
    /// The simulated FPGA; kept alive for the runtime's lifetime (dropping
    /// it stops the validator thread).
    _service: ValidationService,
    handle: ServiceHandle,
}

impl RococoTm {
    /// Creates a ROCoCoTM with default ROCoCo parameters.
    pub fn with_config(tm: TmConfig) -> Self {
        Self::with_configs(RococoConfig {
            tm,
            ..RococoConfig::default()
        })
    }

    /// Creates a ROCoCoTM with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `queue_len < window` or any size is zero.
    pub fn with_configs(config: RococoConfig) -> Self {
        let heap = Arc::new(TmHeap::new(config.tm.heap_words));
        Self::with_shared_heap(config, heap)
    }

    /// Creates a ROCoCoTM over a caller-provided heap. The hybrid
    /// scheduler uses this so the ROCoCoTM slow path shares its words
    /// with the HTM fast path (the hybrid's mode gate keeps the two
    /// engines from validating concurrently).
    ///
    /// # Panics
    ///
    /// Panics if `queue_len < window` or any size is zero.
    pub fn with_shared_heap(config: RococoConfig, heap: Arc<TmHeap>) -> Self {
        assert!(
            config.queue_len >= config.window,
            "commit queue must cover at least one window"
        );
        let scheme = config.scheme.clone();
        let service = ValidationService::spawn_with_faults(
            EngineConfig {
                window: config.window,
                scheme: scheme.clone(),
            },
            config.faults.clone(),
        );
        let handle = service.handle();
        Self {
            heap,
            stats: TmStats::default(),
            scheme: scheme.clone(),
            global_ts: AtomicU64::new(0),
            commit_queue: (0..config.queue_len)
                .map(|_| RwLock::new(scheme.new_sig()))
                .collect(),
            update_slots: (0..config.tm.max_threads)
                .map(|_| UpdateSlot {
                    sig: RwLock::new(None),
                })
                .collect(),
            update_occupancy: (0..config.tm.max_threads.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
            commit_gate: RwLock::new(()),
            consecutive_aborts: (0..config.tm.max_threads)
                .map(|_| std::sync::atomic::AtomicU32::new(0))
                .collect(),
            scratch: (0..config.tm.max_threads)
                .map(|_| Mutex::new(Scratch::default()))
                .collect(),
            _service: service,
            handle,
            config,
        }
    }

    /// The signature scheme shared with the simulated FPGA.
    pub fn scheme(&self) -> &SigScheme {
        &self.scheme
    }

    /// Statistics of the FPGA-side engine (requests, commits, cycle and
    /// window aborts — the dotted series of Figure 10). Falls back to the
    /// last snapshot once the validator thread has shut down, so metrics
    /// scrapes racing teardown degrade instead of panicking.
    pub fn fpga_stats(&self) -> EngineStats {
        self.handle
            .stats()
            .unwrap_or_else(|| self.handle.last_stats())
    }

    /// A cloneable handle onto the shared validation engine. Service
    /// layers use it to watch validator backlog (admission control) and to
    /// read engine statistics without going through the runtime.
    pub fn service_handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Takes one set of transaction buffers from `thread`'s scratch pool,
    /// allocating fresh ones only when the pool runs dry (cold start, or
    /// buffers lost to an abort path — see [`RococoTm::recycle`]).
    ///
    /// Returns `(read_set, write_sig, miss_set, write_addrs, redo)`.
    #[allow(clippy::type_complexity)]
    fn take_scratch(
        &self,
        thread: usize,
    ) -> (ChunkedSig, Sig, Sig, Vec<Addr>, HashMap<Addr, Word>) {
        let mut pool = self.scratch[thread].lock();
        (
            pool.read_sets
                .pop()
                .unwrap_or_else(|| ChunkedSig::new(&self.scheme)),
            pool.sigs.pop().unwrap_or_else(|| self.scheme.new_sig()),
            pool.sigs.pop().unwrap_or_else(|| self.scheme.new_sig()),
            pool.addr_lists.pop().unwrap_or_default(),
            pool.redos.pop().unwrap_or_default(),
        )
    }

    /// Returns transaction buffers to `thread`'s scratch pool, clearing
    /// each piece as it is shelved so `take_scratch` can hand them out
    /// as-is. Any piece may be `None`: the submit path recycles the
    /// read-side buffers at submission while the write signature and redo
    /// log travel with the pending handle and come back at `finish`.
    ///
    /// Buffers owned by a transaction that aborts mid-execution (the
    /// `tm_read` conflict paths) are simply dropped with it — aborts are
    /// the rare path, and recovering them would require a `Drop` impl that
    /// conflicts with the commit paths moving fields out of the
    /// transaction.
    fn recycle(
        &self,
        thread: usize,
        read_set: Option<ChunkedSig>,
        sigs: [Option<Sig>; 2],
        addrs: Option<Vec<Addr>>,
        redo: Option<HashMap<Addr, Word>>,
    ) {
        let mut pool = self.scratch[thread].lock();
        if let Some(mut rs) = read_set {
            rs.clear();
            pool.read_sets.push(rs);
        }
        for mut sig in sigs.into_iter().flatten() {
            sig.clear();
            pool.sigs.push(sig);
        }
        if let Some(mut a) = addrs {
            a.clear();
            pool.addr_lists.push(a);
        }
        if let Some(mut m) = redo {
            m.clear();
            pool.redos.push(m);
        }
    }

    /// Marks thread `t`'s update slot occupied in the fast-path bitmap.
    fn mark_update_slot(&self, t: usize) {
        self.update_occupancy[t / 64].fetch_or(1 << (t % 64), Ordering::SeqCst);
    }

    /// Clears thread `t`'s update-slot occupancy bit.
    fn clear_update_slot(&self, t: usize) {
        self.update_occupancy[t / 64].fetch_and(!(1 << (t % 64)), Ordering::SeqCst);
    }

    /// Whether `addr` is currently claimed by a committing transaction's
    /// update-set entry (commit-time locking, Algorithm 1 line 5).
    ///
    /// The occupancy bitmap keeps the common zero-committer case to a
    /// handful of atomic loads — the old implementation read-locked every
    /// slot whenever *any* committer was active, serialising every
    /// transactional read behind unrelated commits. The bitmap is a hint
    /// with the same race window the old occupancy counter had: a
    /// committer that publishes between our load and the heap read is
    /// caught by the commit-queue drain and the re-check in `tm_read`.
    fn update_set_hits(&self, addr: Addr) -> bool {
        let mut pre: Option<PrehashedAddr> = None;
        for (wi, word) in self.update_occupancy.iter().enumerate() {
            let mut bits = word.load(Ordering::SeqCst);
            if bits == 0 {
                continue;
            }
            let pre = *pre.get_or_insert_with(|| self.scheme.prehash(addr as u64));
            while bits != 0 {
                let t = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let hit = self.update_slots[t]
                    .sig
                    .read()
                    .as_ref()
                    .is_some_and(|sig| self.scheme.query_prehashed(sig, &pre));
                if hit {
                    return true;
                }
            }
        }
        false
    }

    /// Publishes a validated commit at its FPGA-granted sequence: waits
    /// for the turn (`GlobalTS == seq`), installs the update-set entry,
    /// writes back the redo log, publishes the commit-queue signature and
    /// bumps `GlobalTS`. Shared by the synchronous commit path and
    /// [`RococoPending::finish`].
    ///
    /// Every sequence before `seq` was granted to some committer that
    /// will publish it; write-backs are thereby ordered, which subsumes
    /// the paper's write-write commit ordering. Spin briefly, then yield:
    /// the committer we are waiting on may not be running (oversubscribed
    /// or single-core hosts), and a full timeslice of spinning would
    /// stall the whole commit chain.
    fn publish_commit(&self, thread: usize, seq: u64, write_sig: &Sig, redo: &HashMap<Addr, Word>) {
        let mut spins = 0u32;
        while self.global_ts.load(Ordering::SeqCst) != seq {
            spins += 1;
            if spins > 128 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }

        // Publish the update-set entry (commit-time locking), write back,
        // publish the commit-queue signature, bump GlobalTS, release.
        {
            let mut slot = self.update_slots[thread].sig.write();
            *slot = Some(write_sig.clone());
        }
        self.mark_update_slot(thread);

        for (&addr, &val) in redo {
            self.heap.store_direct(addr, val);
        }

        {
            let mut qslot =
                self.commit_queue[(seq % self.config.queue_len as u64) as usize].write();
            qslot.clone_from(write_sig);
        }
        self.global_ts.store(seq + 1, Ordering::SeqCst);

        {
            let mut slot = self.update_slots[thread].sig.write();
            *slot = None;
        }
        self.clear_update_slot(thread);
    }
}

/// A [`RococoTm`] transaction (the per-thread state of Algorithm 1).
pub struct RococoTx<'a> {
    tm: &'a RococoTm,
    thread: usize,
    /// All commits with `seq < local_ts` have been folded into the
    /// conflict checks so far.
    local_ts: u64,
    /// The read set is consistent as of this sequence.
    valid_ts: u64,
    /// Chunked read-set summary (whole-set + per-8-address signatures +
    /// raw addresses).
    read_set: ChunkedSig,
    /// Write-set signature.
    write_sig: Sig,
    /// Write-set addresses in first-write order.
    write_addrs: Vec<Addr>,
    /// Redo log.
    redo: HashMap<Addr, Word>,
    /// Union of committed write signatures this transaction failed to
    /// observe (Figure 8(c)); non-empty means `valid_ts` is frozen.
    miss_set: Sig,
    /// Held exclusively when the transaction runs irrevocably.
    irrevocable: Option<RwLockWriteGuard<'a, ()>>,
}

impl std::fmt::Debug for RococoTx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RococoTx")
            .field("irrevocable", &self.irrevocable.is_some())
            .field("thread", &self.thread)
            .field("local_ts", &self.local_ts)
            .field("valid_ts", &self.valid_ts)
            .field("reads", &self.read_set.len())
            .field("writes", &self.write_addrs.len())
            .finish()
    }
}

impl RococoTx<'_> {
    /// Records an abort against this thread's escalation counter and
    /// builds the `Abort`. Every abort path must route through here:
    /// `consecutive_aborts` drives irrevocability escalation, and a path
    /// that skips the bump can starve a thread below the escalation
    /// threshold forever.
    fn count_abort(&self, kind: AbortKind) -> Abort {
        self.tm.consecutive_aborts[self.thread].fetch_add(1, Ordering::Relaxed);
        Abort::new(kind)
    }

    /// Drains the commit queue from `local_ts` to the current `GlobalTS`
    /// into a fresh `TempSet` (Algorithm 1 lines 9–13).
    ///
    /// Returns `None` — meaning the transaction must abort — if the queue
    /// was overrun (the laggard cannot reconstruct what it missed).
    fn drain_temp_set(&mut self) -> Option<(Sig, u64)> {
        let queue_len = self.tm.config.queue_len as u64;
        let start_ts = self.local_ts;
        let gts = self.tm.global_ts.load(Ordering::SeqCst);
        if gts == start_ts {
            return Some((self.tm.scheme.new_sig(), gts));
        }
        // The committer at sequence `s` overwrites ring slot `s % queue_len`
        // the moment GlobalTS reaches `s`, so the oldest slot still intact is
        // `gts - queue_len`. A lag of exactly `queue_len` means slot
        // `start_ts % queue_len` is the one being clobbered *right now* —
        // only a strict inequality keeps the scan inside live history.
        if gts - start_ts >= queue_len {
            return None; // ring overrun: history lost
        }
        let mut temp = self.tm.scheme.new_sig();
        for seq in start_ts..gts {
            let slot = &self.tm.commit_queue[(seq % queue_len) as usize];
            temp.union_with(&slot.read());
        }
        // The scan itself takes time: committers may have advanced GlobalTS
        // while we were reading and recycled slots out from under us. The
        // per-slot locks only guarantee each read was not torn, not that the
        // slot still held the sequence we wanted. Re-check against the
        // *original* start before trusting the union.
        let gts_after = self.tm.global_ts.load(Ordering::SeqCst);
        if gts_after - start_ts >= queue_len {
            return None; // a scanned slot may have been recycled mid-scan
        }
        self.local_ts = gts;
        Some((temp, gts))
    }

    /// The read path of Algorithm 1 (`TM_READ`).
    fn tm_read(&mut self, addr: Addr) -> Result<Word, Abort> {
        // Line 1–4: read-own-write.
        if let Some(&v) = self.redo.get(&addr) {
            return Ok(v);
        }

        let mut spins = 0usize;
        loop {
            // Lines 5–7: back off while a committer's update set covers the
            // address; if we already missed updates, abort instead.
            while self.tm.update_set_hits(addr) {
                if !self.miss_set.is_empty() {
                    return Err(self.count_abort(AbortKind::Conflict));
                }
                spins += 1;
                if spins > self.tm.config.update_spin {
                    return Err(self.count_abort(AbortKind::Conflict));
                }
                std::hint::spin_loop();
            }

            // Line 8: speculative value read.
            let v = self.tm.heap.load_direct(addr);

            // Lines 9–13: fold newly committed write sets into TempSet.
            let Some((temp, gts)) = self.drain_temp_set() else {
                return Err(self.count_abort(AbortKind::FpgaWindow));
            };

            // If a committer was mid-write-back on this address we may have
            // read a torn (new) value while its signature is not yet in the
            // queue; re-check the update set and retry in that case.
            if self.tm.update_set_hits(addr) {
                continue;
            }

            // Lines 14–19 plus the ValidTS extension of Figure 8(b).
            if !temp.is_empty() {
                let conflict = self.read_set.conflicts_with(&self.tm.scheme, &temp);
                if self.miss_set.is_empty() && !conflict {
                    self.valid_ts = gts; // snapshot extends
                } else {
                    self.miss_set.union_with(&temp);
                }
            } else if self.miss_set.is_empty() {
                self.valid_ts = gts;
            }
            if !self.miss_set.is_empty() && self.tm.scheme.query(&self.miss_set, addr as u64) {
                // The address we are reading was updated after ValidTS: the
                // snapshot cannot stay consistent (Figure 8(d)). This is the
                // CPU-side fast abort path — no out-of-core latency.
                return Err(self.count_abort(AbortKind::Conflict));
            }

            // Line 20.
            self.read_set.insert(&self.tm.scheme, addr as u64);
            // Flight-recorder sampling: record read-set growth at
            // power-of-two sizes so big transactions stay cheap to trace.
            if rococo_telemetry::enabled() {
                let len = self.read_set.len();
                if len.is_power_of_two() {
                    rococo_telemetry::emit(rococo_telemetry::TxEvent::ReadSet { len: len as u32 });
                }
            }
            return Ok(v);
        }
    }
}

impl<'a> Transaction for RococoTx<'a> {
    fn read(&mut self, addr: Addr) -> Result<Word, Abort> {
        self.tm_read(addr)
    }

    fn write(&mut self, addr: Addr, val: Word) -> Result<(), Abort> {
        // TM_WRITE: signature insert + redo log (lines 21–22).
        if !self.redo.contains_key(&addr) {
            self.tm.scheme.insert(&mut self.write_sig, addr as u64);
            self.write_addrs.push(addr);
            if rococo_telemetry::enabled() && self.write_addrs.len().is_power_of_two() {
                rococo_telemetry::emit(rococo_telemetry::TxEvent::WriteSet {
                    len: self.write_addrs.len() as u32,
                });
            }
        }
        self.redo.insert(addr, val);
        Ok(())
    }

    fn commit_seq(self) -> Result<Option<u64>, Abort> {
        let tm = self.tm;

        // Read-only transactions commit directly on the CPU: their read
        // set is consistent at valid_ts by construction.
        if self.write_addrs.is_empty() {
            tm.stats.read_only_commits.fetch_add(1, Ordering::Relaxed);
            tm.consecutive_aborts[self.thread].store(0, Ordering::Relaxed);
            tm.recycle(
                self.thread,
                Some(self.read_set),
                [Some(self.write_sig), Some(self.miss_set)],
                Some(self.write_addrs),
                Some(self.redo),
            );
            return Ok(None);
        }

        // Ordinary committers share the gate; an irrevocable transaction
        // already holds it exclusively (and therefore skips it here).
        let _shared_gate = if self.irrevocable.is_none() {
            Some(tm.commit_gate.read())
        } else {
            None
        };

        // Ship (read addresses, write addresses, ValidTS) to the FPGA and
        // wait for the verdict.
        let req = ValidateRequest {
            tx_id: self.thread as u64,
            valid_ts: self.valid_ts,
            read_addrs: self.read_set.addrs().to_vec(),
            write_addrs: self.write_addrs.iter().map(|&a| a as u64).collect(),
        };
        let n_addrs = req.read_addrs.len() + req.write_addrs.len();
        rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::ValidateSubmit {
            reads: req.read_addrs.len() as u32,
            writes: req.write_addrs.len() as u32,
        });
        let t0 = Instant::now();
        // rococo-lint: allow(guard-across-wait) -- the shared commit-gate read is held across validation by design (§4): an escalation writer must not interleave between verdict and publication; the validator never takes the gate
        let verdict = tm.handle.validate(req);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        tm.stats.validation_ns.fetch_add(wall_ns, Ordering::Relaxed);
        tm.stats.validation_model_ns.fetch_add(
            tm.config.timing.latency_ns(n_addrs) as u64,
            Ordering::Relaxed,
        );
        tm.stats.validations.fetch_add(1, Ordering::Relaxed);
        rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Verdict {
            verdict: match verdict {
                FpgaVerdict::Commit { .. } => "commit",
                FpgaVerdict::AbortCycle => "abort-cycle",
                FpgaVerdict::AbortWindowOverflow => "abort-window",
                FpgaVerdict::ServiceStopped => "service-stopped",
            },
            model_ns: tm.config.timing.latency_ns(n_addrs) as u64,
            detector_ns: tm.config.timing.detector_ns(n_addrs) as u64,
            manager_ns: tm.config.timing.manager_ns() as u64,
            in_flight: tm.handle.in_flight() as u32,
        });

        let seq = match verdict {
            FpgaVerdict::Commit { seq } => seq,
            refused => {
                let kind = match refused {
                    FpgaVerdict::AbortCycle => AbortKind::FpgaCycle,
                    FpgaVerdict::AbortWindowOverflow => AbortKind::FpgaWindow,
                    _ => AbortKind::ServiceStopped,
                };
                let abort = self.count_abort(kind);
                // A verdict-time abort retries immediately; hand the
                // buffers straight back so the retry's `begin` stays
                // allocation-free.
                tm.recycle(
                    self.thread,
                    Some(self.read_set),
                    [Some(self.write_sig), Some(self.miss_set)],
                    Some(self.write_addrs),
                    Some(self.redo),
                );
                return Err(abort);
            }
        };

        tm.publish_commit(self.thread, seq, &self.write_sig, &self.redo);

        if self.irrevocable.is_some() {
            tm.stats.fallback_commits.fetch_add(1, Ordering::Relaxed);
        }
        tm.consecutive_aborts[self.thread].store(0, Ordering::Relaxed);
        tm.recycle(
            self.thread,
            Some(self.read_set),
            [Some(self.write_sig), Some(self.miss_set)],
            Some(self.write_addrs),
            Some(self.redo),
        );
        // The FPGA-granted sequence doubles as the durable sequence: it
        // is dense from 0 across update commits, and the turn-wait inside
        // `publish_commit` makes write-backs publish in exactly this
        // order.
        Ok(Some(seq))
    }

    type Pending = RococoPending<'a>;

    /// Dispatches validation without waiting for the verdict — the
    /// batch-friendly half of the commit, amortising the validator
    /// round-trip across many in-flight transactions (Figure 6).
    ///
    /// Demands a synchronous commit (`Err(self)`) when the transaction is
    /// irrevocable (it must commit under its exclusive gate, immediately)
    /// or when the commit gate cannot be acquired without blocking: a
    /// waiting escalation writer means parking here could deadlock a
    /// worker whose own earlier pendings still hold read guards.
    fn submit_commit(self) -> Result<RococoPending<'a>, Self> {
        let tm = self.tm;

        // Read-only transactions commit directly on the CPU: nothing to
        // await, so the pending handle is born settled.
        if self.write_addrs.is_empty() {
            tm.stats.read_only_commits.fetch_add(1, Ordering::Relaxed);
            tm.consecutive_aborts[self.thread].store(0, Ordering::Relaxed);
            let thread = self.thread;
            tm.recycle(
                thread,
                Some(self.read_set),
                [Some(self.write_sig), Some(self.miss_set)],
                Some(self.write_addrs),
                Some(self.redo),
            );
            return Ok(RococoPending {
                tm,
                thread,
                state: PendingState::Done,
            });
        }

        if self.irrevocable.is_some() {
            return Err(self);
        }
        let Some(gate) = tm.commit_gate.try_read() else {
            return Err(self);
        };

        let req = ValidateRequest {
            tx_id: self.thread as u64,
            valid_ts: self.valid_ts,
            read_addrs: self.read_set.addrs().to_vec(),
            write_addrs: self.write_addrs.iter().map(|&a| a as u64).collect(),
        };
        let n_addrs = req.read_addrs.len() + req.write_addrs.len();
        rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::ValidateSubmit {
            reads: req.read_addrs.len() as u32,
            writes: req.write_addrs.len() as u32,
        });
        let verdict = tm.handle.validate_async(req);
        // The read-side buffers are done the moment the request is built;
        // the write signature and redo log travel with the pending handle
        // (write-back happens at `finish`) and are recycled there.
        tm.recycle(
            self.thread,
            Some(self.read_set),
            [Some(self.miss_set), None],
            Some(self.write_addrs),
            None,
        );
        Ok(RococoPending {
            tm,
            thread: self.thread,
            state: PendingState::InFlight {
                verdict,
                write_sig: self.write_sig,
                redo: self.redo,
                n_addrs,
                _gate: gate,
            },
        })
    }
}

/// An in-flight [`RococoTx`] commit: validation has been shipped to the
/// FPGA, the verdict and the write-back are still owed.
pub struct RococoPending<'a> {
    tm: &'a RococoTm,
    thread: usize,
    state: PendingState<'a>,
}

enum PendingState<'a> {
    /// Settled at submission (read-only commit, or already finished).
    Done,
    /// Awaiting the FPGA verdict. The shared commit-gate guard is held
    /// until the verdict is consumed so an irrevocable escalation cannot
    /// slip between our validation and our publication.
    InFlight {
        verdict: PendingVerdict,
        write_sig: Sig,
        redo: HashMap<Addr, Word>,
        n_addrs: usize,
        _gate: RwLockReadGuard<'a, ()>,
    },
}

impl std::fmt::Debug for RococoPending<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RococoPending")
            .field("thread", &self.thread)
            .field(
                "in_flight",
                &matches!(self.state, PendingState::InFlight { .. }),
            )
            .finish()
    }
}

impl RococoPending<'_> {
    /// See [`RococoTx::count_abort`]: every abort path must bump the
    /// escalation counter, including verdict-time aborts of submitted
    /// commits.
    fn count_abort(tm: &RococoTm, thread: usize, kind: AbortKind) -> Abort {
        tm.consecutive_aborts[thread].fetch_add(1, Ordering::Relaxed);
        Abort::new(kind)
    }
}

impl PendingCommit for RococoPending<'_> {
    fn finish(mut self) -> Result<Option<u64>, Abort> {
        let tm = self.tm;
        let thread = self.thread;
        let (verdict, write_sig, redo, n_addrs, _gate) =
            match std::mem::replace(&mut self.state, PendingState::Done) {
                PendingState::Done => return Ok(None),
                PendingState::InFlight {
                    verdict,
                    write_sig,
                    redo,
                    n_addrs,
                    _gate,
                } => (verdict, write_sig, redo, n_addrs, _gate),
            };

        // The wall clock measures the *residual* stall: time actually
        // spent blocked on the verdict after whatever useful work the
        // caller overlapped with the round-trip. The model time still
        // charges the full simulated round-trip (Figure 11).
        let t0 = Instant::now();
        let verdict = verdict.wait();
        let wall_ns = t0.elapsed().as_nanos() as u64;
        tm.stats.validation_ns.fetch_add(wall_ns, Ordering::Relaxed);
        tm.stats.validation_model_ns.fetch_add(
            tm.config.timing.latency_ns(n_addrs) as u64,
            Ordering::Relaxed,
        );
        tm.stats.validations.fetch_add(1, Ordering::Relaxed);
        rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Verdict {
            verdict: match verdict {
                FpgaVerdict::Commit { .. } => "commit",
                FpgaVerdict::AbortCycle => "abort-cycle",
                FpgaVerdict::AbortWindowOverflow => "abort-window",
                FpgaVerdict::ServiceStopped => "service-stopped",
            },
            model_ns: tm.config.timing.latency_ns(n_addrs) as u64,
            detector_ns: tm.config.timing.detector_ns(n_addrs) as u64,
            manager_ns: tm.config.timing.manager_ns() as u64,
            in_flight: tm.handle.in_flight() as u32,
        });

        let seq = match verdict {
            FpgaVerdict::Commit { seq } => seq,
            refused => {
                let kind = match refused {
                    FpgaVerdict::AbortCycle => AbortKind::FpgaCycle,
                    FpgaVerdict::AbortWindowOverflow => AbortKind::FpgaWindow,
                    _ => AbortKind::ServiceStopped,
                };
                tm.recycle(thread, None, [Some(write_sig), None], None, Some(redo));
                return Err(Self::count_abort(tm, thread, kind));
            }
        };

        tm.publish_commit(thread, seq, &write_sig, &redo);
        tm.consecutive_aborts[thread].store(0, Ordering::Relaxed);
        tm.recycle(thread, None, [Some(write_sig), None], None, Some(redo));
        Ok(Some(seq))
    }
}

impl Drop for RococoPending<'_> {
    fn drop(&mut self) {
        // An abandoned in-flight commit still owes the system its
        // publication: if the validator granted a sequence, every later
        // committer spins waiting for that turn. Await the verdict and
        // publish (no stats — the caller walked away from the outcome).
        let state = std::mem::replace(&mut self.state, PendingState::Done);
        if let PendingState::InFlight {
            verdict,
            write_sig,
            redo,
            ..
        } = state
        {
            if let FpgaVerdict::Commit { seq } = verdict.wait() {
                self.tm.publish_commit(self.thread, seq, &write_sig, &redo);
            }
            self.tm
                .recycle(self.thread, None, [Some(write_sig), None], None, Some(redo));
        }
    }
}

impl TmSystem for RococoTm {
    type Tx<'a> = RococoTx<'a>;

    fn name(&self) -> &'static str {
        "ROCoCoTM"
    }

    fn heap(&self) -> &TmHeap {
        &self.heap
    }

    fn begin(&self, thread_id: usize) -> RococoTx<'_> {
        assert!(
            thread_id < self.update_slots.len(),
            "thread id out of range"
        );
        // Escalate to irrevocability after repeated aborts: hold the
        // commit gate exclusively so GlobalTS freezes — no update-set
        // hits, no missed updates, no forward edges, guaranteed commit.
        let aborts_so_far = self.consecutive_aborts[thread_id].load(Ordering::Relaxed);
        let irrevocable = if aborts_so_far >= self.config.irrevocable_after {
            // Escalation is the anomaly the flight recorder exists for:
            // record it and dump this thread's event history.
            if rococo_telemetry::enabled() {
                rococo_telemetry::emit(rococo_telemetry::TxEvent::Escalated {
                    consecutive_aborts: aborts_so_far,
                });
                rococo_telemetry::dump_anomaly("irrevocability-escalation");
            }
            Some(self.commit_gate.write())
        } else {
            None
        };
        let ts = self.global_ts.load(Ordering::SeqCst);
        // Recycled buffers arrive cleared (see `recycle`), so the steady
        // state pays no allocation here.
        let (read_set, write_sig, miss_set, write_addrs, redo) = self.take_scratch(thread_id);
        RococoTx {
            tm: self,
            thread: thread_id,
            local_ts: ts,
            valid_ts: ts,
            read_set,
            write_sig,
            write_addrs,
            redo,
            miss_set,
            irrevocable,
        }
    }

    fn stats(&self) -> &TmStats {
        &self.stats
    }

    fn injected_faults(&self) -> Option<FaultSnapshot> {
        Some(self.handle.fault_stats())
    }

    fn engine_stats(&self) -> Option<EngineStats> {
        Some(self.fpga_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::atomically;
    use std::sync::Arc;

    fn tm(words: usize, threads: usize) -> RococoTm {
        RococoTm::with_config(TmConfig {
            heap_words: words,
            max_threads: threads,
        })
    }

    #[test]
    fn single_thread_semantics() {
        let tm = tm(64, 1);
        atomically(&tm, 0, |tx| {
            tx.write(3, 7)?;
            let v = tx.read(3)?;
            assert_eq!(v, 7);
            tx.write(4, v + 1)
        });
        assert_eq!(tm.heap().load_direct(3), 7);
        assert_eq!(tm.heap().load_direct(4), 8);
        assert_eq!(tm.fpga_stats().commits, 1);
    }

    #[test]
    fn read_only_txns_skip_the_fpga() {
        let tm = tm(64, 1);
        for _ in 0..5 {
            atomically(&tm, 0, |tx| tx.read(0));
        }
        assert_eq!(tm.stats().snapshot().read_only_commits, 5);
        assert_eq!(tm.fpga_stats().requests, 0);
    }

    #[test]
    fn concurrent_counters_are_exact() {
        let tm = Arc::new(tm(256, 8));
        let mut joins = Vec::new();
        for t in 0..8usize {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    atomically(&*tm, t, |tx| {
                        let v = tx.read(7)?;
                        tx.write(7, v + 1)
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(tm.heap().load_direct(7), 8000);
    }

    #[test]
    fn bank_invariant_holds() {
        let tm = Arc::new(tm(1 << 10, 6));
        let accounts = 12usize;
        for a in 0..accounts {
            tm.heap().store_direct(a, 500);
        }
        let mut joins = Vec::new();
        for t in 0..6usize {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                let mut x = (t as u64 + 7).wrapping_mul(0x2545f4914f6cdd1d);
                for _ in 0..1500 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let from = (x as usize >> 5) % accounts;
                    let to = (x as usize >> 17) % accounts;
                    if from == to {
                        continue;
                    }
                    atomically(&*tm, t, |tx| {
                        let f = tx.read(from)?;
                        let g = tx.read(to)?;
                        if f >= 5 {
                            tx.write(from, f - 5)?;
                            tx.write(to, g + 5)?;
                        }
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let total: u64 = (0..accounts).map(|a| tm.heap().load_direct(a)).sum();
        assert_eq!(total, 6000);
    }

    #[test]
    fn disjoint_writers_commit_without_aborts() {
        let tm = Arc::new(tm(1 << 12, 4));
        let mut joins = Vec::new();
        for t in 0..4usize {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                let base = 512 * t;
                for i in 0..400usize {
                    atomically(&*tm, t, |tx| {
                        let v = tx.read(base + i % 128)?;
                        tx.write(base + i % 128, v + 1)
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let snap = tm.stats().snapshot();
        assert_eq!(snap.commits, 1600);
        // Bloom false positives may cause a few aborts; they must be rare.
        assert!(
            snap.total_aborts() < 50,
            "disjoint writers should almost never abort: {snap:?}"
        );
    }

    #[test]
    fn validation_is_instrumented() {
        let tm = tm(64, 1);
        atomically(&tm, 0, |tx| {
            let v = tx.read(0)?;
            tx.write(1, v + 1)
        });
        let snap = tm.stats().snapshot();
        assert_eq!(snap.validations, 1);
        assert!(snap.validation_model_ns > 0);
    }

    #[test]
    fn irrevocability_guarantees_progress() {
        // A tiny window plus a busy writer starves a long transaction via
        // window-overflow aborts. With `irrevocable_after: 1`, the very
        // next attempt after any abort must take the gate exclusively and
        // commit irrevocably — so any abort at all implies at least one
        // fallback commit, independent of how the scheduler interleaves
        // the two threads.
        let tm = Arc::new(RococoTm::with_configs(RococoConfig {
            tm: TmConfig {
                heap_words: 4096,
                max_threads: 2,
            },
            window: 4,
            queue_len: 16,
            irrevocable_after: 1,
            ..RococoConfig::default()
        }));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let tm = tm.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    i += 1;
                    atomically(&*tm, 1, |tx| {
                        let v = tx.read(1000 + (i % 512) as usize)?;
                        tx.write(1000 + (i % 512) as usize, v + 1)
                    });
                }
            })
        };
        // The "long" transaction reads many of the writer's locations and
        // takes its time, so its snapshot keeps going stale.
        for round in 0..5usize {
            atomically(&*tm, 0, |tx| {
                let mut acc = 0u64;
                for k in 0..64usize {
                    acc = acc.wrapping_add(tx.read(1000 + k * 7)?);
                    if k % 8 == 0 {
                        std::thread::yield_now();
                    }
                }
                tx.write(round, acc)
            });
        }
        stop.store(true, Ordering::SeqCst);
        writer.join().unwrap();
        // Progress happened (all five rounds committed); under this much
        // churn at least one attempt should have run irrevocably.
        let snap = tm.stats().snapshot();
        assert!(snap.commits >= 5);
        assert!(
            snap.fallback_commits > 0 || snap.total_aborts() < 2,
            "escalation expected under starvation: {snap:?}"
        );
    }

    #[test]
    fn write_skew_is_rejected() {
        // Two threads repeatedly attempt write skew on (x, y); the sum
        // constraint x + y <= 1 written as "if other is 0, set mine to 1"
        // must never end with both set.
        let tm = Arc::new(tm(64, 2));
        for round in 0..50 {
            tm.heap().store_direct(0, 0);
            tm.heap().store_direct(1, 0);
            let b = Arc::new(std::sync::Barrier::new(2));
            let mut joins = Vec::new();
            for t in 0..2usize {
                let tm = tm.clone();
                let b = b.clone();
                joins.push(std::thread::spawn(move || {
                    b.wait();
                    atomically(&*tm, t, |tx| {
                        let other = tx.read(1 - t)?;
                        if other == 0 {
                            tx.write(t, 1)?;
                        }
                        Ok(())
                    });
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            let x = tm.heap().load_direct(0);
            let y = tm.heap().load_direct(1);
            assert!(
                x + y <= 1,
                "round {round}: write skew committed (x={x}, y={y})"
            );
        }
    }

    #[test]
    fn read_path_aborts_count_toward_escalation() {
        // Regression: the update-set spin-exhaustion abort used to skip
        // `consecutive_aborts`, so a reader starved by busy committers
        // could never escalate to irrevocability.
        let tm = RococoTm::with_configs(RococoConfig {
            tm: TmConfig {
                heap_words: 64,
                max_threads: 2,
            },
            update_spin: 0,
            ..RococoConfig::default()
        });
        // Pretend thread 1 is mid-write-back over address 5.
        let mut sig = tm.scheme.new_sig();
        tm.scheme.insert(&mut sig, 5);
        *tm.update_slots[1].sig.write() = Some(sig);
        tm.mark_update_slot(1);

        let mut tx = tm.begin(0);
        let err = tx.read(5).unwrap_err();
        assert_eq!(err.kind, AbortKind::Conflict);
        assert_eq!(tm.consecutive_aborts[0].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pipelined_submissions_commit_in_sequence_order() {
        use crate::api::{finish_submitted, try_submit, Submitted};
        // One worker submits a whole batch before awaiting any verdict —
        // the run-to-completion shard-loop shape. Verdicts are granted in
        // submission order and published FIFO, so sequences stay dense.
        let tm = tm(256, 2);
        let mut pendings = Vec::new();
        for i in 0..8usize {
            match try_submit(&tm, 0, &mut |tx: &mut RococoTx<'_>| {
                let v = tx.read(i)?;
                tx.write(i, v + 1)
            }) {
                Submitted::Pending(p, ()) => pendings.push(p),
                Submitted::Deferred(..) => panic!("uncontended submit must not defer"),
                Submitted::Aborted(a) => panic!("uncontended submit aborted: {a}"),
            }
        }
        let mut seqs = Vec::new();
        for p in pendings {
            seqs.push(finish_submitted(&tm, p).unwrap().unwrap());
        }
        assert_eq!(seqs, (0..8u64).collect::<Vec<_>>());
        for i in 0..8 {
            assert_eq!(tm.heap().load_direct(i), 1);
        }
        assert_eq!(tm.stats().snapshot().commits, 8);
        assert_eq!(tm.fpga_stats().commits, 8);
    }

    #[test]
    fn read_only_submission_settles_immediately() {
        use crate::api::{finish_submitted, try_submit, Submitted};
        let tm = tm(64, 1);
        match try_submit(&tm, 0, &mut |tx: &mut RococoTx<'_>| tx.read(0)) {
            Submitted::Pending(p, v) => {
                assert_eq!(v, 0);
                assert_eq!(finish_submitted(&tm, p).unwrap(), None);
            }
            _ => panic!("read-only submit must pend (settled)"),
        }
        assert_eq!(tm.stats().snapshot().read_only_commits, 1);
        assert_eq!(tm.fpga_stats().requests, 0);
    }

    #[test]
    fn dropped_pending_still_publishes_its_sequence() {
        use crate::api::{try_submit, Submitted};
        // Abandoning an in-flight commit must not wedge the commit chain:
        // its granted sequence is published on drop so later committers
        // get their turn.
        let tm = tm(64, 2);
        match try_submit(&tm, 0, &mut |tx: &mut RococoTx<'_>| tx.write(3, 7)) {
            Submitted::Pending(p, ()) => drop(p),
            _ => panic!("submit must pend"),
        }
        atomically(&tm, 1, |tx| {
            let v = tx.read(4)?;
            tx.write(4, v + 1)
        });
        assert_eq!(tm.heap().load_direct(3), 7);
        assert_eq!(tm.heap().load_direct(4), 1);
        assert_eq!(tm.global_ts.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn irrevocable_transactions_refuse_async_submission() {
        use crate::api::{try_submit, Submitted};
        let tm = RococoTm::with_configs(RococoConfig {
            tm: TmConfig {
                heap_words: 64,
                max_threads: 1,
            },
            irrevocable_after: 0,
            ..RococoConfig::default()
        });
        match try_submit(&tm, 0, &mut |tx: &mut RococoTx<'_>| tx.write(0, 1)) {
            Submitted::Deferred(tx, ()) => {
                assert!(crate::api::commit_deferred(&tm, tx).unwrap().is_some());
            }
            _ => panic!("irrevocable transactions must demand a synchronous commit"),
        }
        assert_eq!(tm.heap().load_direct(0), 1);
        assert_eq!(tm.stats().snapshot().fallback_commits, 1);
    }

    #[test]
    fn commit_queue_lag_of_exactly_queue_len_aborts_the_laggard() {
        // Regression: `drain_temp_set` accepted a lag equal to `queue_len`,
        // scanning the slot the next committer recycles concurrently.
        let tm = RococoTm::with_configs(RococoConfig {
            tm: TmConfig {
                heap_words: 64,
                max_threads: 1,
            },
            window: 4,
            queue_len: 4,
            ..RococoConfig::default()
        });
        let mut tx = tm.begin(0);
        // Four commits elsewhere wrap the whole ring: the slot holding the
        // laggard's next sequence is exactly the one being reused.
        // rococo-lint: allow(commit-seq-outside-critical) -- test forges GlobalTS to simulate four foreign commits without running them
        tm.global_ts.store(4, Ordering::SeqCst);
        let err = tx.read(0).unwrap_err();
        assert_eq!(err.kind, AbortKind::FpgaWindow);
        assert_eq!(tm.consecutive_aborts[0].load(Ordering::Relaxed), 1);
    }
}
