//! An emulation of a best-effort hardware TM in the style of Intel TSX.
//!
//! The paper's HTM baseline (section 6.2) is Intel TSX with a constant
//! 4-retry policy and a global-lock fallback. TSX detects conflicts eagerly
//! at cache-line granularity through the coherence protocol and aborts on
//! capacity overflow of the transactional buffers; those are the behaviours
//! that produce the "avalanche of aborts" of Figure 10, and they are what
//! this emulation reproduces:
//!
//! * **Eager conflict detection on cache-line granules** — a remote access
//!   to a line inside a transaction's footprint dooms the conflicting
//!   transaction immediately (requester-wins, like an invalidating
//!   coherence request), so one abort cascades into chains.
//! * **Capacity aborts** — the write footprint is mapped onto an L1-like
//!   cache model (64 sets × 8 ways of 64-byte lines); overflowing a set
//!   aborts, as does exceeding the read-tracking capacity.
//! * **Retry policy** — a transaction retries at most
//!   [`HtmConfig::max_attempts`] times in hardware mode (5 attempts ⇒ the
//!   83.3 % abort-rate ceiling of footnote 10), then takes a global
//!   fallback lock which dooms every in-flight hardware transaction (lock
//!   subscription).

use crate::api::{Abort, AbortKind, ReadyCommit, TmConfig, TmStats, TmSystem, Transaction};
use crate::heap::{Addr, TmHeap, Word};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// HTM-specific tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtmConfig {
    /// log2(words per cache line); 3 ⇒ 64-byte lines of 8 words.
    pub line_shift: u32,
    /// Cache sets in the write-capacity model.
    pub write_sets: usize,
    /// Associativity of the write-capacity model.
    pub write_ways: usize,
    /// Maximum distinct lines the read set may track.
    pub read_capacity: usize,
    /// Hardware attempts before falling back to the global lock
    /// (the paper's "4-time retry" = 5 attempts total).
    pub max_attempts: u32,
}

impl Default for HtmConfig {
    fn default() -> Self {
        Self {
            line_shift: 3,
            write_sets: 64,
            write_ways: 8,
            read_capacity: 4096,
            max_attempts: 5,
        }
    }
}

#[derive(Debug)]
struct LineEntry {
    /// Bitmap of reader thread ids (hence at most 64 threads).
    readers: AtomicU64,
    /// Writer thread id + 1, or 0 when unclaimed.
    writer: AtomicU64,
}

/// The emulated best-effort HTM.
#[derive(Debug)]
pub struct TsxHtm {
    heap: Arc<TmHeap>,
    stats: TmStats,
    config: HtmConfig,
    lines: Vec<LineEntry>,
    doomed: Vec<AtomicBool>,
    committing: Vec<AtomicBool>,
    attempts: Vec<AtomicU32>,
    fallback_lock: Mutex<()>,
    fallback_active: AtomicBool,
    /// Dense durable sequence counter. Hardware commits fetch it after
    /// the final doom check (their point of no return, with every written
    /// line still claimed); fallback commits fetch it under the fallback
    /// lock, which has already doomed and drained all hardware
    /// transactions.
    durable_seq: AtomicU64,
}

impl TsxHtm {
    /// Creates an emulated HTM with default [`HtmConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `config.max_threads > 64` (the reader bitmap is a single
    /// word, like a snoop filter with 64 ports).
    pub fn with_config(config: TmConfig) -> Self {
        Self::with_configs(config, HtmConfig::default())
    }

    /// Creates an emulated HTM with explicit HTM tuning.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_threads > 64`.
    pub fn with_configs(config: TmConfig, htm: HtmConfig) -> Self {
        let heap = Arc::new(TmHeap::new(config.heap_words));
        Self::with_shared_heap(config, htm, heap)
    }

    /// Creates an emulated HTM over a caller-provided heap. The hybrid
    /// scheduler uses this so the HTM fast path and the ROCoCoTM slow
    /// path operate on the same words (the coherence model still only
    /// sees HTM-side accesses — the hybrid's mode gate keeps the two
    /// engines from running concurrently).
    ///
    /// # Panics
    ///
    /// Panics if `config.max_threads > 64`.
    pub fn with_shared_heap(config: TmConfig, htm: HtmConfig, heap: Arc<TmHeap>) -> Self {
        assert!(
            config.max_threads <= 64,
            "the HTM emulation supports at most 64 threads"
        );
        let n_lines = (heap.len() >> htm.line_shift) + 1;
        Self {
            heap,
            stats: TmStats::default(),
            config: htm,
            lines: (0..n_lines)
                .map(|_| LineEntry {
                    readers: AtomicU64::new(0),
                    writer: AtomicU64::new(0),
                })
                .collect(),
            doomed: (0..config.max_threads)
                .map(|_| AtomicBool::new(false))
                .collect(),
            committing: (0..config.max_threads)
                .map(|_| AtomicBool::new(false))
                .collect(),
            attempts: (0..config.max_threads).map(|_| AtomicU32::new(0)).collect(),
            fallback_lock: Mutex::new(()),
            fallback_active: AtomicBool::new(false),
            durable_seq: AtomicU64::new(0),
        }
    }

    fn line_of(&self, addr: Addr) -> usize {
        addr >> self.config.line_shift
    }
}

enum TxMode<'a> {
    /// A hardware transaction.
    Hw,
    /// Serialised under the fallback lock; the guard is held, not read.
    Fallback(#[allow(dead_code)] parking_lot::MutexGuard<'a, ()>),
}

/// A [`TsxHtm`] transaction.
pub struct HtmTx<'a> {
    tm: &'a TsxHtm,
    thread: usize,
    mode: TxMode<'a>,
    redo: HashMap<Addr, Word>,
    read_lines: HashSet<usize>,
    write_lines: HashSet<usize>,
    set_occupancy: Vec<u8>,
}

impl std::fmt::Debug for HtmTx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HtmTx")
            .field("thread", &self.thread)
            .field("reads", &self.read_lines.len())
            .field("writes", &self.write_lines.len())
            .finish()
    }
}

impl HtmTx<'_> {
    /// Releases all coherence claims this transaction holds.
    fn release_claims(&self) {
        let self_bit = 1u64 << self.thread;
        for &l in &self.read_lines {
            self.tm.lines[l]
                .readers
                .fetch_and(!self_bit, Ordering::SeqCst);
        }
        let self_id = self.thread as u64 + 1;
        for &l in &self.write_lines {
            let _ = self.tm.lines[l].writer.compare_exchange(
                self_id,
                0,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }

    /// Aborts this hardware transaction, bumping the retry counter.
    fn hw_abort(&self, kind: AbortKind) -> Abort {
        self.release_claims();
        self.tm.doomed[self.thread].store(false, Ordering::SeqCst);
        self.tm.attempts[self.thread].fetch_add(1, Ordering::SeqCst);
        Abort::new(kind)
    }

    /// Pre-operation checks shared by read/write/commit.
    fn precheck(&self) -> Result<(), Abort> {
        if self.tm.doomed[self.thread].load(Ordering::SeqCst) {
            return Err(self.hw_abort(AbortKind::Conflict));
        }
        if self.tm.fallback_active.load(Ordering::SeqCst) {
            // The subscribed fallback lock was taken: hardware transactions
            // abort immediately.
            return Err(self.hw_abort(AbortKind::FallbackLock));
        }
        Ok(())
    }

    /// Claims write ownership of a line, dooming conflicting transactions
    /// (requester wins) and waiting for committing owners to drain.
    fn claim_writer(&mut self, line: usize) -> Result<(), Abort> {
        let entry = &self.tm.lines[line];
        let self_id = self.thread as u64 + 1;

        // Doom all other readers: their cached copy is invalidated.
        let others = entry.readers.load(Ordering::SeqCst) & !(1u64 << self.thread);
        let mut bits = others;
        while bits != 0 {
            let t = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.tm.doomed[t].store(true, Ordering::SeqCst);
        }

        loop {
            if self.tm.doomed[self.thread].load(Ordering::SeqCst) {
                return Err(self.hw_abort(AbortKind::Conflict));
            }
            let w = entry.writer.load(Ordering::SeqCst);
            if w == self_id {
                return Ok(());
            }
            if w == 0 {
                if entry
                    .writer
                    .compare_exchange(0, self_id, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    self.write_lines.insert(line);
                    return Ok(());
                }
                continue;
            }
            // Another writer holds the line. If it is mid-commit we wait
            // for the write-back to drain; otherwise we doom it. Either
            // way, wait for the claim to clear.
            let victim = (w - 1) as usize;
            if !self.tm.committing[victim].load(Ordering::SeqCst) {
                self.tm.doomed[victim].store(true, Ordering::SeqCst);
            }
            std::hint::spin_loop();
        }
    }
}

impl Transaction for HtmTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<Word, Abort> {
        if let TxMode::Fallback(_) = self.mode {
            return Ok(match self.redo.get(&addr) {
                Some(&v) => v,
                None => self.tm.heap.load_direct(addr),
            });
        }
        self.precheck()?;
        if let Some(&v) = self.redo.get(&addr) {
            return Ok(v);
        }
        let line = self.tm.line_of(addr);
        let entry = &self.tm.lines[line];

        // Register in the line's reader bitmap and handle a foreign writer:
        // a remote read of a transactionally written line aborts the writer
        // (its M-state line is stolen).
        if self.read_lines.insert(line) {
            if self.read_lines.len() > self.tm.config.read_capacity {
                return Err(self.hw_abort(AbortKind::Capacity));
            }
            entry
                .readers
                .fetch_or(1u64 << self.thread, Ordering::SeqCst);
        }
        loop {
            let w = entry.writer.load(Ordering::SeqCst);
            if w == 0 || w == self.thread as u64 + 1 {
                break;
            }
            let victim = (w - 1) as usize;
            if !self.tm.committing[victim].load(Ordering::SeqCst) {
                self.tm.doomed[victim].store(true, Ordering::SeqCst);
            }
            if self.tm.doomed[self.thread].load(Ordering::SeqCst) {
                return Err(self.hw_abort(AbortKind::Conflict));
            }
            std::hint::spin_loop();
        }
        Ok(self.tm.heap.load_direct(addr))
    }

    fn write(&mut self, addr: Addr, val: Word) -> Result<(), Abort> {
        if let TxMode::Fallback(_) = self.mode {
            self.redo.insert(addr, val);
            return Ok(());
        }
        self.precheck()?;
        let line = self.tm.line_of(addr);
        if !self.write_lines.contains(&line) {
            // Capacity model: distinct write lines map to L1 sets.
            let set = line % self.tm.config.write_sets;
            if usize::from(self.set_occupancy[set]) >= self.tm.config.write_ways {
                return Err(self.hw_abort(AbortKind::Capacity));
            }
            self.claim_writer(line)?;
            self.set_occupancy[set] += 1;
        }
        self.redo.insert(addr, val);
        Ok(())
    }

    fn commit_seq(self) -> Result<Option<u64>, Abort> {
        match &self.mode {
            TxMode::Fallback(_) => {
                // The fallback lock serialises against every other commit,
                // so any fetch point inside it preserves sequence order.
                let seq = if self.redo.is_empty() {
                    None
                } else {
                    Some(self.tm.durable_seq.fetch_add(1, Ordering::SeqCst))
                };
                for (&a, &v) in &self.redo {
                    self.tm.heap.store_direct(a, v);
                }
                self.tm.attempts[self.thread].store(0, Ordering::SeqCst);
                self.tm.fallback_active.store(false, Ordering::SeqCst);
                self.tm
                    .stats
                    .fallback_commits
                    .fetch_add(1, Ordering::Relaxed);
                Ok(seq)
            }
            TxMode::Hw => {
                if self.tm.fallback_active.load(Ordering::SeqCst) {
                    return Err(self.hw_abort(AbortKind::FallbackLock));
                }
                // Point of no return: announce the write-back, then take
                // the final doom check.
                self.tm.committing[self.thread].store(true, Ordering::SeqCst);
                if self.tm.doomed[self.thread].load(Ordering::SeqCst) {
                    self.tm.committing[self.thread].store(false, Ordering::SeqCst);
                    return Err(self.hw_abort(AbortKind::Conflict));
                }
                // Past the doom check we cannot abort, and every written
                // line is still claimed: nobody who depends on our writes
                // can commit before we release, so the sequence respects
                // read-from and write-write order.
                let seq = if self.redo.is_empty() {
                    None
                } else {
                    Some(self.tm.durable_seq.fetch_add(1, Ordering::SeqCst))
                };
                for (&a, &v) in &self.redo {
                    self.tm.heap.store_direct(a, v);
                }
                self.release_claims();
                self.tm.committing[self.thread].store(false, Ordering::SeqCst);
                self.tm.doomed[self.thread].store(false, Ordering::SeqCst);
                self.tm.attempts[self.thread].store(0, Ordering::SeqCst);
                if self.redo.is_empty() {
                    self.tm
                        .stats
                        .read_only_commits
                        .fetch_add(1, Ordering::Relaxed);
                }
                Ok(seq)
            }
        }
    }

    type Pending = ReadyCommit;

    fn submit_commit(self) -> Result<ReadyCommit, Self> {
        Ok(ReadyCommit::new(self.commit_seq()))
    }
}

impl Drop for HtmTx<'_> {
    fn drop(&mut self) {
        // A transaction dropped without commit (closure abort / panic)
        // must release its coherence claims.
        if matches!(self.mode, TxMode::Hw) {
            self.release_claims();
            self.tm.doomed[self.thread].store(false, Ordering::SeqCst);
        } else {
            self.tm.fallback_active.store(false, Ordering::SeqCst);
        }
        self.read_lines.clear();
        self.write_lines.clear();
    }
}

impl TmSystem for TsxHtm {
    type Tx<'a> = HtmTx<'a>;

    fn name(&self) -> &'static str {
        "TSX-HTM"
    }

    fn heap(&self) -> &TmHeap {
        &self.heap
    }

    fn begin(&self, thread_id: usize) -> HtmTx<'_> {
        assert!(thread_id < self.doomed.len(), "thread id out of range");
        let mode = if self.attempts[thread_id].load(Ordering::SeqCst) >= self.config.max_attempts {
            // Too many hardware failures: take the fallback lock. Taking it
            // dooms every in-flight hardware transaction (they subscribed
            // the lock) and waits for committers to drain.
            let guard = self.fallback_lock.lock();
            self.fallback_active.store(true, Ordering::SeqCst);
            for d in &self.doomed {
                d.store(true, Ordering::SeqCst);
            }
            self.doomed[thread_id].store(false, Ordering::SeqCst);
            while self.committing.iter().any(|c| c.load(Ordering::SeqCst)) {
                // rococo-lint: allow(guard-across-wait) -- the fallback lock MUST be held while committers drain (they subscribed it to self-doom); committers never take this lock, so the spin is bounded
                std::hint::spin_loop();
            }
            TxMode::Fallback(guard)
        } else {
            self.doomed[thread_id].store(false, Ordering::SeqCst);
            TxMode::Hw
        };
        HtmTx {
            tm: self,
            thread: thread_id,
            mode,
            redo: HashMap::new(),
            read_lines: HashSet::new(),
            write_lines: HashSet::new(),
            set_occupancy: vec![0; self.config.write_sets],
        }
    }

    fn stats(&self) -> &TmStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::atomically;
    use std::sync::Arc;

    fn tm(words: usize, threads: usize) -> TsxHtm {
        TsxHtm::with_config(TmConfig {
            heap_words: words,
            max_threads: threads,
        })
    }

    #[test]
    fn single_thread_semantics() {
        let tm = tm(256, 1);
        atomically(&tm, 0, |tx| {
            tx.write(0, 11)?;
            let v = tx.read(0)?;
            tx.write(8, v + 1)
        });
        assert_eq!(tm.heap().load_direct(0), 11);
        assert_eq!(tm.heap().load_direct(8), 12);
    }

    #[test]
    fn capacity_abort_on_large_write_set() {
        // Writing more than write_sets * write_ways distinct lines must
        // eventually fall back (capacity aborts exhaust the retries).
        let tm = TsxHtm::with_configs(
            TmConfig {
                heap_words: 1 << 16,
                max_threads: 1,
            },
            HtmConfig {
                write_sets: 4,
                write_ways: 2,
                ..HtmConfig::default()
            },
        );
        atomically(&tm, 0, |tx| {
            for i in 0..64usize {
                tx.write(i * 8, i as u64)?; // 64 distinct lines >> 8 capacity
            }
            Ok(())
        });
        let snap = tm.stats().snapshot();
        assert!(snap.aborts[&AbortKind::Capacity] >= 5, "{snap:?}");
        assert_eq!(snap.fallback_commits, 1);
        assert_eq!(tm.heap().load_direct(8), 1);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let tm = Arc::new(tm(1 << 12, 8));
        let mut joins = Vec::new();
        for t in 0..8usize {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    atomically(&*tm, t, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(tm.heap().load_direct(0), 8000);
    }

    #[test]
    fn contention_produces_eager_aborts() {
        let tm = Arc::new(tm(1 << 12, 8));
        let mut joins = Vec::new();
        for t in 0..8usize {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    atomically(&*tm, t, |tx| {
                        // All threads fight over the same few lines; the
                        // yield forces interleaving even on a single-core
                        // host so eager conflicts actually occur.
                        let v = tx.read((i % 4) as usize * 8)?;
                        std::thread::yield_now();
                        tx.write(((i + 1) % 4) as usize * 8, v + 1)
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let snap = tm.stats().snapshot();
        assert!(
            snap.total_aborts() > 0,
            "contended HTM should abort eagerly: {snap:?}"
        );
    }

    #[test]
    fn disjoint_threads_mostly_commit_in_hardware() {
        let tm = Arc::new(tm(1 << 14, 4));
        let mut joins = Vec::new();
        for t in 0..4usize {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                let base = t * 2048;
                for i in 0..500usize {
                    atomically(&*tm, t, |tx| {
                        let v = tx.read(base + (i % 64) * 8)?;
                        tx.write(base + (i % 64) * 8, v + 1)
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let snap = tm.stats().snapshot();
        assert_eq!(snap.commits, 2000);
        assert!(
            snap.fallback_commits < 100,
            "disjoint work should rarely fall back: {snap:?}"
        );
    }

    #[test]
    fn durable_seqs_are_dense_and_ordered_with_values() {
        // As for TinySTM: on a contended counter, seqs must form a dense
        // range whose order matches the value order — across both the
        // hardware and fallback commit paths.
        use crate::api::try_atomically_seq;
        use parking_lot::Mutex;
        let tm = Arc::new(tm(1 << 12, 4));
        let seen: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut joins = Vec::new();
        for t in 0..4usize {
            let tm = tm.clone();
            let seen = seen.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    loop {
                        let res = try_atomically_seq(&*tm, t, &mut |tx: &mut HtmTx<'_>| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)?;
                            Ok(v + 1)
                        });
                        if let Ok((new_val, seq)) = res {
                            seen.lock().push((seq.expect("update commit"), new_val));
                            break;
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut seen = Arc::try_unwrap(seen).unwrap().into_inner();
        seen.sort_unstable();
        assert_eq!(seen.len(), 2000);
        for (i, &(seq, val)) in seen.iter().enumerate() {
            assert_eq!(seq, i as u64, "dense sequence");
            assert_eq!(val, i as u64 + 1, "seq order == serialization order");
        }
    }

    #[test]
    fn bank_invariant_under_htm() {
        let tm = Arc::new(tm(1 << 12, 4));
        let accounts = 8usize;
        for a in 0..accounts {
            tm.heap().store_direct(a * 8, 1000);
        }
        let mut joins = Vec::new();
        for t in 0..4usize {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                let mut x = (t as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                for _ in 0..2000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let from = (x as usize >> 3) % accounts;
                    let to = (x as usize >> 11) % accounts;
                    if from == to {
                        continue;
                    }
                    atomically(&*tm, t, |tx| {
                        let f = tx.read(from * 8)?;
                        let g = tx.read(to * 8)?;
                        if f >= 10 {
                            tx.write(from * 8, f - 10)?;
                            tx.write(to * 8, g + 10)?;
                        }
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let total: u64 = (0..accounts).map(|a| tm.heap().load_direct(a * 8)).sum();
        assert_eq!(total, 8000);
    }
}
