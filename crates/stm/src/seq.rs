//! Reference runtimes: sequential execution and a single global lock.

use crate::api::{Abort, ReadyCommit, TmConfig, TmStats, TmSystem, Transaction};
use crate::heap::{Addr, TmHeap, Word};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The sequential baseline: transactions execute unsynchronised and commits
/// never fail. STAMP speedups (Figure 10's y-axis) are measured against a
/// 1-thread run of this system.
///
/// Writes are still buffered until commit so that explicitly aborted
/// closures leave no trace, but there is **no** conflict detection: running
/// it from more than one thread concurrently is a logic error (results
/// would be unsynchronised), though it is memory-safe.
#[derive(Debug)]
pub struct SeqTm {
    heap: TmHeap,
    stats: TmStats,
    durable_seq: AtomicU64,
}

impl SeqTm {
    /// Creates a sequential runtime with the given heap size.
    pub fn with_config(config: TmConfig) -> Self {
        Self {
            heap: TmHeap::new(config.heap_words),
            stats: TmStats::default(),
            durable_seq: AtomicU64::new(0),
        }
    }
}

/// A [`SeqTm`] transaction.
#[derive(Debug)]
pub struct SeqTx<'a> {
    tm: &'a SeqTm,
    redo: HashMap<Addr, Word>,
}

impl Transaction for SeqTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<Word, Abort> {
        Ok(match self.redo.get(&addr) {
            Some(&v) => v,
            None => self.tm.heap.load_direct(addr),
        })
    }

    fn write(&mut self, addr: Addr, val: Word) -> Result<(), Abort> {
        self.redo.insert(addr, val);
        Ok(())
    }

    fn commit_seq(self) -> Result<Option<u64>, Abort> {
        // Single-threaded by contract, so commits are already serialised.
        let seq = if self.redo.is_empty() {
            None
        } else {
            Some(self.tm.durable_seq.fetch_add(1, Ordering::SeqCst))
        };
        for (addr, val) in self.redo {
            self.tm.heap.store_direct(addr, val);
        }
        Ok(seq)
    }

    type Pending = ReadyCommit;

    fn submit_commit(self) -> Result<ReadyCommit, Self> {
        Ok(ReadyCommit::new(self.commit_seq()))
    }
}

impl TmSystem for SeqTm {
    type Tx<'a> = SeqTx<'a>;

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn heap(&self) -> &TmHeap {
        &self.heap
    }

    fn begin(&self, _thread_id: usize) -> SeqTx<'_> {
        SeqTx {
            tm: self,
            redo: HashMap::new(),
        }
    }

    fn stats(&self) -> &TmStats {
        &self.stats
    }
}

/// A runtime that serialises every transaction behind one global mutex —
/// the "coarse lock" yardstick, and the semantics of an HTM fallback path.
#[derive(Debug)]
pub struct GlobalLockTm {
    heap: TmHeap,
    stats: TmStats,
    lock: Mutex<()>,
    durable_seq: AtomicU64,
}

impl GlobalLockTm {
    /// Creates a global-lock runtime with the given heap size.
    pub fn with_config(config: TmConfig) -> Self {
        Self {
            heap: TmHeap::new(config.heap_words),
            stats: TmStats::default(),
            lock: Mutex::new(()),
            durable_seq: AtomicU64::new(0),
        }
    }
}

/// A [`GlobalLockTm`] transaction: holds the global lock for its lifetime.
#[derive(Debug)]
pub struct GlobalLockTx<'a> {
    tm: &'a GlobalLockTm,
    redo: HashMap<Addr, Word>,
    _guard: MutexGuard<'a, ()>,
}

impl Transaction for GlobalLockTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<Word, Abort> {
        Ok(match self.redo.get(&addr) {
            Some(&v) => v,
            None => self.tm.heap.load_direct(addr),
        })
    }

    fn write(&mut self, addr: Addr, val: Word) -> Result<(), Abort> {
        self.redo.insert(addr, val);
        Ok(())
    }

    fn commit_seq(self) -> Result<Option<u64>, Abort> {
        // The global lock is held for the whole transaction, so the fetch
        // is trivially inside the critical section.
        let seq = if self.redo.is_empty() {
            None
        } else {
            Some(self.tm.durable_seq.fetch_add(1, Ordering::SeqCst))
        };
        for (addr, val) in self.redo {
            self.tm.heap.store_direct(addr, val);
        }
        Ok(seq)
    }

    type Pending = ReadyCommit;

    fn submit_commit(self) -> Result<ReadyCommit, Self> {
        Ok(ReadyCommit::new(self.commit_seq()))
    }
}

impl TmSystem for GlobalLockTm {
    type Tx<'a> = GlobalLockTx<'a>;

    fn name(&self) -> &'static str {
        "GlobalLock"
    }

    fn heap(&self) -> &TmHeap {
        &self.heap
    }

    fn begin(&self, _thread_id: usize) -> GlobalLockTx<'_> {
        GlobalLockTx {
            tm: self,
            redo: HashMap::new(),
            _guard: self.lock.lock(),
        }
    }

    fn stats(&self) -> &TmStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::atomically;

    #[test]
    fn seq_commits_apply_writes() {
        let tm = SeqTm::with_config(TmConfig {
            heap_words: 16,
            max_threads: 1,
        });
        atomically(&tm, 0, |tx| {
            let v = tx.read(3)?;
            tx.write(3, v + 7)
        });
        assert_eq!(tm.heap().load_direct(3), 7);
        assert_eq!(tm.stats().snapshot().commits, 1);
    }

    #[test]
    fn aborted_closure_leaves_no_trace() {
        let tm = SeqTm::with_config(TmConfig {
            heap_words: 16,
            max_threads: 1,
        });
        let mut first = true;
        atomically(&tm, 0, |tx| {
            tx.write(0, 42)?;
            if first {
                first = false;
                return Err(Abort::new(crate::api::AbortKind::Explicit));
            }
            tx.write(1, 1)
        });
        assert_eq!(tm.heap().load_direct(0), 42);
        assert_eq!(tm.heap().load_direct(1), 1);
        let snap = tm.stats().snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.total_aborts(), 1);
    }

    #[test]
    fn global_lock_counts_concurrently() {
        let tm = std::sync::Arc::new(GlobalLockTm::with_config(TmConfig {
            heap_words: 16,
            max_threads: 8,
        }));
        let mut joins = Vec::new();
        for t in 0..8 {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    atomically(&*tm, t, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(tm.heap().load_direct(0), 8000);
        assert_eq!(tm.stats().snapshot().abort_rate(), 0.0);
    }
}
