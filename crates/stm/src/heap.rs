//! The shared word-addressed transactional heap.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A heap address: an index into the word array.
pub type Addr = usize;

/// The unit of transactional access: a 64-bit word.
pub type Word = u64;

/// The reserved null address: [`TmHeap::alloc`] never returns 0, so
/// pointer-shaped words can use 0 as "none".
pub const NULL: Addr = 0;

/// The shared memory all TM systems operate on: a flat array of atomic
/// 64-bit words plus a bump allocator.
///
/// STAMP-style workloads lay out their data structures manually in this
/// array (a node is a handful of consecutive words); [`TmHeap::alloc`]
/// hands out fresh consecutive ranges. Allocation is non-transactional,
/// mirroring STAMP's practice of allocating outside TM bookkeeping — a
/// range leaked by an aborted transaction is simply never reused.
#[derive(Debug)]
pub struct TmHeap {
    words: Vec<AtomicU64>,
    next_free: AtomicUsize,
}

impl TmHeap {
    /// Creates a zeroed heap of `words` 64-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn new(words: usize) -> Self {
        assert!(words > 0, "heap must hold at least one word");
        Self {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            // Word 0 is reserved so allocated addresses are never NULL.
            next_free: AtomicUsize::new(1),
        }
    }

    /// Heap capacity in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the heap has zero capacity (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Words currently handed out by the allocator.
    pub fn allocated(&self) -> usize {
        self.next_free.load(Ordering::Relaxed).min(self.len())
    }

    /// Allocates `n` consecutive zero-initialised... *previously unused*
    /// words and returns the address of the first. Contents are whatever a
    /// prior direct store left there (freshly constructed heaps are
    /// zeroed); allocation itself never touches the words, so it is safe
    /// inside transactions.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn alloc(&self, n: usize) -> Addr {
        let base = self.next_free.fetch_add(n, Ordering::Relaxed);
        assert!(
            base + n <= self.words.len(),
            "transactional heap exhausted: {} + {n} > {}",
            base,
            self.words.len()
        );
        base
    }

    /// Non-transactional load (sequential setup / verification code).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn load_direct(&self, addr: Addr) -> Word {
        self.words[addr].load(Ordering::SeqCst)
    }

    /// Non-transactional store (sequential setup / verification code).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn store_direct(&self, addr: Addr, val: Word) {
        self.words[addr].store(val, Ordering::SeqCst);
    }

    /// The raw atomic cell backing `addr` (runtime-internal use).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn cell(&self, addr: Addr) -> &AtomicU64 {
        &self.words[addr]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_hands_out_disjoint_ranges() {
        let h = TmHeap::new(100);
        let a = h.alloc(10);
        let b = h.alloc(5);
        assert_eq!(a, 1, "address 0 is reserved as NULL");
        assert_eq!(b, 11);
        assert_eq!(h.allocated(), 16);
    }

    #[test]
    fn load_store_roundtrip() {
        let h = TmHeap::new(4);
        h.store_direct(2, 99);
        assert_eq!(h.load_direct(2), 99);
        assert_eq!(h.load_direct(3), 0);
    }

    #[test]
    fn concurrent_alloc_never_overlaps() {
        let h = std::sync::Arc::new(TmHeap::new(10_000));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                (0..100).map(|_| h.alloc(10)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<usize> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800, "allocations must be disjoint");
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let h = TmHeap::new(8);
        h.alloc(8);
    }

    #[test]
    fn alloc_never_returns_null() {
        let h = TmHeap::new(64);
        for _ in 0..63 {
            assert_ne!(h.alloc(1), NULL);
        }
    }
}
