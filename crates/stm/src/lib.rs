//! Transactional-memory runtimes for the ROCoCoTM reproduction.
//!
//! All systems implement one word-granular TM interface ([`TmSystem`] /
//! [`Transaction`] / [`atomically`]) over a shared [`TmHeap`], so the STAMP
//! port in `rococo-stamp` runs unchanged on every runtime:
//!
//! * [`RococoTm`] — the paper's hybrid TM (section 5): bloom-signature
//!   read/write sets, redo logging, the `GlobalTS`/`LocalTS`/`ValidTS`
//!   snapshot-extension algorithm of Algorithm 1 and Figure 8 on the CPU
//!   side, and validation offloaded to the simulated FPGA pipeline of
//!   `rococo-fpga` through asynchronous queues (Figure 6).
//! * [`TinyStm`] — the baseline STM: a word-based Lazy Snapshot Algorithm
//!   with commit-time locking and write-back (the TinySTM configuration the
//!   paper benchmarks against).
//! * [`TsxHtm`] — an emulation of a best-effort HTM in the style of Intel
//!   TSX: eager cache-line-granular conflict detection, capacity aborts
//!   modelled on an L1-like 8-way cache, and a 4-retry policy backed by a
//!   global fallback lock.
//! * [`SeqTm`] and [`GlobalLockTm`] — the sequential reference (STAMP's
//!   speedup baseline) and a single-global-lock runtime.
//!
//! # Example
//!
//! ```
//! use rococo_stm::{atomically, RococoTm, TmConfig, TmSystem, Transaction};
//!
//! let tm = RococoTm::with_config(TmConfig { heap_words: 1024, max_threads: 2 });
//! let acct = 0usize;
//! tm.heap().store_direct(acct, 100);
//! atomically(&tm, 0, |tx| {
//!     let v = tx.read(acct)?;
//!     tx.write(acct, v + 23)
//! });
//! assert_eq!(tm.heap().load_direct(acct), 123);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod heap;
mod htm;
mod record;
mod rococotm;
mod seq;
mod tinystm;

pub use api::{
    atomically, commit_deferred, finish_submitted, try_atomically, try_atomically_seq, try_submit,
    Abort, AbortKind, PendingCommit, ReadyCommit, StatsSnapshot, Submitted, TmConfig, TmStats,
    TmSystem, Transaction,
};
pub use heap::{Addr, TmHeap, Word, NULL};
pub use htm::{HtmConfig, TsxHtm};
pub use record::{recording_seq, RecordTx, Recorder, TxnRecord};
pub use rococotm::{RococoConfig, RococoPending, RococoTm};
pub use seq::{GlobalLockTm, SeqTm};
pub use tinystm::TinyStm;
