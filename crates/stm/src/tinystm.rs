//! A TinySTM-style word-based STM: Lazy Snapshot Algorithm with commit-time
//! locking and write-back.
//!
//! This is the paper's STM baseline configuration (section 6.2): TinySTM
//! v1.0.4 with "commit-time locking (lazy conflict detection) with
//! write-back of tentative states on commit (lazy version management)".
//! The algorithm is the classic LSA [Felber, Fetzer, Marlier, Riegel,
//! TPDS'10]: a global version clock, one versioned lock word per heap word,
//! snapshot extension on read, and commit-time lock–validate–write-back.

use crate::api::{Abort, AbortKind, ReadyCommit, TmConfig, TmStats, TmSystem, Transaction};
use crate::heap::{Addr, TmHeap, Word};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Bounded spinning on a locked word before giving up and aborting.
const LOCK_SPIN: usize = 256;

/// The TinySTM-style runtime.
#[derive(Debug)]
pub struct TinyStm {
    heap: TmHeap,
    stats: TmStats,
    clock: AtomicU64,
    /// One versioned lock per heap word: even values are `version << 1`
    /// (unlocked); odd values mark the word as locked by a committer, with
    /// the pre-lock version still recoverable (`locked = unlocked | 1`).
    locks: Vec<AtomicU64>,
    /// Dense durable sequence counter; fetched after read-set validation
    /// succeeds, while the write locks are still held. The commit clock
    /// `wv` cannot serve: it is fetched before validation, so aborting
    /// committers leave holes.
    durable_seq: AtomicU64,
}

impl TinyStm {
    /// Creates a runtime with the given configuration.
    pub fn with_config(config: TmConfig) -> Self {
        Self {
            heap: TmHeap::new(config.heap_words),
            stats: TmStats::default(),
            clock: AtomicU64::new(0),
            locks: (0..config.heap_words).map(|_| AtomicU64::new(0)).collect(),
            durable_seq: AtomicU64::new(0),
        }
    }

    fn lock_of(&self, addr: Addr) -> &AtomicU64 {
        &self.locks[addr]
    }
}

/// A [`TinyStm`] transaction.
#[derive(Debug)]
pub struct TinyTx<'a> {
    tm: &'a TinyStm,
    /// Snapshot version: every read so far is consistent as of this clock.
    rv: u64,
    /// (address, observed version) pairs.
    read_set: Vec<(Addr, u64)>,
    /// Buffered writes.
    redo: HashMap<Addr, Word>,
}

impl TinyTx<'_> {
    /// Validates that every read still holds its recorded version
    /// (locations we have locked ourselves validate against the pre-lock
    /// version encoded in the odd lock word).
    fn read_set_valid(&self) -> bool {
        self.read_set.iter().all(|&(a, ver)| {
            let l = self.tm.lock_of(a).load(Ordering::SeqCst);
            if l & 1 == 1 {
                // Locked. Only acceptable if we are the locker (the word is
                // in our write set) and the version matches.
                self.redo.contains_key(&a) && (l >> 1) == ver
            } else {
                (l >> 1) == ver
            }
        })
    }

    /// Attempts to extend the snapshot to the current clock (LSA).
    fn extend(&mut self) -> Result<(), Abort> {
        let new_rv = self.tm.clock.load(Ordering::SeqCst);
        if self.read_set_valid() {
            self.rv = new_rv;
            Ok(())
        } else {
            Err(Abort::new(AbortKind::Conflict))
        }
    }
}

impl Transaction for TinyTx<'_> {
    fn read(&mut self, addr: Addr) -> Result<Word, Abort> {
        if let Some(&v) = self.redo.get(&addr) {
            return Ok(v);
        }
        let lock = self.tm.lock_of(addr);
        let mut spins = 0;
        loop {
            let l1 = lock.load(Ordering::SeqCst);
            if l1 & 1 == 1 {
                spins += 1;
                if spins > LOCK_SPIN {
                    return Err(Abort::new(AbortKind::Conflict));
                }
                std::hint::spin_loop();
                continue;
            }
            let v = self.tm.heap.load_direct(addr);
            let l2 = lock.load(Ordering::SeqCst);
            if l1 != l2 {
                continue; // torn read; retry the seqlock
            }
            let ver = l1 >> 1;
            if ver > self.rv {
                // The word changed after our snapshot: try to slide the
                // snapshot forward (this is what distinguishes LSA from
                // abort-on-sight TL2).
                self.extend()?;
                if ver > self.rv {
                    return Err(Abort::new(AbortKind::Conflict));
                }
            }
            self.read_set.push((addr, ver));
            return Ok(v);
        }
    }

    fn write(&mut self, addr: Addr, val: Word) -> Result<(), Abort> {
        self.redo.insert(addr, val);
        Ok(())
    }

    fn commit_seq(self) -> Result<Option<u64>, Abort> {
        if self.redo.is_empty() {
            self.tm
                .stats
                .read_only_commits
                .fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }

        // Acquire write locks in address order (deadlock avoidance).
        let mut waddrs: Vec<Addr> = self.redo.keys().copied().collect();
        waddrs.sort_unstable();
        let mut acquired: Vec<(Addr, u64)> = Vec::with_capacity(waddrs.len());
        let release = |acquired: &[(Addr, u64)]| {
            for &(a, prev) in acquired {
                self.tm.lock_of(a).store(prev, Ordering::SeqCst);
            }
        };
        for &a in &waddrs {
            let lock = self.tm.lock_of(a);
            let mut spins = 0;
            loop {
                let l = lock.load(Ordering::SeqCst);
                if l & 1 == 0 {
                    if lock
                        .compare_exchange(l, l | 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        acquired.push((a, l));
                        break;
                    }
                } else {
                    spins += 1;
                    if spins > LOCK_SPIN {
                        release(&acquired);
                        return Err(Abort::new(AbortKind::Conflict));
                    }
                    std::hint::spin_loop();
                }
            }
        }

        let wv = self.tm.clock.fetch_add(1, Ordering::SeqCst) + 1;

        // Commit-time validation: the dedicated phase the paper instruments
        // for Figure 11 ("the CPU goes over all timestamped objects in [the]
        // read set").
        let t0 = Instant::now();
        let valid = self.read_set_valid();
        let dt = t0.elapsed().as_nanos() as u64;
        self.tm.stats.validation_ns.fetch_add(dt, Ordering::Relaxed);
        self.tm
            .stats
            .validation_model_ns
            .fetch_add(dt, Ordering::Relaxed); // CPU validation: model = wall
        self.tm.stats.validations.fetch_add(1, Ordering::Relaxed);
        if !valid {
            release(&acquired);
            return Err(Abort::new(AbortKind::Conflict));
        }

        // Point of no return: validation passed and every written word is
        // still locked, so no dependent transaction can commit between here
        // and our lock release. Fetching the durable sequence inside this
        // window makes sequence order consistent with serialization order
        // for read-from and write-write dependencies.
        let seq = self.tm.durable_seq.fetch_add(1, Ordering::SeqCst);

        // Write back and release with the new version.
        for (&addr, &val) in &self.redo {
            self.tm.heap.store_direct(addr, val);
        }
        for &(a, _) in &acquired {
            self.tm.lock_of(a).store(wv << 1, Ordering::SeqCst);
        }
        Ok(Some(seq))
    }

    type Pending = ReadyCommit;

    fn submit_commit(self) -> Result<ReadyCommit, Self> {
        Ok(ReadyCommit::new(self.commit_seq()))
    }
}

impl TmSystem for TinyStm {
    type Tx<'a> = TinyTx<'a>;

    fn name(&self) -> &'static str {
        "TinySTM"
    }

    fn heap(&self) -> &TmHeap {
        &self.heap
    }

    fn begin(&self, _thread_id: usize) -> TinyTx<'_> {
        TinyTx {
            tm: self,
            rv: self.clock.load(Ordering::SeqCst),
            read_set: Vec::new(),
            redo: HashMap::new(),
        }
    }

    fn stats(&self) -> &TmStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::atomically;
    use std::sync::Arc;

    fn tm(words: usize) -> TinyStm {
        TinyStm::with_config(TmConfig {
            heap_words: words,
            max_threads: 8,
        })
    }

    #[test]
    fn single_thread_read_write() {
        let tm = tm(16);
        atomically(&tm, 0, |tx| {
            tx.write(0, 5)?;
            let v = tx.read(0)?;
            assert_eq!(v, 5, "read-own-write");
            tx.write(1, v * 2)
        });
        assert_eq!(tm.heap().load_direct(0), 5);
        assert_eq!(tm.heap().load_direct(1), 10);
    }

    #[test]
    fn read_only_commits_fast() {
        let tm = tm(16);
        atomically(&tm, 0, |tx| tx.read(0));
        assert_eq!(tm.stats().snapshot().read_only_commits, 1);
    }

    #[test]
    fn concurrent_counters_are_exact() {
        let tm = Arc::new(tm(64));
        let mut joins = Vec::new();
        for t in 0..8usize {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    atomically(&*tm, t, |tx| {
                        let v = tx.read(7)?;
                        tx.write(7, v + 1)
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(tm.heap().load_direct(7), 16_000);
    }

    #[test]
    fn bank_transfers_preserve_total() {
        // The classic invariant test: concurrent transfers between
        // accounts never create or destroy money.
        let tm = Arc::new(tm(64));
        let accounts = 16usize;
        for a in 0..accounts {
            tm.heap().store_direct(a, 1000);
        }
        let mut joins = Vec::new();
        for t in 0..4usize {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                let mut x = t as u64 * 2654435761;
                for _ in 0..3000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (x >> 33) as usize % accounts;
                    let to = (x >> 13) as usize % accounts;
                    if from == to {
                        continue;
                    }
                    atomically(&*tm, t, |tx| {
                        let f = tx.read(from)?;
                        let g = tx.read(to)?;
                        if f >= 10 {
                            tx.write(from, f - 10)?;
                            tx.write(to, g + 10)?;
                        }
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let total: u64 = (0..accounts).map(|a| tm.heap().load_direct(a)).sum();
        assert_eq!(total, 16_000);
    }

    #[test]
    fn snapshot_extension_allows_unrelated_commits() {
        // A long transaction reading x should survive commits to y.
        let tm = Arc::new(tm(16));
        let tma = tm.clone();
        let writer = std::thread::spawn(move || {
            for i in 0..500 {
                atomically(&*tma, 1, |tx| tx.write(9, i));
            }
        });
        for _ in 0..200 {
            atomically(&*tm, 0, |tx| {
                let a = tx.read(0)?;
                // Interleave with writer commits to force extensions.
                std::thread::yield_now();
                let b = tx.read(1)?;
                assert_eq!(a, 0);
                assert_eq!(b, 0);
                Ok(())
            });
        }
        writer.join().unwrap();
    }

    #[test]
    fn durable_seqs_are_dense_and_ordered_with_values() {
        // Every update commit gets a unique seq from a dense range, and on
        // a single contended counter the seq order must match the value
        // order (seq order respects read-from dependencies).
        use crate::api::try_atomically_seq;
        use parking_lot::Mutex;
        let tm = Arc::new(tm(16));
        let seen: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut joins = Vec::new();
        for t in 0..4usize {
            let tm = tm.clone();
            let seen = seen.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    loop {
                        let res = try_atomically_seq(&*tm, t, &mut |tx: &mut TinyTx<'_>| {
                            let v = tx.read(3)?;
                            tx.write(3, v + 1)?;
                            Ok(v + 1)
                        });
                        if let Ok((new_val, seq)) = res {
                            seen.lock().push((seq.expect("update commit"), new_val));
                            break;
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut seen = Arc::try_unwrap(seen).unwrap().into_inner();
        seen.sort_unstable();
        assert_eq!(seen.len(), 2000);
        for (i, &(seq, val)) in seen.iter().enumerate() {
            assert_eq!(seq, i as u64, "dense sequence");
            assert_eq!(val, i as u64 + 1, "seq order == serialization order");
        }
        // Read-only commits take no sequence.
        let (_, seq) = try_atomically_seq(&*tm, 0, &mut |tx: &mut TinyTx<'_>| tx.read(3)).unwrap();
        assert_eq!(seq, None);
    }

    #[test]
    fn validation_time_is_recorded() {
        let tm = tm(32);
        for _ in 0..10 {
            atomically(&tm, 0, |tx| {
                let v = tx.read(1)?;
                tx.write(2, v + 1)
            });
        }
        let snap = tm.stats().snapshot();
        assert_eq!(snap.validations, 10);
    }
}
