//! Shard workers: the threads that drain a shard's queue and run each
//! request as one transaction.

use crate::request::{Request, Response, TxKvError};
use crate::retry::RetryPolicy;
use crate::stats::ShardStats;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::RwLock;
use rococo_stm::{
    commit_deferred, finish_submitted, try_submit, Abort, Addr, Submitted, TmSystem, Transaction,
};
use rococo_wal::Wal;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// One queued request plus everything needed to answer it. The reply
/// carries the commit sequence number alongside the response (`None` for
/// read-only commits) so replication-aware clients can derive
/// read-your-writes watermarks; [`crate::PendingReply::wait`] drops it
/// for callers that do not care.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) enqueued_at: Instant,
    /// Causal trace id minted at ingress (0 when the flight recorder was
    /// disabled at submit time). Workers re-stamp their thread's trace
    /// context from this id around every phase of the job's execution.
    pub(crate) trace: u64,
    pub(crate) reply: Sender<Result<(Response, Option<u64>), TxKvError>>,
}

/// The durable half of a worker's context: the WAL client it appends
/// committed write sets to, plus the rebasing offset (on-disk sequence =
/// `base_seq` + the backend's in-memory sequence, which restarts at 0
/// after recovery).
pub(crate) struct WorkerWal {
    pub(crate) wal: Wal,
    pub(crate) base_seq: u64,
}

/// Runs one request body inside an open transaction, recording the
/// key-space write set into `writes` (cleared first — each retry attempt
/// starts fresh). Shared by every retry attempt; all writes are buffered
/// until commit, so re-execution after an abort is safe.
fn apply<T: Transaction>(
    tx: &mut T,
    table: Addr,
    req: &Request,
    writes: &mut Vec<(u64, u64)>,
) -> Result<Response, Abort> {
    writes.clear();
    let addr = |key: u64| table + key as Addr;
    match req {
        Request::Get { key } => Ok(Response::Value(tx.read(addr(*key))?)),
        Request::Put { key, value } => {
            tx.write(addr(*key), *value)?;
            writes.push((*key, *value));
            Ok(Response::Done)
        }
        Request::Add { key, delta } => {
            let new = tx.read(addr(*key))?.wrapping_add(*delta);
            tx.write(addr(*key), new)?;
            writes.push((*key, new));
            Ok(Response::Value(new))
        }
        Request::Transfer { from, to, amount } => {
            let src = tx.read(addr(*from))?;
            if src < *amount {
                return Ok(Response::Transferred(false));
            }
            // A self-transfer succeeds but must not touch the balance:
            // writing `src - amount` then `dst + amount` to the same key
            // would mint money.
            if from != to {
                let dst = tx.read(addr(*to))?;
                tx.write(addr(*from), src - amount)?;
                tx.write(addr(*to), dst.wrapping_add(*amount))?;
                writes.push((*from, src - amount));
                writes.push((*to, dst.wrapping_add(*amount)));
            }
            Ok(Response::Transferred(true))
        }
        Request::MultiGet { keys } => {
            let mut out = Vec::with_capacity(keys.len());
            for key in keys {
                out.push(tx.read(addr(*key))?);
            }
            Ok(Response::Values(out))
        }
    }
}

/// Everything one worker thread needs: the backend, the key table, its
/// retry/statistics context, the shard queue, the checkpoint pause gate,
/// and (in durable mode) its WAL client.
pub(crate) struct WorkerCtx<S: TmSystem + ?Sized> {
    pub(crate) system: Arc<S>,
    pub(crate) table: Addr,
    pub(crate) thread_id: usize,
    pub(crate) policy: RetryPolicy,
    pub(crate) stats: Arc<ShardStats>,
    pub(crate) rx: Receiver<Job>,
    pub(crate) pause: Arc<RwLock<()>>,
    pub(crate) wal: Option<WorkerWal>,
    pub(crate) max_batch: usize,
}

/// One submitted-but-unfinished job: the pending commit plus everything
/// needed to complete the reply once the verdict lands.
struct InFlight<'a, S: TmSystem + ?Sized + 'a> {
    job: Job,
    pending: <S::Tx<'a> as Transaction>::Pending,
    resp: Response,
    writes: Vec<(u64, u64)>,
}

/// The per-worker execution environment shared by the batched fast path
/// and the synchronous fallback.
struct WorkerEnv<'a, S: TmSystem + ?Sized> {
    system: &'a S,
    table: Addr,
    thread_id: usize,
    policy: RetryPolicy,
    stats: &'a ShardStats,
    wal: &'a Option<WorkerWal>,
}

impl<'a, S: TmSystem + ?Sized> WorkerEnv<'a, S> {
    /// Logs the committed write set (durable mode) and builds the client
    /// reply. Read-only commits (seq `None`) have nothing to make
    /// durable. The sequence handed back to the client is the *on-disk*
    /// (rebased) one in durable mode — the number replication watermarks
    /// are expressed in.
    fn committed_reply(
        &self,
        resp: Response,
        seq: Option<u64>,
        writes: &mut Vec<(u64, u64)>,
    ) -> Result<(Response, Option<u64>), TxKvError> {
        let client_seq = match (self.wal, seq) {
            (Some(w), Some(seq)) => Some(w.base_seq + seq),
            _ => seq,
        };
        let durable = match (self.wal, seq) {
            (Some(w), Some(seq)) => {
                let n_writes = writes.len() as u32;
                // Hand the write set over; `apply` rebuilds it from
                // scratch on the next job anyway.
                let r = w.wal.append(w.base_seq + seq, std::mem::take(writes));
                if r.is_ok() {
                    rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::WalAppend {
                        seq: w.base_seq + seq,
                        writes: n_writes,
                    });
                }
                r
            }
            _ => Ok(()),
        };
        match durable {
            Ok(()) => {
                self.stats.committed.fetch_add(1, Ordering::Relaxed);
                Ok((resp, client_seq))
            }
            Err(_) => {
                self.stats.durability_lost.fetch_add(1, Ordering::Relaxed);
                if rococo_telemetry::enabled() {
                    rococo_telemetry::emit(rococo_telemetry::TxEvent::DurabilityLost);
                    rococo_telemetry::dump_anomaly("durability-lost");
                }
                Err(TxKvError::DurabilityLost)
            }
        }
    }

    /// Answers `job`, recording end-to-end latency, emitting the
    /// trace-closing `Reply` event, and offering the finished request to
    /// the tail sampler. `force_sample` marks requests the sampler must
    /// keep regardless of latency (retried, deferred, panicked) —
    /// errored replies are always force-kept. The client may have
    /// dropped its PendingReply; that is not the worker's problem.
    fn send_reply(
        &self,
        job: Job,
        reply: Result<(Response, Option<u64>), TxKvError>,
        force_sample: bool,
    ) {
        let latency_ns = job.enqueued_at.elapsed().as_nanos() as u64;
        self.stats.latency.record(latency_ns);
        if job.trace != 0 {
            rococo_telemetry::set_current_trace(job.trace);
            let outcome = match &reply {
                Ok(_) => "ok",
                Err(e) => e.label(),
            };
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Reply { outcome });
            rococo_telemetry::observe_request(
                job.trace,
                latency_ns,
                force_sample || reply.is_err(),
            );
            rococo_telemetry::clear_current_trace();
        }
        let _ = job.reply.send(reply);
    }

    /// Counts a caught backend panic and dumps the flight recorder.
    fn note_panic(&self) {
        self.stats.panics.fetch_add(1, Ordering::Relaxed);
        self.stats.failed.fetch_add(1, Ordering::Relaxed);
        if rococo_telemetry::enabled() {
            rococo_telemetry::emit(rococo_telemetry::TxEvent::WorkerPanic);
            rococo_telemetry::dump_anomaly("worker-panic");
        }
    }

    /// Runs `job` fully synchronously under the retry policy — the
    /// fallback for jobs whose asynchronous attempt aborted (counted via
    /// `prior_attempts`) or whose backend demanded a synchronous commit.
    ///
    /// Must only be called with **no pending commits outstanding**: the
    /// backend's `begin` may escalate to the exclusive commit gate, which
    /// would deadlock against this worker's own read guards.
    fn run_sync(&self, rng: &mut u64, job: Job, prior_attempts: u32) {
        // Re-attribute this thread's events to the job (another job's
        // transaction may have run on this thread since the
        // asynchronous attempt) and re-tag its scheduling class.
        rococo_telemetry::set_current_trace(job.trace);
        self.system.set_tx_class(self.thread_id, job.req.class());
        let mut writes: Vec<(u64, u64)> = Vec::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.policy.execute_seq(
                self.system,
                self.thread_id,
                |tx| apply(tx, self.table, &job.req, &mut writes),
                |kind| self.stats.record_abort(kind),
                rng,
            )
        }));
        match result {
            Ok(Ok((resp, seq, attempts))) => {
                self.stats.retries.fetch_add(
                    u64::from(attempts - 1) + u64::from(prior_attempts),
                    Ordering::Relaxed,
                );
                let reply = self.committed_reply(resp, seq, &mut writes);
                // A request that needed more than one attempt is tail
                // material even if it eventually committed fast.
                let retried = prior_attempts > 0 || attempts > 1;
                self.send_reply(job, reply, retried);
            }
            Ok(Err((abort, attempts))) => {
                self.stats.failed.fetch_add(1, Ordering::Relaxed);
                self.stats.retries.fetch_add(
                    u64::from(attempts - 1) + u64::from(prior_attempts),
                    Ordering::Relaxed,
                );
                self.send_reply(
                    job,
                    Err(TxKvError::RetriesExhausted {
                        attempts: attempts + prior_attempts,
                        last: abort.kind,
                    }),
                    true,
                );
            }
            Err(_panic) => {
                self.note_panic();
                self.send_reply(job, Err(TxKvError::Internal), true);
            }
        }
    }

    /// Finishes every in-flight commit in submission (= verdict) order,
    /// then synchronously retries the jobs whose verdict was an abort.
    ///
    /// The retries run strictly *after* the drain: an abort bumps the
    /// backend's escalation counter, and a subsequent `begin` may then
    /// block on the exclusive commit gate — safe only once none of our
    /// own pendings still hold gate read guards.
    fn drain(&self, rng: &mut u64, inflight: &mut Vec<InFlight<'a, S>>) {
        let mut retry: Vec<Job> = Vec::new();
        for f in inflight.drain(..) {
            let InFlight {
                job,
                pending,
                resp,
                mut writes,
            } = f;
            // The verdict/commit events for this pending must be
            // attributed to *its* request, not whichever job this
            // thread processed last.
            rococo_telemetry::set_current_trace(job.trace);
            match catch_unwind(AssertUnwindSafe(|| finish_submitted(self.system, pending))) {
                Ok(Ok(seq)) => {
                    let reply = self.committed_reply(resp, seq, &mut writes);
                    self.send_reply(job, reply, false);
                }
                Ok(Err(abort)) => {
                    self.stats.record_abort(abort.kind);
                    retry.push(job);
                }
                Err(_panic) => {
                    self.note_panic();
                    self.send_reply(job, Err(TxKvError::Internal), true);
                }
            }
        }
        for job in retry {
            self.run_sync(rng, job, 1);
        }
    }
}

/// The worker loop: drain the shard queue until every sender is dropped
/// (service shutdown), executing jobs in run-to-completion batches and
/// recording per-shard statistics.
///
/// Each batch pulls up to `max_batch` queued jobs (one blocking `recv`,
/// then non-blocking `try_recv`s — an empty queue never delays a lone
/// request), executes each to its validation point, submits the commits
/// asynchronously, and completes them in verdict order. The validator
/// round-trip is thereby amortised across the whole batch (the paper's
/// Figure 6 pipelining, applied at the worker level) instead of being
/// paid once per job. Jobs the backend cannot commit asynchronously
/// (synchronous backends use a pre-settled pending; ROCoCoTM defers
/// irrevocable or gate-contended commits) fall back to the synchronous
/// retry path after the outstanding batch is drained.
///
/// A batch runs under a read lock on `pause`, held across both the
/// transactions and the WAL-ack waits — the checkpoint coordinator takes
/// the write lock to quiesce commits, so while it holds it there is no
/// fetched-but-unlogged sequence number anywhere.
///
/// A panicking backend does not kill the worker: the panic is caught,
/// reported as [`TxKvError::Internal`], and counted, so the shard queue
/// keeps draining (a wedged queue would hang every client of the shard).
pub(crate) fn run_worker<S: TmSystem + ?Sized>(ctx: WorkerCtx<S>) {
    let WorkerCtx {
        system,
        table,
        thread_id,
        policy,
        stats,
        rx,
        pause,
        wal,
        max_batch,
    } = ctx;
    let env = WorkerEnv {
        system: &*system,
        table,
        thread_id,
        policy,
        stats: &stats,
        wal: &wal,
    };
    let max_batch = max_batch.max(1);
    // Per-worker jitter state; any distinct nonzero seed works.
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((thread_id as u64 + 1) << 17);
    let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
    let mut inflight: Vec<InFlight<'_, S>> = Vec::with_capacity(max_batch);
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats
            .batch_jobs
            .fetch_add(batch.len() as u64, Ordering::Relaxed);

        let pause_guard = pause.read();
        for job in batch.drain(..) {
            // Stamp this thread's trace context from the job so every
            // downstream event (route, begin, validate, verdict,
            // commit, WAL ack) is attributed to the request's chain.
            rococo_telemetry::set_current_trace(job.trace);
            if job.trace != 0 {
                rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Dequeue {
                    wait_ns: job.enqueued_at.elapsed().as_nanos() as u64,
                });
            }
            // Tag the transaction with the op-type scheduling class
            // before it begins — a no-op on non-routing backends, the
            // router's footprint-prediction key on the hybrid.
            env.system.set_tx_class(thread_id, job.req.class());
            let mut writes: Vec<(u64, u64)> = Vec::new();
            let submitted = catch_unwind(AssertUnwindSafe(|| {
                try_submit(env.system, thread_id, &mut |tx| {
                    apply(tx, table, &job.req, &mut writes)
                })
            }));
            match submitted {
                Ok(Submitted::Pending(pending, resp)) => {
                    inflight.push(InFlight {
                        job,
                        pending,
                        resp,
                        writes,
                    });
                }
                Ok(Submitted::Deferred(tx, resp)) => {
                    // The backend demands a synchronous commit (e.g. an
                    // irrevocable transaction, or a waiting escalation
                    // writer on the commit gate). Settle the outstanding
                    // pendings first so the blocking commit cannot
                    // deadlock against our own read guards.
                    stats.deferred.fetch_add(1, Ordering::Relaxed);
                    env.drain(&mut rng, &mut inflight);
                    // The drain re-stamped the trace context for its own
                    // jobs; restore this job's before its commit.
                    rococo_telemetry::set_current_trace(job.trace);
                    match catch_unwind(AssertUnwindSafe(|| commit_deferred(env.system, tx))) {
                        Ok(Ok(seq)) => {
                            let reply = env.committed_reply(resp, seq, &mut writes);
                            // Deferred commits mark escalation or gate
                            // contention: always tail-sample them.
                            env.send_reply(job, reply, true);
                        }
                        Ok(Err(abort)) => {
                            stats.record_abort(abort.kind);
                            env.run_sync(&mut rng, job, 1);
                        }
                        Err(_panic) => {
                            env.note_panic();
                            env.send_reply(job, Err(TxKvError::Internal), true);
                        }
                    }
                }
                Ok(Submitted::Aborted(abort)) => {
                    stats.record_abort(abort.kind);
                    env.drain(&mut rng, &mut inflight);
                    env.run_sync(&mut rng, job, 1);
                }
                Err(_panic) => {
                    env.note_panic();
                    env.send_reply(job, Err(TxKvError::Internal), true);
                }
            }
        }
        // Run to completion before blocking in `recv` again: an unfinished
        // pending holds a commit-gate guard and (under ROCoCoTM) an
        // unpublished sequence number the whole system waits on.
        env.drain(&mut rng, &mut inflight);
        drop(pause_guard);
    }
    rococo_telemetry::flush_thread();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{try_atomically, TinyStm, TmConfig};

    fn tm() -> (TinyStm, Addr) {
        let tm = TinyStm::with_config(TmConfig {
            heap_words: 256,
            max_threads: 2,
        });
        let table = tm.heap().alloc(64);
        (tm, table)
    }

    fn run_with_writes(tm: &TinyStm, table: Addr, req: Request) -> (Response, Vec<(u64, u64)>) {
        let mut writes = Vec::new();
        let resp = try_atomically(tm, 0, &mut |tx| apply(tx, table, &req, &mut writes))
            .expect("request transaction aborted");
        (resp, writes)
    }

    fn run(tm: &TinyStm, table: Addr, req: Request) -> Response {
        run_with_writes(tm, table, req).0
    }

    #[test]
    fn apply_request_semantics() {
        let (tm, t) = tm();
        assert_eq!(
            run(&tm, t, Request::Put { key: 3, value: 10 }),
            Response::Done
        );
        assert_eq!(run(&tm, t, Request::Get { key: 3 }), Response::Value(10));
        assert_eq!(
            run(&tm, t, Request::Add { key: 3, delta: 5 }),
            Response::Value(15)
        );
        assert_eq!(
            run(
                &tm,
                t,
                Request::Transfer {
                    from: 3,
                    to: 4,
                    amount: 6
                }
            ),
            Response::Transferred(true)
        );
        assert_eq!(
            run(&tm, t, Request::MultiGet { keys: vec![3, 4] }),
            Response::Values(vec![9, 6])
        );
    }

    #[test]
    fn apply_collects_the_write_set() {
        let (tm, t) = tm();
        let (_, w) = run_with_writes(&tm, t, Request::Put { key: 7, value: 3 });
        assert_eq!(w, vec![(7, 3)]);
        let (_, w) = run_with_writes(&tm, t, Request::Add { key: 7, delta: 2 });
        assert_eq!(w, vec![(7, 5)]);
        let (_, w) = run_with_writes(
            &tm,
            t,
            Request::Transfer {
                from: 7,
                to: 8,
                amount: 4,
            },
        );
        assert_eq!(w, vec![(7, 1), (8, 4)]);
        // Reads and declined transfers write nothing.
        let (_, w) = run_with_writes(&tm, t, Request::Get { key: 7 });
        assert!(w.is_empty());
        let (resp, w) = run_with_writes(
            &tm,
            t,
            Request::Transfer {
                from: 7,
                to: 8,
                amount: 999,
            },
        );
        assert_eq!(resp, Response::Transferred(false));
        assert!(w.is_empty());
        // Self-transfer commits but moves nothing.
        let (_, w) = run_with_writes(
            &tm,
            t,
            Request::Transfer {
                from: 8,
                to: 8,
                amount: 1,
            },
        );
        assert!(w.is_empty());
    }

    #[test]
    fn transfer_declines_on_insufficient_balance() {
        let (tm, t) = tm();
        run(&tm, t, Request::Put { key: 0, value: 5 });
        assert_eq!(
            run(
                &tm,
                t,
                Request::Transfer {
                    from: 0,
                    to: 1,
                    amount: 6
                }
            ),
            Response::Transferred(false)
        );
        // Nothing moved.
        assert_eq!(run(&tm, t, Request::Get { key: 0 }), Response::Value(5));
        assert_eq!(run(&tm, t, Request::Get { key: 1 }), Response::Value(0));
    }

    #[test]
    fn self_transfer_conserves_balance() {
        let (tm, t) = tm();
        run(&tm, t, Request::Put { key: 2, value: 50 });
        assert_eq!(
            run(
                &tm,
                t,
                Request::Transfer {
                    from: 2,
                    to: 2,
                    amount: 10
                }
            ),
            Response::Transferred(true)
        );
        assert_eq!(run(&tm, t, Request::Get { key: 2 }), Response::Value(50));
    }

    #[test]
    fn add_wraps() {
        let (tm, t) = tm();
        run(
            &tm,
            t,
            Request::Put {
                key: 1,
                value: u64::MAX,
            },
        );
        assert_eq!(
            run(&tm, t, Request::Add { key: 1, delta: 2 }),
            Response::Value(1)
        );
    }
}
