//! Shard workers: the threads that drain a shard's queue and run each
//! request as one transaction.

use crate::request::{Request, Response, TxKvError};
use crate::retry::RetryPolicy;
use crate::stats::ShardStats;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::RwLock;
use rococo_stm::{Abort, Addr, TmSystem, Transaction};
use rococo_wal::Wal;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// One queued request plus everything needed to answer it. The reply
/// carries the commit sequence number alongside the response (`None` for
/// read-only commits) so replication-aware clients can derive
/// read-your-writes watermarks; [`crate::PendingReply::wait`] drops it
/// for callers that do not care.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) enqueued_at: Instant,
    pub(crate) reply: Sender<Result<(Response, Option<u64>), TxKvError>>,
}

/// The durable half of a worker's context: the WAL client it appends
/// committed write sets to, plus the rebasing offset (on-disk sequence =
/// `base_seq` + the backend's in-memory sequence, which restarts at 0
/// after recovery).
pub(crate) struct WorkerWal {
    pub(crate) wal: Wal,
    pub(crate) base_seq: u64,
}

/// Runs one request body inside an open transaction, recording the
/// key-space write set into `writes` (cleared first — each retry attempt
/// starts fresh). Shared by every retry attempt; all writes are buffered
/// until commit, so re-execution after an abort is safe.
fn apply<T: Transaction>(
    tx: &mut T,
    table: Addr,
    req: &Request,
    writes: &mut Vec<(u64, u64)>,
) -> Result<Response, Abort> {
    writes.clear();
    let addr = |key: u64| table + key as Addr;
    match req {
        Request::Get { key } => Ok(Response::Value(tx.read(addr(*key))?)),
        Request::Put { key, value } => {
            tx.write(addr(*key), *value)?;
            writes.push((*key, *value));
            Ok(Response::Done)
        }
        Request::Add { key, delta } => {
            let new = tx.read(addr(*key))?.wrapping_add(*delta);
            tx.write(addr(*key), new)?;
            writes.push((*key, new));
            Ok(Response::Value(new))
        }
        Request::Transfer { from, to, amount } => {
            let src = tx.read(addr(*from))?;
            if src < *amount {
                return Ok(Response::Transferred(false));
            }
            // A self-transfer succeeds but must not touch the balance:
            // writing `src - amount` then `dst + amount` to the same key
            // would mint money.
            if from != to {
                let dst = tx.read(addr(*to))?;
                tx.write(addr(*from), src - amount)?;
                tx.write(addr(*to), dst.wrapping_add(*amount))?;
                writes.push((*from, src - amount));
                writes.push((*to, dst.wrapping_add(*amount)));
            }
            Ok(Response::Transferred(true))
        }
        Request::MultiGet { keys } => {
            let mut out = Vec::with_capacity(keys.len());
            for key in keys {
                out.push(tx.read(addr(*key))?);
            }
            Ok(Response::Values(out))
        }
    }
}

/// Everything one worker thread needs: the backend, the key table, its
/// retry/statistics context, the shard queue, the checkpoint pause gate,
/// and (in durable mode) its WAL client.
pub(crate) struct WorkerCtx<S: TmSystem + ?Sized> {
    pub(crate) system: Arc<S>,
    pub(crate) table: Addr,
    pub(crate) thread_id: usize,
    pub(crate) policy: RetryPolicy,
    pub(crate) stats: Arc<ShardStats>,
    pub(crate) rx: Receiver<Job>,
    pub(crate) pause: Arc<RwLock<()>>,
    pub(crate) wal: Option<WorkerWal>,
}

/// The worker loop: drain the shard queue until every sender is dropped
/// (service shutdown), executing each job with the retry policy and
/// recording per-shard statistics.
///
/// Each job runs under a read lock on `pause`, held across both the
/// transaction and the WAL-ack wait — the checkpoint coordinator takes
/// the write lock to quiesce commits, so while it holds it there is no
/// fetched-but-unlogged sequence number anywhere.
///
/// A panicking backend does not kill the worker: the panic is caught,
/// reported as [`TxKvError::Internal`], and counted, so the shard queue
/// keeps draining (a wedged queue would hang every client of the shard).
pub(crate) fn run_worker<S: TmSystem + ?Sized>(ctx: WorkerCtx<S>) {
    let WorkerCtx {
        system,
        table,
        thread_id,
        policy,
        stats,
        rx,
        pause,
        wal,
    } = ctx;
    // Per-worker jitter state; any distinct nonzero seed works.
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((thread_id as u64 + 1) << 17);
    let mut writes: Vec<(u64, u64)> = Vec::new();
    while let Ok(job) = rx.recv() {
        let pause_guard = pause.read();
        let result = catch_unwind(AssertUnwindSafe(|| {
            policy.execute_seq(
                &*system,
                thread_id,
                |tx| apply(tx, table, &job.req, &mut writes),
                |kind| stats.record_abort(kind),
                &mut rng,
            )
        }));
        let reply = match result {
            Ok(Ok((resp, seq, attempts))) => {
                stats
                    .retries
                    .fetch_add(u64::from(attempts - 1), Ordering::Relaxed);
                // Log the committed write set before acking. Read-only
                // commits (seq None) have nothing to make durable. The
                // sequence handed back to the client is the *on-disk*
                // (rebased) one in durable mode — the number replication
                // watermarks are expressed in.
                let client_seq = match (&wal, seq) {
                    (Some(w), Some(seq)) => Some(w.base_seq + seq),
                    _ => seq,
                };
                let durable = match (&wal, seq) {
                    (Some(w), Some(seq)) => {
                        let n_writes = writes.len() as u32;
                        // Hand the write set over; `apply` rebuilds it
                        // from scratch on the next job anyway.
                        let r = w.wal.append(w.base_seq + seq, std::mem::take(&mut writes));
                        if r.is_ok() {
                            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::WalAppend {
                                seq: w.base_seq + seq,
                                writes: n_writes,
                            });
                        }
                        r
                    }
                    _ => Ok(()),
                };
                match durable {
                    Ok(()) => {
                        stats.committed.fetch_add(1, Ordering::Relaxed);
                        Ok((resp, client_seq))
                    }
                    Err(_) => {
                        stats.durability_lost.fetch_add(1, Ordering::Relaxed);
                        if rococo_telemetry::enabled() {
                            rococo_telemetry::emit(rococo_telemetry::TxEvent::DurabilityLost);
                            rococo_telemetry::dump_anomaly("durability-lost");
                        }
                        Err(TxKvError::DurabilityLost)
                    }
                }
            }
            Ok(Err((abort, attempts))) => {
                stats.failed.fetch_add(1, Ordering::Relaxed);
                stats
                    .retries
                    .fetch_add(u64::from(attempts - 1), Ordering::Relaxed);
                Err(TxKvError::RetriesExhausted {
                    attempts,
                    last: abort.kind,
                })
            }
            Err(_panic) => {
                stats.panics.fetch_add(1, Ordering::Relaxed);
                stats.failed.fetch_add(1, Ordering::Relaxed);
                if rococo_telemetry::enabled() {
                    rococo_telemetry::emit(rococo_telemetry::TxEvent::WorkerPanic);
                    rococo_telemetry::dump_anomaly("worker-panic");
                }
                Err(TxKvError::Internal)
            }
        };
        drop(pause_guard);
        stats
            .latency
            .record(job.enqueued_at.elapsed().as_nanos() as u64);
        // The client may have dropped its PendingReply; that is not the
        // worker's problem.
        let _ = job.reply.send(reply);
    }
    rococo_telemetry::flush_thread();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{try_atomically, TinyStm, TmConfig};

    fn tm() -> (TinyStm, Addr) {
        let tm = TinyStm::with_config(TmConfig {
            heap_words: 256,
            max_threads: 2,
        });
        let table = tm.heap().alloc(64);
        (tm, table)
    }

    fn run_with_writes(tm: &TinyStm, table: Addr, req: Request) -> (Response, Vec<(u64, u64)>) {
        let mut writes = Vec::new();
        let resp = try_atomically(tm, 0, &mut |tx| apply(tx, table, &req, &mut writes))
            .expect("request transaction aborted");
        (resp, writes)
    }

    fn run(tm: &TinyStm, table: Addr, req: Request) -> Response {
        run_with_writes(tm, table, req).0
    }

    #[test]
    fn apply_request_semantics() {
        let (tm, t) = tm();
        assert_eq!(
            run(&tm, t, Request::Put { key: 3, value: 10 }),
            Response::Done
        );
        assert_eq!(run(&tm, t, Request::Get { key: 3 }), Response::Value(10));
        assert_eq!(
            run(&tm, t, Request::Add { key: 3, delta: 5 }),
            Response::Value(15)
        );
        assert_eq!(
            run(
                &tm,
                t,
                Request::Transfer {
                    from: 3,
                    to: 4,
                    amount: 6
                }
            ),
            Response::Transferred(true)
        );
        assert_eq!(
            run(&tm, t, Request::MultiGet { keys: vec![3, 4] }),
            Response::Values(vec![9, 6])
        );
    }

    #[test]
    fn apply_collects_the_write_set() {
        let (tm, t) = tm();
        let (_, w) = run_with_writes(&tm, t, Request::Put { key: 7, value: 3 });
        assert_eq!(w, vec![(7, 3)]);
        let (_, w) = run_with_writes(&tm, t, Request::Add { key: 7, delta: 2 });
        assert_eq!(w, vec![(7, 5)]);
        let (_, w) = run_with_writes(
            &tm,
            t,
            Request::Transfer {
                from: 7,
                to: 8,
                amount: 4,
            },
        );
        assert_eq!(w, vec![(7, 1), (8, 4)]);
        // Reads and declined transfers write nothing.
        let (_, w) = run_with_writes(&tm, t, Request::Get { key: 7 });
        assert!(w.is_empty());
        let (resp, w) = run_with_writes(
            &tm,
            t,
            Request::Transfer {
                from: 7,
                to: 8,
                amount: 999,
            },
        );
        assert_eq!(resp, Response::Transferred(false));
        assert!(w.is_empty());
        // Self-transfer commits but moves nothing.
        let (_, w) = run_with_writes(
            &tm,
            t,
            Request::Transfer {
                from: 8,
                to: 8,
                amount: 1,
            },
        );
        assert!(w.is_empty());
    }

    #[test]
    fn transfer_declines_on_insufficient_balance() {
        let (tm, t) = tm();
        run(&tm, t, Request::Put { key: 0, value: 5 });
        assert_eq!(
            run(
                &tm,
                t,
                Request::Transfer {
                    from: 0,
                    to: 1,
                    amount: 6
                }
            ),
            Response::Transferred(false)
        );
        // Nothing moved.
        assert_eq!(run(&tm, t, Request::Get { key: 0 }), Response::Value(5));
        assert_eq!(run(&tm, t, Request::Get { key: 1 }), Response::Value(0));
    }

    #[test]
    fn self_transfer_conserves_balance() {
        let (tm, t) = tm();
        run(&tm, t, Request::Put { key: 2, value: 50 });
        assert_eq!(
            run(
                &tm,
                t,
                Request::Transfer {
                    from: 2,
                    to: 2,
                    amount: 10
                }
            ),
            Response::Transferred(true)
        );
        assert_eq!(run(&tm, t, Request::Get { key: 2 }), Response::Value(50));
    }

    #[test]
    fn add_wraps() {
        let (tm, t) = tm();
        run(
            &tm,
            t,
            Request::Put {
                key: 1,
                value: u64::MAX,
            },
        );
        assert_eq!(
            run(&tm, t, Request::Add { key: 1, delta: 2 }),
            Response::Value(1)
        );
    }
}
