//! Shard workers: the threads that drain a shard's queue and run each
//! request as one transaction.

use crate::request::{Request, Response, TxKvError};
use crate::retry::RetryPolicy;
use crate::stats::ShardStats;
use crossbeam::channel::{Receiver, Sender};
use rococo_stm::{Abort, Addr, TmSystem, Transaction};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// One queued request plus everything needed to answer it.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) enqueued_at: Instant,
    pub(crate) reply: Sender<Result<Response, TxKvError>>,
}

/// Runs one request body inside an open transaction. Shared by every
/// retry attempt; all writes are buffered until commit, so re-execution
/// after an abort is safe.
fn apply<T: Transaction>(tx: &mut T, table: Addr, req: &Request) -> Result<Response, Abort> {
    let addr = |key: u64| table + key as Addr;
    match req {
        Request::Get { key } => Ok(Response::Value(tx.read(addr(*key))?)),
        Request::Put { key, value } => {
            tx.write(addr(*key), *value)?;
            Ok(Response::Done)
        }
        Request::Add { key, delta } => {
            let new = tx.read(addr(*key))?.wrapping_add(*delta);
            tx.write(addr(*key), new)?;
            Ok(Response::Value(new))
        }
        Request::Transfer { from, to, amount } => {
            let src = tx.read(addr(*from))?;
            if src < *amount {
                return Ok(Response::Transferred(false));
            }
            // A self-transfer succeeds but must not touch the balance:
            // writing `src - amount` then `dst + amount` to the same key
            // would mint money.
            if from != to {
                let dst = tx.read(addr(*to))?;
                tx.write(addr(*from), src - amount)?;
                tx.write(addr(*to), dst.wrapping_add(*amount))?;
            }
            Ok(Response::Transferred(true))
        }
        Request::MultiGet { keys } => {
            let mut out = Vec::with_capacity(keys.len());
            for key in keys {
                out.push(tx.read(addr(*key))?);
            }
            Ok(Response::Values(out))
        }
    }
}

/// The worker loop: drain the shard queue until every sender is dropped
/// (service shutdown), executing each job with the retry policy and
/// recording per-shard statistics.
pub(crate) fn run_worker<S: TmSystem + ?Sized>(
    system: Arc<S>,
    table: Addr,
    thread_id: usize,
    policy: RetryPolicy,
    stats: Arc<ShardStats>,
    rx: Receiver<Job>,
) {
    // Per-worker jitter state; any distinct nonzero seed works.
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ ((thread_id as u64 + 1) << 17);
    while let Ok(job) = rx.recv() {
        let result = policy.execute(
            &*system,
            thread_id,
            |tx| apply(tx, table, &job.req),
            |kind| stats.record_abort(kind),
            &mut rng,
        );
        let reply = match result {
            Ok((resp, attempts)) => {
                stats.committed.fetch_add(1, Ordering::Relaxed);
                stats
                    .retries
                    .fetch_add(u64::from(attempts - 1), Ordering::Relaxed);
                Ok(resp)
            }
            Err((abort, attempts)) => {
                stats.failed.fetch_add(1, Ordering::Relaxed);
                stats
                    .retries
                    .fetch_add(u64::from(attempts - 1), Ordering::Relaxed);
                Err(TxKvError::RetriesExhausted {
                    attempts,
                    last: abort.kind,
                })
            }
        };
        stats
            .latency
            .record(job.enqueued_at.elapsed().as_nanos() as u64);
        // The client may have dropped its PendingReply; that is not the
        // worker's problem.
        let _ = job.reply.send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{try_atomically, TinyStm, TmConfig};

    fn tm() -> (TinyStm, Addr) {
        let tm = TinyStm::with_config(TmConfig {
            heap_words: 256,
            max_threads: 2,
        });
        let table = tm.heap().alloc(64);
        (tm, table)
    }

    fn run(tm: &TinyStm, table: Addr, req: Request) -> Response {
        try_atomically(tm, 0, &mut |tx| apply(tx, table, &req)).unwrap()
    }

    #[test]
    fn apply_request_semantics() {
        let (tm, t) = tm();
        assert_eq!(
            run(&tm, t, Request::Put { key: 3, value: 10 }),
            Response::Done
        );
        assert_eq!(run(&tm, t, Request::Get { key: 3 }), Response::Value(10));
        assert_eq!(
            run(&tm, t, Request::Add { key: 3, delta: 5 }),
            Response::Value(15)
        );
        assert_eq!(
            run(
                &tm,
                t,
                Request::Transfer {
                    from: 3,
                    to: 4,
                    amount: 6
                }
            ),
            Response::Transferred(true)
        );
        assert_eq!(
            run(&tm, t, Request::MultiGet { keys: vec![3, 4] }),
            Response::Values(vec![9, 6])
        );
    }

    #[test]
    fn transfer_declines_on_insufficient_balance() {
        let (tm, t) = tm();
        run(&tm, t, Request::Put { key: 0, value: 5 });
        assert_eq!(
            run(
                &tm,
                t,
                Request::Transfer {
                    from: 0,
                    to: 1,
                    amount: 6
                }
            ),
            Response::Transferred(false)
        );
        // Nothing moved.
        assert_eq!(run(&tm, t, Request::Get { key: 0 }), Response::Value(5));
        assert_eq!(run(&tm, t, Request::Get { key: 1 }), Response::Value(0));
    }

    #[test]
    fn self_transfer_conserves_balance() {
        let (tm, t) = tm();
        run(&tm, t, Request::Put { key: 2, value: 50 });
        assert_eq!(
            run(
                &tm,
                t,
                Request::Transfer {
                    from: 2,
                    to: 2,
                    amount: 10
                }
            ),
            Response::Transferred(true)
        );
        assert_eq!(run(&tm, t, Request::Get { key: 2 }), Response::Value(50));
    }

    #[test]
    fn add_wraps() {
        let (tm, t) = tm();
        run(
            &tm,
            t,
            Request::Put {
                key: 1,
                value: u64::MAX,
            },
        );
        assert_eq!(
            run(&tm, t, Request::Add { key: 1, delta: 2 }),
            Response::Value(1)
        );
    }
}
