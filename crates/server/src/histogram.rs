//! A lock-free log-bucketed latency histogram.
//!
//! Values are nanoseconds. Buckets are exact below 16 ns, then geometric
//! with 8 sub-buckets per octave (a 3-bit mantissa), giving a worst-case
//! relative error of ~6 % per recorded value — plenty for p50/p99/p999
//! service latency while keeping recording to a handful of instructions
//! on one relaxed atomic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Exact buckets for values `0..16`.
const EXACT: usize = 16;
/// Sub-buckets per octave above the exact range.
const SUB: usize = 8;
/// Octaves covered: values up to `2^63`.
const OCTAVES: usize = 60;
const BUCKETS: usize = EXACT + OCTAVES * SUB;

/// Concurrent log-bucketed histogram of nanosecond values.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(ns: u64) -> usize {
    if ns < EXACT as u64 {
        return ns as usize;
    }
    let b = 63 - ns.leading_zeros() as usize; // top-bit position, >= 4
    let m = ((ns >> (b - 3)) & 0x7) as usize; // 3 mantissa bits
    (EXACT + (b - 4) * SUB + m).min(BUCKETS - 1)
}

/// Representative (midpoint) value of a bucket.
fn value_of(idx: usize) -> u64 {
    if idx < EXACT {
        return idx as u64;
    }
    let b = 4 + (idx - EXACT) / SUB;
    let m = ((idx - EXACT) % SUB) as u64;
    let lower = (1u64 << b) | (m << (b - 3));
    lower + (1u64 << (b - 3)) / 2
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds).
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time copy with precomputed quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let target = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return value_of(i);
                }
            }
            value_of(BUCKETS - 1)
        };
        HistogramSnapshot {
            count: total,
            mean_ns: if total == 0 {
                0.0
            } else {
                self.sum.load(Ordering::Relaxed) as f64 / total as f64
            },
            p50_ns: quantile(0.50),
            p99_ns: quantile(0.99),
            p999_ns: quantile(0.999),
            max_ns: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time histogram summary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Mean of recorded values (ns).
    pub mean_ns: f64,
    /// Median (ns, bucket midpoint).
    pub p50_ns: u64,
    /// 99th percentile (ns, bucket midpoint).
    pub p99_ns: u64,
    /// 99.9th percentile (ns, bucket midpoint).
    pub p999_ns: u64,
    /// Largest recorded value (ns, exact).
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Merges two snapshots (quantiles are approximated by the max of the
    /// two — used only for aggregate reporting across shards).
    pub fn merged_with(&self, other: &Self) -> Self {
        let total = self.count + other.count;
        Self {
            count: total,
            mean_ns: if total == 0 {
                0.0
            } else {
                (self.mean_ns * self.count as f64 + other.mean_ns * other.count as f64)
                    / total as f64
            },
            p50_ns: self.p50_ns.max(other.p50_ns),
            p99_ns: self.p99_ns.max(other.p99_ns),
            p999_ns: self.p999_ns.max(other.p999_ns),
            max_ns: self.max_ns.max(other.max_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_bounded() {
        let mut last = 0;
        for ns in [0u64, 1, 15, 16, 17, 100, 1_000, 65_535, 1 << 30, u64::MAX] {
            let b = bucket_of(ns);
            assert!(b >= last, "bucket regressed at {ns}");
            assert!(b < BUCKETS);
            last = b;
        }
    }

    #[test]
    fn representative_value_within_relative_error() {
        for ns in [20u64, 100, 999, 12_345, 1_000_000, 123_456_789] {
            let rep = value_of(bucket_of(ns));
            let err = (rep as f64 - ns as f64).abs() / ns as f64;
            assert!(err < 0.07, "{ns} -> {rep} (err {err})");
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for ns in 1..=10_000u64 {
            h.record(ns * 100); // 100ns .. 1ms
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        let p50 = s.p50_ns as f64;
        let p99 = s.p99_ns as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.10, "p50 {p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.10, "p99 {p99}");
        assert!(s.p999_ns >= s.p99_ns && s.p99_ns >= s.p50_ns);
        assert_eq!(s.max_ns, 1_000_000);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p999_ns, 0);
        assert_eq!(s.mean_ns, 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(4_096); // everything in one bucket
        }
        let s = h.snapshot();
        let empty = HistogramSnapshot::default();
        // Single-populated-bucket quantiles all collapse to that bucket's
        // representative value, and merging with an empty snapshot must
        // change nothing in either direction.
        assert_eq!(s.p50_ns, s.p999_ns);
        assert_eq!(s.merged_with(&empty), s);
        assert_eq!(empty.merged_with(&s), s);
    }

    #[test]
    fn extreme_values_do_not_break_the_snapshot() {
        let h = LatencyHistogram::new();
        // u64::MAX lands in the clamped top bucket and wraps the relaxed
        // sum counter; the snapshot must stay well-formed (exact max,
        // ordered quantiles, no panic) even when the mean is garbage.
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.max_ns, u64::MAX);
        assert!(s.p50_ns <= s.p99_ns && s.p99_ns <= s.p999_ns);
        assert!(s.p999_ns > 0);
    }

    #[test]
    fn quantile_edges_clamp_to_recorded_range() {
        let h = LatencyHistogram::new();
        h.record(7); // exact bucket
        let s = h.snapshot();
        // One sample: every quantile is that sample.
        assert_eq!((s.p50_ns, s.p99_ns, s.p999_ns, s.max_ns), (7, 7, 7, 7));
    }

    #[test]
    fn merge_weights_means() {
        let a = HistogramSnapshot {
            count: 10,
            mean_ns: 100.0,
            ..Default::default()
        };
        let b = HistogramSnapshot {
            count: 30,
            mean_ns: 200.0,
            ..Default::default()
        };
        let m = a.merged_with(&b);
        assert_eq!(m.count, 40);
        assert!((m.mean_ns - 175.0).abs() < 1e-9);
    }
}
