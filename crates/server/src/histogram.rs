//! A lock-free log-bucketed latency histogram.
//!
//! Values are nanoseconds. Buckets are exact below 16 ns, then geometric
//! with 8 sub-buckets per octave (a 3-bit mantissa), giving a worst-case
//! relative error of ~6 % per recorded value — plenty for p50/p99/p999
//! service latency while keeping recording to a handful of instructions
//! on one relaxed atomic.
//!
//! Snapshots carry their full bucket counts, so cross-shard aggregation
//! ([`HistogramSnapshot::merged_with`]) is exact: bucket counts add,
//! quantiles are recomputed from the merged distribution, and the mean
//! comes from the summed totals rather than being reconstructed from
//! per-shard floating-point means (which drifts).

use std::sync::atomic::{AtomicU64, Ordering};

/// Exact buckets for values `0..16`.
const EXACT: usize = 16;
/// Sub-buckets per octave above the exact range.
const SUB: usize = 8;
/// Octaves covered: values up to `2^63`.
const OCTAVES: usize = 60;
const BUCKETS: usize = EXACT + OCTAVES * SUB;

/// Concurrent log-bucketed histogram of nanosecond values.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(ns: u64) -> usize {
    if ns < EXACT as u64 {
        return ns as usize;
    }
    let b = 63 - ns.leading_zeros() as usize; // top-bit position, >= 4
    let m = ((ns >> (b - 3)) & 0x7) as usize; // 3 mantissa bits
    (EXACT + (b - 4) * SUB + m).min(BUCKETS - 1)
}

/// Representative (midpoint) value of a bucket.
fn value_of(idx: usize) -> u64 {
    if idx < EXACT {
        return idx as u64;
    }
    let b = 4 + (idx - EXACT) / SUB;
    let m = ((idx - EXACT) % SUB) as u64;
    let lower = (1u64 << b) | (m << (b - 3));
    lower + (1u64 << (b - 3)) / 2
}

/// Largest value that lands in a bucket (its inclusive upper edge).
fn upper_of(idx: usize) -> u64 {
    if idx < EXACT {
        return idx as u64;
    }
    let b = 4 + (idx - EXACT) / SUB;
    let m = ((idx - EXACT) % SUB) as u64;
    let lower = (1u64 << b) | (m << (b - 3));
    lower + (1u64 << (b - 3)) - 1
}

/// Quantile `q` over `counts`, as the representative value of the bucket
/// holding the target observation — clamped to `max_ns` so a quantile
/// can never exceed the largest value actually recorded (the bucket
/// *midpoint* of the top occupied bucket otherwise overshoots it).
fn quantile_from(counts: &[u64], total: u64, max_ns: u64, q: f64) -> u64 {
    // Rank selection and the cumulative scan live in the shared
    // telemetry helper; this histogram only supplies the bucket →
    // representative-value mapping and the max clamp.
    match rococo_telemetry::quantile::bucket_index(counts, total, q) {
        None => 0,
        Some(i) => value_of(i).min(max_ns),
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds).
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time copy with precomputed quantiles and the
    /// full bucket counts (for exact merging and histogram export).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let sum_ns = self.sum.load(Ordering::Relaxed);
        let max_ns = self.max.load(Ordering::Relaxed);
        HistogramSnapshot {
            count: total,
            sum_ns,
            mean_ns: if total == 0 {
                0.0
            } else {
                sum_ns as f64 / total as f64
            },
            p50_ns: quantile_from(&counts, total, max_ns, 0.50),
            p99_ns: quantile_from(&counts, total, max_ns, 0.99),
            p999_ns: quantile_from(&counts, total, max_ns, 0.999),
            max_ns,
            buckets: counts,
        }
    }
}

/// A point-in-time histogram summary, carrying its bucket counts so
/// merges are exact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (ns; wraps like the recording counter).
    pub sum_ns: u64,
    /// Mean of recorded values (ns).
    pub mean_ns: f64,
    /// Median (ns, bucket midpoint, clamped to `max_ns`).
    pub p50_ns: u64,
    /// 99th percentile (ns, bucket midpoint, clamped to `max_ns`).
    pub p99_ns: u64,
    /// 99.9th percentile (ns, bucket midpoint, clamped to `max_ns`).
    pub p999_ns: u64,
    /// Largest recorded value (ns, exact).
    pub max_ns: u64,
    /// Per-bucket counts (empty for a default/hand-built summary).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Merges two snapshots exactly: bucket counts add, quantiles are
    /// recomputed from the combined distribution, and the mean comes
    /// from the summed totals. Snapshots without bucket counts
    /// (hand-built summaries) degrade to the old approximation — max of
    /// the two quantiles, count-weighted mean.
    pub fn merged_with(&self, other: &Self) -> Self {
        let total = self.count + other.count;
        let max_ns = self.max_ns.max(other.max_ns);
        let sum_ns = self.sum_ns.wrapping_add(other.sum_ns);
        let buckets: Vec<u64> = match (self.buckets.is_empty(), other.buckets.is_empty()) {
            (false, false) => self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            (false, true) => self.buckets.clone(),
            (true, false) => other.buckets.clone(),
            (true, true) => Vec::new(),
        };
        // Exact path only when the merged buckets cover every count;
        // otherwise one side was bucket-less and quantiles fall back.
        let exact = !buckets.is_empty() && buckets.iter().sum::<u64>() == total;
        let (p50_ns, p99_ns, p999_ns) = if exact {
            (
                quantile_from(&buckets, total, max_ns, 0.50),
                quantile_from(&buckets, total, max_ns, 0.99),
                quantile_from(&buckets, total, max_ns, 0.999),
            )
        } else {
            (
                self.p50_ns.max(other.p50_ns),
                self.p99_ns.max(other.p99_ns),
                self.p999_ns.max(other.p999_ns),
            )
        };
        let mean_ns = if total == 0 {
            0.0
        } else if exact {
            sum_ns as f64 / total as f64
        } else {
            (self.mean_ns * self.count as f64 + other.mean_ns * other.count as f64) / total as f64
        };
        Self {
            count: total,
            sum_ns,
            mean_ns,
            p50_ns,
            p99_ns,
            p999_ns,
            max_ns,
            buckets,
        }
    }

    /// Cumulative counts at the given ascending inclusive upper bounds
    /// (ns), for Prometheus-style histogram exposition. A bucket is
    /// counted under the first bound at or above its inclusive upper
    /// edge, so each cumulative count is a lower bound on the true
    /// `observations <= bound` (never an overcount).
    pub fn cumulative(&self, bounds_ns: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; bounds_ns.len()];
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upper = upper_of(i);
            for (j, &bound) in bounds_ns.iter().enumerate() {
                if upper <= bound {
                    out[j] += c;
                    break;
                }
            }
        }
        // Make counts cumulative across bounds.
        for j in 1..out.len() {
            out[j] += out[j - 1];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_bounded() {
        let mut last = 0;
        for ns in [0u64, 1, 15, 16, 17, 100, 1_000, 65_535, 1 << 30, u64::MAX] {
            let b = bucket_of(ns);
            assert!(b >= last, "bucket regressed at {ns}");
            assert!(b < BUCKETS);
            last = b;
        }
    }

    #[test]
    fn bucket_upper_edges_are_tight() {
        for ns in [0u64, 15, 16, 17, 100, 4_096, 1 << 20, u64::MAX / 2] {
            let idx = bucket_of(ns);
            let upper = upper_of(idx);
            assert!(ns <= upper, "{ns} above its bucket edge {upper}");
            // The next value after the edge lands in a later bucket.
            assert!(
                bucket_of(upper + 1) > idx,
                "edge {upper} not tight for {ns}"
            );
        }
    }

    #[test]
    fn representative_value_within_relative_error() {
        for ns in [20u64, 100, 999, 12_345, 1_000_000, 123_456_789] {
            let rep = value_of(bucket_of(ns));
            let err = (rep as f64 - ns as f64).abs() / ns as f64;
            assert!(err < 0.07, "{ns} -> {rep} (err {err})");
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for ns in 1..=10_000u64 {
            h.record(ns * 100); // 100ns .. 1ms
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        let p50 = s.p50_ns as f64;
        let p99 = s.p99_ns as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.10, "p50 {p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.10, "p99 {p99}");
        assert!(s.p999_ns >= s.p99_ns && s.p99_ns >= s.p50_ns);
        assert_eq!(s.max_ns, 1_000_000);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!((s.p50_ns, s.p99_ns, s.p999_ns, s.max_ns), (0, 0, 0, 0));
        assert_eq!(s.mean_ns, 0.0);
        assert_eq!(s.sum_ns, 0);
        assert!(s.buckets.iter().all(|&c| c == 0));
    }

    #[test]
    fn single_sample_quantiles_are_that_sample() {
        for ns in [0u64, 7, 16, 12_345] {
            let h = LatencyHistogram::new();
            h.record(ns);
            let s = h.snapshot();
            assert_eq!(s.count, 1);
            assert_eq!(s.max_ns, ns);
            // One sample: every quantile is clamped to it exactly.
            assert_eq!((s.p50_ns, s.p99_ns, s.p999_ns), (ns, ns, ns), "ns={ns}");
            assert_eq!(s.mean_ns, ns as f64);
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(4_096); // everything in one bucket
        }
        let s = h.snapshot();
        let empty = HistogramSnapshot::default();
        // Single-populated-bucket quantiles all collapse to that bucket's
        // representative value, and merging with an empty snapshot must
        // change nothing in either direction.
        assert_eq!(s.p50_ns, s.p999_ns);
        assert_eq!(s.merged_with(&empty), s);
        assert_eq!(empty.merged_with(&s), s);
    }

    #[test]
    fn quantiles_never_exceed_observed_max() {
        // 4096 sits at the lower edge of a width-512 bucket; the bucket
        // midpoint (4352) used to leak out of the quantiles, reporting a
        // p999 above any recorded value. Quantiles are now clamped.
        let h = LatencyHistogram::new();
        for _ in 0..1_000 {
            h.record(4_096);
        }
        let s = h.snapshot();
        assert_eq!(s.max_ns, 4_096);
        assert!(s.p50_ns <= s.max_ns);
        assert!(s.p999_ns <= s.max_ns);
    }

    #[test]
    fn merge_recomputes_quantiles_from_combined_distribution() {
        // Shard A: 99 fast ops. Shard B: 1 slow op. The service-level
        // p50 must stay fast; the old max-of-quantiles approximation
        // reported the slow shard's p50 for the whole service.
        let a = LatencyHistogram::new();
        for _ in 0..99 {
            a.record(1_000);
        }
        let b = LatencyHistogram::new();
        b.record(1_000_000);
        let m = a.snapshot().merged_with(&b.snapshot());
        assert_eq!(m.count, 100);
        assert_eq!(
            m.p50_ns,
            a.snapshot().p50_ns,
            "p50 dragged up by slow shard"
        );
        assert!(m.p999_ns >= 900_000, "tail must reflect the slow op");
        // Mean from summed totals: (99*1_000 + 1_000_000) / 100.
        assert!((m.mean_ns - 10_990.0).abs() < 1e-9, "mean {}", m.mean_ns);
        assert_eq!(m.sum_ns, 99 * 1_000 + 1_000_000);
    }

    #[test]
    fn saturating_top_bucket_counts_stay_coherent() {
        let h = LatencyHistogram::new();
        // Everything at or above the top bucket's lower edge shares it.
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record((1u64 << 63) | (7u64 << 60));
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[BUCKETS - 1], 3);
        assert_eq!(s.max_ns, u64::MAX);
        assert!(s.p50_ns <= s.max_ns && s.p999_ns <= s.max_ns);
        // Merging two saturated snapshots keeps the top bucket saturated.
        let m = s.merged_with(&s);
        assert_eq!(m.buckets[BUCKETS - 1], 6);
        assert_eq!(m.count, 6);
    }

    #[test]
    fn extreme_values_do_not_break_the_snapshot() {
        let h = LatencyHistogram::new();
        // u64::MAX lands in the clamped top bucket and wraps the relaxed
        // sum counter; the snapshot must stay well-formed (exact max,
        // ordered quantiles, no panic) even when the mean is garbage.
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.max_ns, u64::MAX);
        assert!(s.p50_ns <= s.p99_ns && s.p99_ns <= s.p999_ns);
        assert!(s.p999_ns > 0);
    }

    #[test]
    fn quantile_edges_clamp_to_recorded_range() {
        let h = LatencyHistogram::new();
        h.record(7); // exact bucket
        let s = h.snapshot();
        // One sample: every quantile is that sample.
        assert_eq!((s.p50_ns, s.p99_ns, s.p999_ns, s.max_ns), (7, 7, 7, 7));
    }

    #[test]
    fn bucketless_summaries_fall_back_to_approximation() {
        let a = HistogramSnapshot {
            count: 10,
            mean_ns: 100.0,
            ..Default::default()
        };
        let b = HistogramSnapshot {
            count: 30,
            mean_ns: 200.0,
            ..Default::default()
        };
        let m = a.merged_with(&b);
        assert_eq!(m.count, 40);
        assert!((m.mean_ns - 175.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_export_is_monotone_and_complete() {
        let h = LatencyHistogram::new();
        for ns in [10u64, 500, 5_000, 50_000, 50_000, 5_000_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        let bounds = [1_000u64, 100_000, 10_000_000];
        let cum = s.cumulative(&bounds);
        assert_eq!(cum.len(), 3);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        // Everything fits under the widest bound here.
        assert_eq!(*cum.last().unwrap(), s.count);
        // The first bound covers the two small samples.
        assert_eq!(cum[0], 2);
    }
}
