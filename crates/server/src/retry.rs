//! Bounded exponential backoff with jitter around the single-attempt
//! transaction primitive.
//!
//! The STM's own [`atomically`](rococo_stm::atomically) spins forever;
//! a service cannot, because a request holds a queue slot and a reply
//! channel. [`RetryPolicy`] bounds the attempts and sleeps between them
//! with decorrelated jitter so colliding workers spread out instead of
//! re-colliding in lockstep. The retry loop deliberately reuses the
//! backend's escalation machinery: under ROCoCoTM, consecutive aborts on
//! the same worker thread trip the irrevocable path, so a bounded policy
//! still converges on hot keys.

use rococo_stm::{try_atomically_seq, Abort, AbortKind, TmSystem};
use std::time::Duration;

/// Retry policy for one request: bounded attempts with capped
/// exponential backoff plus jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum transaction attempts per request; `0` means unlimited
    /// (rely entirely on the backend's escalation to converge).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in nanoseconds.
    pub base_delay_ns: u64,
    /// Cap on any single backoff, in nanoseconds.
    pub max_delay_ns: u64,
    /// Fraction of the delay randomised away, in `0.0..=1.0`. With
    /// jitter `j`, the actual sleep is uniform in
    /// `[delay * (1 - j), delay]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 64,
            base_delay_ns: 250,
            max_delay_ns: 100_000,
            jitter: 0.5,
        }
    }
}

/// xorshift64* step — cheap per-worker jitter source.
pub(crate) fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl RetryPolicy {
    /// The backoff (ns) to sleep after the `attempt`-th failure
    /// (1-based), jittered using `rng` (xorshift state, must be nonzero).
    pub fn backoff_ns(&self, attempt: u32, rng: &mut u64) -> u64 {
        let exp = attempt.saturating_sub(1).min(63);
        let raw = self
            .base_delay_ns
            .saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX))
            .min(self.max_delay_ns);
        let j = self.jitter.clamp(0.0, 1.0);
        if j == 0.0 || raw == 0 {
            return raw;
        }
        // Uniform in [raw * (1 - j), raw].
        let r = (next_rand(rng) >> 11) as f64 / (1u64 << 53) as f64;
        let lo = raw as f64 * (1.0 - j);
        (lo + r * (raw as f64 - lo)) as u64
    }

    /// Runs `body` as repeated transaction attempts on `system` until it
    /// commits or the policy gives up. Calls `on_abort` for every failed
    /// attempt (for per-cause accounting). On success returns the result
    /// and the number of attempts made.
    ///
    /// # Errors
    ///
    /// Returns the last [`Abort`] once `max_attempts` is exhausted.
    pub fn execute<S, R, F>(
        &self,
        system: &S,
        thread_id: usize,
        body: F,
        on_abort: impl FnMut(AbortKind),
        rng: &mut u64,
    ) -> Result<(R, u32), (Abort, u32)>
    where
        S: TmSystem + ?Sized,
        F: FnMut(&mut S::Tx<'_>) -> Result<R, Abort>,
    {
        self.execute_seq(system, thread_id, body, on_abort, rng)
            .map(|(r, _, attempts)| (r, attempts))
    }

    /// Like [`RetryPolicy::execute`] but also reports the committed
    /// attempt's durable sequence number (`None` for read-only commits),
    /// so the caller can log the transaction in serialization order. See
    /// [`rococo_stm::Transaction::commit_seq`].
    ///
    /// # Errors
    ///
    /// Returns the last [`Abort`] once `max_attempts` is exhausted.
    pub fn execute_seq<S, R, F>(
        &self,
        system: &S,
        thread_id: usize,
        mut body: F,
        mut on_abort: impl FnMut(AbortKind),
        rng: &mut u64,
    ) -> Result<(R, Option<u64>, u32), (Abort, u32)>
    where
        S: TmSystem + ?Sized,
        F: FnMut(&mut S::Tx<'_>) -> Result<R, Abort>,
    {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match try_atomically_seq(system, thread_id, &mut body) {
                Ok((r, seq)) => return Ok((r, seq, attempts)),
                Err(abort) => {
                    on_abort(abort.kind);
                    if self.max_attempts != 0 && attempts >= self.max_attempts {
                        return Err((abort, attempts));
                    }
                    let ns = self.backoff_ns(attempts, rng);
                    rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Backoff {
                        attempt: attempts,
                        delay_ns: ns,
                    });
                    if ns > 0 {
                        sleep_ns(ns);
                    }
                }
            }
        }
    }
}

/// Sleeps roughly `ns` nanoseconds: spin for sub-microsecond waits (a
/// syscall would dominate), otherwise park the thread.
///
/// The spin is driven by an `Instant` deadline, not an iteration count:
/// one `spin_loop` hint retires in well under a nanosecond, so spinning
/// `ns` iterations used to sleep an order of magnitude shorter than the
/// computed backoff and colliding workers re-collided almost immediately.
fn sleep_ns(ns: u64) {
    if ns < 1_000 {
        let deadline = std::time::Instant::now() + Duration::from_nanos(ns);
        while std::time::Instant::now() < deadline {
            std::hint::spin_loop();
        }
    } else {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_by_max_delay() {
        let p = RetryPolicy {
            max_attempts: 0,
            base_delay_ns: 100,
            max_delay_ns: 5_000,
            jitter: 0.0,
        };
        let mut rng = 42;
        assert_eq!(p.backoff_ns(1, &mut rng), 100);
        assert_eq!(p.backoff_ns(2, &mut rng), 200);
        assert_eq!(p.backoff_ns(6, &mut rng), 3_200);
        // Caps instead of growing without bound.
        assert_eq!(p.backoff_ns(7, &mut rng), 5_000);
        assert_eq!(p.backoff_ns(63, &mut rng), 5_000);
        assert_eq!(p.backoff_ns(u32::MAX, &mut rng), 5_000);
    }

    #[test]
    fn backoff_is_jittered_within_band() {
        let p = RetryPolicy {
            max_attempts: 0,
            base_delay_ns: 1_000,
            max_delay_ns: 1_000_000,
            jitter: 0.5,
        };
        let mut rng = 0x1234_5678_9abc_def0;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let d = p.backoff_ns(4, &mut rng); // raw = 8_000
            assert!((4_000..=8_000).contains(&d), "delay {d} out of band");
            seen.insert(d);
        }
        // Actually jittered: many distinct values, not a constant.
        assert!(seen.len() > 16, "only {} distinct delays", seen.len());
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut a = 1;
        let mut b = 999;
        assert_eq!(p.backoff_ns(3, &mut a), p.backoff_ns(3, &mut b));
    }

    #[test]
    fn jitter_is_reproducible_under_a_fixed_seed() {
        let p = RetryPolicy {
            max_attempts: 0,
            base_delay_ns: 1_000,
            max_delay_ns: 1_000_000,
            jitter: 0.5,
        };
        let seq = |seed: u64| -> Vec<u64> {
            let mut rng = seed;
            (1..=20).map(|a| p.backoff_ns(a, &mut rng)).collect()
        };
        // Same seed, same delays; a different seed diverges somewhere.
        assert_eq!(seq(0xDEAD_BEEF), seq(0xDEAD_BEEF));
        assert_ne!(seq(0xDEAD_BEEF), seq(0xFEED_FACE));
    }

    #[test]
    fn backoff_degenerate_configs_are_safe() {
        // Zero base: never sleeps, never divides by zero in the jitter
        // band computation.
        let p = RetryPolicy {
            max_attempts: 0,
            base_delay_ns: 0,
            max_delay_ns: 1_000,
            jitter: 1.0,
        };
        let mut rng = 3;
        assert_eq!(p.backoff_ns(1, &mut rng), 0);
        assert_eq!(p.backoff_ns(40, &mut rng), 0);
        // Out-of-range jitter clamps instead of producing negative or
        // amplified delays.
        let p = RetryPolicy {
            max_attempts: 0,
            base_delay_ns: 100,
            max_delay_ns: 100,
            jitter: 7.5,
        };
        for _ in 0..32 {
            assert!(p.backoff_ns(1, &mut rng) <= 100);
        }
        // Saturating shift: huge attempt numbers cap at max_delay_ns
        // rather than overflowing the 1 << exp.
        let p = RetryPolicy {
            max_attempts: 0,
            base_delay_ns: u64::MAX / 2,
            max_delay_ns: u64::MAX,
            jitter: 0.0,
        };
        assert_eq!(p.backoff_ns(u32::MAX, &mut rng), u64::MAX);
    }

    #[test]
    fn execute_gives_up_after_max_attempts() {
        use rococo_stm::{Abort, TinyStm, TmConfig};
        let tm = TinyStm::with_config(TmConfig {
            heap_words: 64,
            max_threads: 1,
        });
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay_ns: 0,
            max_delay_ns: 0,
            jitter: 0.0,
        };
        let mut causes = Vec::new();
        let mut rng = 7;
        let res: Result<((), u32), _> = p.execute(
            &tm,
            0,
            |_tx| Err(Abort::new(AbortKind::Explicit)),
            |k| causes.push(k),
            &mut rng,
        );
        let (abort, attempts) = res.unwrap_err();
        assert_eq!(attempts, 3);
        assert_eq!(abort.kind, AbortKind::Explicit);
        assert_eq!(causes, vec![AbortKind::Explicit; 3]);
    }

    #[test]
    fn execute_counts_attempts_on_success() {
        use rococo_stm::{Abort, TinyStm, TmConfig, Transaction};
        let tm = TinyStm::with_config(TmConfig {
            heap_words: 64,
            max_threads: 1,
        });
        let addr = tm.heap().alloc(1);
        let p = RetryPolicy {
            base_delay_ns: 0,
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = 7;
        let mut fail_first = true;
        let (val, attempts) = p
            .execute(
                &tm,
                0,
                |tx| {
                    if fail_first {
                        fail_first = false;
                        return Err(Abort::new(AbortKind::Explicit));
                    }
                    tx.write(addr, 5)?;
                    tx.read(addr)
                },
                |_| {},
                &mut rng,
            )
            .unwrap();
        assert_eq!(val, 5);
        assert_eq!(attempts, 2);
    }
}
