//! The typed request/response model of TxKV.

use rococo_stm::{AbortKind, Word};
use std::fmt;

/// A key in the service's keyspace (`0 .. TxKvConfig::keys`). Keys map
/// 1:1 onto words of a contiguous table on the TM heap.
pub type Key = u64;

/// One client request. Every variant executes as a single transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point read of one key.
    Get {
        /// The key to read.
        key: Key,
    },
    /// Point write of one key.
    Put {
        /// The key to write.
        key: Key,
        /// The value stored.
        value: Word,
    },
    /// Read-modify-write: atomically add `delta` (wrapping) and return
    /// the new value.
    Add {
        /// The key to update.
        key: Key,
        /// Added to the current value (wrapping).
        delta: Word,
    },
    /// Multi-key transfer: move `amount` from `from` to `to` if the
    /// source balance covers it; the two updates commit atomically.
    Transfer {
        /// Source key.
        from: Key,
        /// Destination key.
        to: Key,
        /// Units moved.
        amount: Word,
    },
    /// Snapshot multi-get: read all `keys` in one transaction, so the
    /// returned values form a consistent snapshot.
    MultiGet {
        /// The keys to read (at most [`Request::MAX_MULTI_GET`]).
        keys: Vec<Key>,
    },
}

impl Request {
    /// Upper bound on `MultiGet` fan-out: long read sets both starve
    /// under contention and overflow HTM capacity; the service rejects
    /// larger requests up front.
    pub const MAX_MULTI_GET: usize = 64;

    /// The key used for shard routing (first/primary key).
    pub fn primary_key(&self) -> Key {
        match self {
            Request::Get { key }
            | Request::Put { key, .. }
            | Request::Add { key, .. }
            | Request::Transfer { from: key, .. } => *key,
            Request::MultiGet { keys } => keys.first().copied().unwrap_or(0),
        }
    }

    /// Every key the request touches, for bounds checking.
    pub(crate) fn for_each_key(&self, mut f: impl FnMut(Key)) {
        match self {
            Request::Get { key } | Request::Put { key, .. } | Request::Add { key, .. } => f(*key),
            Request::Transfer { from, to, .. } => {
                f(*from);
                f(*to);
            }
            Request::MultiGet { keys } => keys.iter().copied().for_each(&mut f),
        }
    }

    /// Whether the request performs no writes (commits on the CPU under
    /// ROCoCoTM, never visiting the FPGA).
    pub fn is_read_only(&self) -> bool {
        matches!(self, Request::Get { .. } | Request::MultiGet { .. })
    }

    /// Distinct scheduling classes [`Request::class`] can return.
    pub const CLASSES: usize = 5;

    /// The request's scheduling class — one per operation type, the tag a
    /// hybrid router keys its footprint prediction on
    /// ([`TmSystem::set_tx_class`](rococo_stm::TmSystem::set_tx_class)).
    /// Op types make good classes because each has a characteristic
    /// read/write-set shape: a `Get` touches one word, a `Transfer` four,
    /// a `MultiGet` up to [`Request::MAX_MULTI_GET`].
    pub fn class(&self) -> u32 {
        match self {
            Request::Get { .. } => 0,
            Request::Put { .. } => 1,
            Request::Add { .. } => 2,
            Request::Transfer { .. } => 3,
            Request::MultiGet { .. } => 4,
        }
    }
}

/// A successful request's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `Get` / `Add`: the (new) value of the key.
    Value(Word),
    /// `Put`: the write committed.
    Done,
    /// `Transfer`: whether the funds moved (`false` = insufficient
    /// balance; the transaction still committed, changing nothing).
    Transferred(bool),
    /// `MultiGet`: the values, in request-key order, from one snapshot.
    Values(Vec<Word>),
}

/// A typed service error. Requests never hang: overload and invalid
/// input surface here instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxKvError {
    /// Admission control shed the request: the target shard's queue was
    /// full. Back off and retry later.
    Overloaded {
        /// The shard whose queue was full.
        shard: usize,
    },
    /// A key is outside the configured keyspace.
    KeyOutOfRange {
        /// The offending key.
        key: Key,
        /// The keyspace size (valid keys are `0..keys`).
        keys: u64,
    },
    /// A `MultiGet` asked for more than [`Request::MAX_MULTI_GET`] keys.
    TooManyKeys {
        /// Keys requested.
        requested: usize,
    },
    /// The retry policy gave up before the transaction committed.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The last abort's cause.
        last: AbortKind,
    },
    /// The transaction committed in memory but the write-ahead log could
    /// not acknowledge it (the WAL writer died — simulated crash or I/O
    /// error). The write may or may not survive a restart; the service
    /// stops accepting further writes on this log.
    DurabilityLost,
    /// The request's transaction panicked inside the backend. The worker
    /// survived and the shard keeps serving; the request's effects (if
    /// any) were discarded by the backend's abort path.
    Internal,
    /// The service is shutting down; the request was not executed.
    ShuttingDown,
    /// The service could not start with the given configuration.
    InvalidConfig {
        /// What was wrong.
        reason: &'static str,
    },
}

impl TxKvError {
    /// Short stable label for this error, used as the trace `Reply`
    /// outcome so sampled chains can be grouped by failure mode.
    pub fn label(&self) -> &'static str {
        match self {
            TxKvError::Overloaded { .. } => "shed",
            TxKvError::KeyOutOfRange { .. } => "key-out-of-range",
            TxKvError::TooManyKeys { .. } => "too-many-keys",
            TxKvError::RetriesExhausted { .. } => "retries-exhausted",
            TxKvError::DurabilityLost => "durability-lost",
            TxKvError::Internal => "internal",
            TxKvError::ShuttingDown => "shutting-down",
            TxKvError::InvalidConfig { .. } => "invalid-config",
        }
    }
}

impl fmt::Display for TxKvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxKvError::Overloaded { shard } => {
                write!(
                    f,
                    "shard {shard} overloaded: request shed by admission control"
                )
            }
            TxKvError::KeyOutOfRange { key, keys } => {
                write!(f, "key {key} outside keyspace 0..{keys}")
            }
            TxKvError::TooManyKeys { requested } => write!(
                f,
                "multi-get of {requested} keys exceeds the {} key limit",
                Request::MAX_MULTI_GET
            ),
            TxKvError::RetriesExhausted { attempts, last } => write!(
                f,
                "transaction still aborting after {attempts} attempts (last cause: {})",
                last.as_label()
            ),
            TxKvError::DurabilityLost => write!(
                f,
                "durability lost: the write-ahead log stopped before acknowledging the commit"
            ),
            TxKvError::Internal => {
                write!(f, "internal error: the request's transaction panicked")
            }
            TxKvError::ShuttingDown => write!(f, "service is shutting down"),
            TxKvError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for TxKvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_key_routes_by_first_key() {
        assert_eq!(Request::Get { key: 9 }.primary_key(), 9);
        assert_eq!(
            Request::Transfer {
                from: 3,
                to: 8,
                amount: 1
            }
            .primary_key(),
            3
        );
        assert_eq!(Request::MultiGet { keys: vec![5, 6] }.primary_key(), 5);
        assert_eq!(Request::MultiGet { keys: vec![] }.primary_key(), 0);
    }

    #[test]
    fn read_only_classification() {
        assert!(Request::Get { key: 0 }.is_read_only());
        assert!(Request::MultiGet { keys: vec![1] }.is_read_only());
        assert!(!Request::Put { key: 0, value: 1 }.is_read_only());
        assert!(!Request::Add { key: 0, delta: 1 }.is_read_only());
        assert!(!Request::Transfer {
            from: 0,
            to: 1,
            amount: 1
        }
        .is_read_only());
    }

    #[test]
    fn errors_display() {
        let e = TxKvError::Overloaded { shard: 2 };
        assert!(e.to_string().contains("shard 2"));
        let e = TxKvError::RetriesExhausted {
            attempts: 5,
            last: AbortKind::FpgaWindow,
        };
        assert!(e.to_string().contains("fpga-window"));
    }
}
