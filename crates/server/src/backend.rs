//! Config-driven backend selection.
//!
//! [`TxKv`] is generic over the TM backend, which is the right shape for
//! tests and libraries — but harnesses (the chaos runner, the load
//! generator, operators reading a config file) want to pick the backend
//! by *name* at runtime. [`BackendChoice`] is that name, carried on
//! [`TxKvConfig::backend`], and [`AnyTxKv`] is the enum-dispatched
//! service handle [`AnyTxKv::start`] builds from the configuration
//! alone: it sizes the TM from [`TxKvConfig::heap_words`] /
//! [`TxKvConfig::worker_threads`], constructs the chosen backend
//! (including the hybrid router), and forwards the service surface.

use crate::request::{Request, Response, TxKvError};
use crate::service::{PendingReply, TxKv, TxKvConfig};
use crate::stats::TxKvReport;
use rococo_sched::HybridTm;
use rococo_stm::{RococoTm, TinyStm, TmConfig, TsxHtm};
use std::sync::Arc;

/// Which TM runtime the service executes transactions on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// TinySTM-style LSA word-based STM (the software baseline).
    TinyStm,
    /// Best-effort TSX-style HTM emulation with a global-lock fallback.
    Htm,
    /// ROCoCoTM with the shared FPGA validation engine (the default).
    #[default]
    Rococo,
    /// The adaptive hybrid router: HTM fast path under a limited-set
    /// bound, ROCoCoTM slow path, contention-aware conflict
    /// serialization (`rococo-sched`).
    Hybrid,
}

impl BackendChoice {
    /// Every choice, in display order.
    pub const ALL: [BackendChoice; 4] = [
        BackendChoice::TinyStm,
        BackendChoice::Htm,
        BackendChoice::Rococo,
        BackendChoice::Hybrid,
    ];

    /// The backend's canonical CLI name (what [`BackendChoice::parse`]
    /// accepts). Note the constructed system's
    /// [`TmSystem::name`](rococo_stm::TmSystem::name) is a *display*
    /// name ("TinySTM", "ROCoCoTM", ...), not this.
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::TinyStm => "tinystm",
            BackendChoice::Htm => "htm",
            BackendChoice::Rococo => "rococo",
            BackendChoice::Hybrid => "hybrid",
        }
    }

    /// Parses a backend name (the inverse of [`BackendChoice::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|b| b.name() == s)
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A [`TxKv`] over the backend [`TxKvConfig::backend`] named — the
/// non-generic handle for config-driven harnesses. One enum variant per
/// backend; every method forwards to the inner service.
#[derive(Debug)]
pub enum AnyTxKv {
    /// Service on the TinySTM baseline.
    TinyStm(TxKv<TinyStm>),
    /// Service on the HTM emulation.
    Htm(TxKv<TsxHtm>),
    /// Service on ROCoCoTM.
    Rococo(TxKv<RococoTm>),
    /// Service on the hybrid router.
    Hybrid(TxKv<HybridTm>),
}

/// Forwards one `&self` method through the four variants.
macro_rules! forward {
    ($self:ident, $kv:ident => $body:expr) => {
        match $self {
            AnyTxKv::TinyStm($kv) => $body,
            AnyTxKv::Htm($kv) => $body,
            AnyTxKv::Rococo($kv) => $body,
            AnyTxKv::Hybrid($kv) => $body,
        }
    };
}

impl AnyTxKv {
    /// Builds the backend `cfg.backend` names (sized for the keyspace and
    /// worker pool) and starts the service on it.
    ///
    /// # Errors
    ///
    /// As [`TxKv::start`].
    pub fn start(cfg: TxKvConfig) -> Result<Self, TxKvError> {
        let tm_cfg = TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: cfg.worker_threads(),
        };
        match cfg.backend {
            BackendChoice::TinyStm => {
                TxKv::start(Arc::new(TinyStm::with_config(tm_cfg)), cfg).map(AnyTxKv::TinyStm)
            }
            BackendChoice::Htm => {
                TxKv::start(Arc::new(TsxHtm::with_config(tm_cfg)), cfg).map(AnyTxKv::Htm)
            }
            BackendChoice::Rococo => {
                TxKv::start(Arc::new(RococoTm::with_config(tm_cfg)), cfg).map(AnyTxKv::Rococo)
            }
            BackendChoice::Hybrid => {
                TxKv::start(Arc::new(HybridTm::with_config(tm_cfg)), cfg).map(AnyTxKv::Hybrid)
            }
        }
    }

    /// Submits a request without waiting (see [`TxKv::submit`]).
    ///
    /// # Errors
    ///
    /// As [`TxKv::submit`].
    pub fn submit(&self, req: Request) -> Result<PendingReply, TxKvError> {
        forward!(self, kv => kv.submit(req))
    }

    /// Submits a request and blocks for the response (see
    /// [`TxKv::call`]).
    ///
    /// # Errors
    ///
    /// As [`TxKv::call`].
    pub fn call(&self, req: Request) -> Result<Response, TxKvError> {
        forward!(self, kv => kv.call(req))
    }

    /// Submits a request and blocks for the response plus its commit
    /// sequence number (see [`TxKv::call_with_seq`]).
    ///
    /// # Errors
    ///
    /// As [`TxKv::call_with_seq`].
    pub fn call_with_seq(&self, req: Request) -> Result<(Response, Option<u64>), TxKvError> {
        forward!(self, kv => kv.call_with_seq(req))
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &TxKvConfig {
        forward!(self, kv => kv.config())
    }

    /// A live report (see [`TxKv::report`]).
    pub fn report(&self) -> TxKvReport {
        forward!(self, kv => kv.report())
    }

    /// Stops the service and returns the final report (see
    /// [`TxKv::shutdown`]).
    pub fn shutdown(self) -> TxKvReport {
        forward!(self, kv => kv.shutdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for b in BackendChoice::ALL {
            assert_eq!(BackendChoice::parse(b.name()), Some(b));
        }
        assert_eq!(BackendChoice::parse("nope"), None);
        assert_eq!(BackendChoice::default(), BackendChoice::Rococo);
    }

    #[test]
    fn every_choice_starts_and_serves() {
        for b in BackendChoice::ALL {
            let cfg = TxKvConfig {
                shards: 1,
                workers_per_shard: 2,
                keys: 64,
                backend: b,
                ..TxKvConfig::default()
            };
            let kv = AnyTxKv::start(cfg).unwrap();
            kv.call(Request::Put { key: 5, value: 40 }).unwrap();
            assert_eq!(
                kv.call(Request::Add { key: 5, delta: 2 }).unwrap(),
                Response::Value(42)
            );
            let report = kv.shutdown();
            let display = match b {
                BackendChoice::TinyStm => "TinySTM",
                BackendChoice::Htm => "TSX-HTM",
                BackendChoice::Rococo => "ROCoCoTM",
                BackendChoice::Hybrid => "hybrid",
            };
            assert_eq!(report.backend, display, "report carries the system name");
            assert_eq!(report.aggregate.committed, 2);
        }
    }
}
