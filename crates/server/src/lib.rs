//! TxKV — a sharded transactional key-value service on top of the
//! ROCoCoTM reproduction stack.
//!
//! Every request is executed as **one transaction** against the shared
//! [`TmHeap`](rococo_stm::TmHeap) through the generic
//! [`TmSystem`](rococo_stm::TmSystem) interface, so the same service runs
//! unchanged on every runtime in the tree: the TinySTM-style baseline, the
//! TSX-style HTM emulation, and ROCoCoTM with its shared FPGA validation
//! engine. The service is the repo's first subsystem on the "serve
//! traffic" axis of the roadmap: an instrumented front-end for studying
//! hybrid-TM concurrency costs under open-loop load rather than closed
//! STAMP phases.
//!
//! Architecture:
//!
//! * [`Request`] — the typed request model: point `Get`/`Put`,
//!   read-modify-write `Add`, multi-key `Transfer`, and snapshot
//!   `MultiGet`. Each maps keys into a contiguous key table on the TM
//!   heap and runs as a single transaction.
//! * [`TxKv`] — the service: requests are hash-routed to one of `shards`
//!   bounded queues, each drained by a pool of worker threads. When a
//!   queue backs up, admission control sheds the request with a typed
//!   [`TxKvError::Overloaded`] instead of queueing without bound.
//! * [`RetryPolicy`] — per-attempt retry with bounded exponential backoff
//!   plus jitter. Repeated aborts feed the backend's own escalation (on
//!   ROCoCoTM, the consecutive-abort counter eventually runs the attempt
//!   irrevocably, so starved requests still finish).
//! * [`ShardStats`] / [`TxKvReport`] — per-shard observability:
//!   commit/retry/shed counters, abort-cause breakdown (CPU stale read vs
//!   FPGA cycle vs window overflow vs HTM capacity/fallback), and
//!   log-bucketed latency histograms with p50/p99/p999.
//! * [`DurabilityConfig`] — optional write-ahead logging (the
//!   `rococo-wal` crate): committed write sets are appended to a
//!   group-commit redo log in serialization order and acknowledged after
//!   fsync; a checkpoint coordinator periodically quiesces commits,
//!   snapshots the key table, and truncates the log.
//!   [`TxKv::recover`] rebuilds the table from the newest checkpoint plus
//!   the log tail after a crash.
//!
//! # Example
//!
//! ```
//! use rococo_server::{Request, Response, TxKv, TxKvConfig};
//! use rococo_stm::{TinyStm, TmConfig};
//! use std::sync::Arc;
//!
//! let cfg = TxKvConfig { shards: 2, workers_per_shard: 1, ..TxKvConfig::default() };
//! let tm = TinyStm::with_config(TmConfig {
//!     heap_words: cfg.heap_words(),
//!     max_threads: cfg.worker_threads(),
//! });
//! let kv = TxKv::start(Arc::new(tm), cfg).unwrap();
//! kv.call(Request::Put { key: 7, value: 40 }).unwrap();
//! kv.call(Request::Add { key: 7, delta: 2 }).unwrap();
//! assert_eq!(kv.call(Request::Get { key: 7 }).unwrap(), Response::Value(42));
//! let report = kv.shutdown();
//! assert_eq!(report.aggregate.committed, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod histogram;
mod request;
mod retry;
mod service;
mod shard;
mod stats;

pub use backend::{AnyTxKv, BackendChoice};
pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use request::{Key, Request, Response, TxKvError};
pub use retry::RetryPolicy;
pub use service::{DurabilityConfig, PendingReply, TelemetryConfig, TxKv, TxKvConfig};
pub use stats::{ShardSnapshot, ShardStats, TxKvReport};
