//! Per-shard observability: commit/retry/shed counters, abort-cause
//! breakdowns, and latency histograms.

use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use rococo_stm::AbortKind;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live counters for one shard. All counters are relaxed atomics updated
/// by that shard's workers and the submitting clients.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Requests admitted to the shard queue.
    pub(crate) enqueued: AtomicU64,
    /// Requests shed by admission control (queue full).
    pub(crate) shed: AtomicU64,
    /// Requests whose commit the backend deferred to the synchronous
    /// path (irrevocable escalation, commit-gate contention, or a hybrid
    /// router hand-off) — completed inline, distinct from `shed`.
    pub(crate) deferred: AtomicU64,
    /// Requests whose transaction committed.
    pub(crate) committed: AtomicU64,
    /// Requests that failed (retries exhausted).
    pub(crate) failed: AtomicU64,
    /// Extra attempts beyond the first, across all requests.
    pub(crate) retries: AtomicU64,
    /// Requests whose transaction committed in memory but whose WAL
    /// append was never acknowledged (writer died).
    pub(crate) durability_lost: AtomicU64,
    /// Requests whose transaction panicked inside the backend (the
    /// worker caught it and kept serving).
    pub(crate) panics: AtomicU64,
    /// Run-to-completion batches pulled off the shard queue.
    pub(crate) batches: AtomicU64,
    /// Jobs across all batches (`batch_jobs / batches` = mean batch size
    /// actually achieved, as opposed to the configured ceiling).
    pub(crate) batch_jobs: AtomicU64,
    /// Aborts by cause, indexed by [`AbortKind::index`].
    pub(crate) aborts: [AtomicU64; AbortKind::COUNT],
    /// Request latency from enqueue to reply (includes queue wait).
    pub(crate) latency: LatencyHistogram,
}

impl ShardStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one abort of the given cause.
    pub fn record_abort(&self, kind: AbortKind) {
        self.aborts[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a request admitted to the shard queue.
    pub fn note_enqueued(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a request shed by admission control.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy.
    pub fn snapshot(&self) -> ShardSnapshot {
        let mut aborts = [0u64; AbortKind::COUNT];
        for (dst, src) in aborts.iter_mut().zip(self.aborts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        ShardSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            durability_lost: self.durability_lost.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_jobs: self.batch_jobs.load(Ordering::Relaxed),
            aborts,
            latency: self.latency.snapshot(),
        }
    }
}

/// A point-in-time copy of one shard's counters (or, for
/// [`TxKvReport::aggregate`], their sum across shards).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardSnapshot {
    /// Requests admitted to the shard queue.
    pub enqueued: u64,
    /// Requests shed by admission control (queue full).
    pub shed: u64,
    /// Requests whose commit the backend deferred to the synchronous
    /// path (irrevocable escalation, commit-gate contention, or a hybrid
    /// router hand-off) — completed inline, distinct from `shed`.
    pub deferred: u64,
    /// Requests whose transaction committed.
    pub committed: u64,
    /// Requests that failed (retries exhausted).
    pub failed: u64,
    /// Extra attempts beyond the first, across all requests.
    pub retries: u64,
    /// Requests that committed in memory but were never acknowledged by
    /// the write-ahead log (writer died).
    pub durability_lost: u64,
    /// Requests whose transaction panicked inside the backend.
    pub panics: u64,
    /// Run-to-completion batches pulled off the shard queue.
    pub batches: u64,
    /// Jobs across all batches.
    pub batch_jobs: u64,
    /// Aborts by cause, indexed by [`AbortKind::index`].
    pub aborts: [u64; AbortKind::COUNT],
    /// Request latency from enqueue to reply.
    pub latency: HistogramSnapshot,
}

impl ShardSnapshot {
    /// Total aborts across every cause.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// `(label, count)` pairs for every abort cause with a nonzero count.
    pub fn abort_breakdown(&self) -> Vec<(&'static str, u64)> {
        AbortKind::ALL
            .iter()
            .map(|k| (k.as_label(), self.aborts[k.index()]))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// Publishes this snapshot into a metrics registry under the unified
    /// `rococo_txkv_*` namespace, tagging every sample with `labels`
    /// (e.g. `[("shard", "2")]`, or empty for the aggregate).
    pub fn export_metrics(
        &self,
        reg: &mut rococo_telemetry::MetricsRegistry,
        labels: &[(&str, &str)],
    ) {
        reg.counter(
            "rococo_txkv_enqueued_total",
            "Requests admitted to the shard queue",
            labels,
            self.enqueued,
        );
        reg.counter(
            "rococo_txkv_shed_total",
            "Requests shed by admission control",
            labels,
            self.shed,
        );
        reg.counter(
            "rococo_txkv_deferred_total",
            "Requests whose commit the backend deferred to the synchronous path",
            labels,
            self.deferred,
        );
        reg.counter(
            "rococo_txkv_committed_total",
            "Requests whose transaction committed",
            labels,
            self.committed,
        );
        reg.counter(
            "rococo_txkv_failed_total",
            "Requests that failed (retries exhausted)",
            labels,
            self.failed,
        );
        reg.counter(
            "rococo_txkv_retries_total",
            "Extra attempts beyond the first",
            labels,
            self.retries,
        );
        reg.counter(
            "rococo_txkv_durability_lost_total",
            "Commits never acknowledged by the WAL",
            labels,
            self.durability_lost,
        );
        reg.counter(
            "rococo_txkv_panics_total",
            "Requests whose transaction panicked inside the backend",
            labels,
            self.panics,
        );
        reg.counter(
            "rococo_txkv_batches_total",
            "Run-to-completion batches pulled off the shard queue",
            labels,
            self.batches,
        );
        reg.counter(
            "rococo_txkv_batch_jobs_total",
            "Jobs executed across all batches",
            labels,
            self.batch_jobs,
        );
        for kind in AbortKind::ALL {
            let mut kv: Vec<(&str, &str)> = labels.to_vec();
            kv.push(("kind", kind.as_label()));
            reg.counter(
                "rococo_txkv_aborts_total",
                "Request-level transaction aborts by cause",
                &kv,
                self.aborts[kind.index()],
            );
        }
        // Coarse decade bounds: 1us, 10us, 100us, 1ms, 10ms, 100ms.
        const BOUNDS_NS: [u64; 6] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];
        reg.histogram(
            "rococo_txkv_latency_ns",
            "Request latency from enqueue to reply, nanoseconds",
            labels,
            rococo_telemetry::HistogramPoints {
                bounds: BOUNDS_NS.to_vec(),
                cumulative: self.latency.cumulative(&BOUNDS_NS),
                count: self.latency.count,
                sum: self.latency.sum_ns as f64,
            },
        );
    }

    /// Merges another snapshot into this one (used to build the
    /// cross-shard aggregate; quantiles combine conservatively).
    pub fn merge(&mut self, other: &ShardSnapshot) {
        self.enqueued += other.enqueued;
        self.shed += other.shed;
        self.deferred += other.deferred;
        self.committed += other.committed;
        self.failed += other.failed;
        self.retries += other.retries;
        self.durability_lost += other.durability_lost;
        self.panics += other.panics;
        self.batches += other.batches;
        self.batch_jobs += other.batch_jobs;
        for (dst, src) in self.aborts.iter_mut().zip(other.aborts.iter()) {
            *dst += src;
        }
        self.latency = self.latency.merged_with(&other.latency);
    }
}

/// The service-wide report returned by [`TxKv::report`] and
/// [`TxKv::shutdown`].
///
/// [`TxKv::report`]: crate::TxKv::report
/// [`TxKv::shutdown`]: crate::TxKv::shutdown
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TxKvReport {
    /// The backend's [`TmSystem::name`](rococo_stm::TmSystem::name).
    pub backend: &'static str,
    /// One snapshot per shard, in shard order.
    pub per_shard: Vec<ShardSnapshot>,
    /// The sum of all shard snapshots.
    pub aggregate: ShardSnapshot,
    /// Counters from the backend's fault-injection layer, when the
    /// backend runs one (see
    /// [`TmSystem::injected_faults`](rococo_stm::TmSystem::injected_faults)).
    /// `None` for backends without an injection layer.
    pub injected_faults: Option<rococo_fpga::FaultSnapshot>,
    /// Write-ahead-log counters, when the service runs in durable mode
    /// (fsync latency and group-commit batch-size distributions live
    /// here). `None` for in-memory services.
    pub wal: Option<rococo_wal::WalSnapshot>,
    /// Wall-clock time the service has been (or was) running.
    pub elapsed: Duration,
}

impl TxKvReport {
    /// Publishes the whole report into a metrics registry: the aggregate
    /// under `rococo_txkv_*`, each shard under a `shard` label, and the
    /// fault-injection and WAL snapshots when present. The scraper adds
    /// backend (`rococo_tm_*`) and FPGA (`rococo_fpga_*`) metrics itself,
    /// since the report does not carry them.
    pub fn export_metrics(&self, reg: &mut rococo_telemetry::MetricsRegistry) {
        self.aggregate.export_metrics(reg, &[]);
        for (i, shard) in self.per_shard.iter().enumerate() {
            let label = i.to_string();
            shard.export_metrics(reg, &[("shard", &label)]);
        }
        if let Some(faults) = &self.injected_faults {
            faults.export_metrics(reg);
        }
        if let Some(wal) = &self.wal {
            wal.export_metrics(reg);
        }
        reg.gauge(
            "rococo_txkv_uptime_seconds",
            "Wall-clock time the service has been running",
            &[],
            self.elapsed.as_secs_f64(),
        );
    }

    /// Committed requests per second over [`TxKvReport::elapsed`].
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.aggregate.committed as f64 / secs
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for TxKvReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = &self.aggregate;
        writeln!(
            f,
            "txkv[{}] {} shards, {:.2}s: {} committed ({:.0} req/s), {} shed, {} deferred, \
             {} failed, {} retries",
            self.backend,
            self.per_shard.len(),
            self.elapsed.as_secs_f64(),
            a.committed,
            self.throughput(),
            a.shed,
            a.deferred,
            a.failed,
            a.retries,
        )?;
        writeln!(
            f,
            "  latency p50={} p99={} p999={} max={} (n={})",
            fmt_ns(a.latency.p50_ns),
            fmt_ns(a.latency.p99_ns),
            fmt_ns(a.latency.p999_ns),
            fmt_ns(a.latency.max_ns),
            a.latency.count,
        )?;
        if a.total_aborts() > 0 {
            write!(f, "  aborts:")?;
            for (label, n) in a.abort_breakdown() {
                write!(f, " {label}={n}")?;
            }
            writeln!(f)?;
        }
        if let Some(fs) = &self.injected_faults {
            if fs.total() > 0 {
                writeln!(
                    f,
                    "  injected faults: delayed={} reordered={} spurious-cycle={} \
                     spurious-window={} pauses={}",
                    fs.delayed, fs.reordered, fs.spurious_cycle, fs.spurious_window, fs.pauses,
                )?;
            }
        }
        if let Some(w) = &self.wal {
            writeln!(
                f,
                "  wal: {} records in {} batches (mean batch {:.1}, p99<={}), \
                 {} fsyncs (p99<={}), {} checkpoints, {} lost",
                w.acked_records,
                w.batches,
                w.mean_batch(),
                w.batch_sizes.quantile_upper(0.99),
                w.fsyncs,
                fmt_ns(w.fsync_ns.quantile_upper(0.99)),
                w.checkpoints,
                a.durability_lost,
            )?;
        }
        for (i, s) in self.per_shard.iter().enumerate() {
            writeln!(
                f,
                "  shard {i}: committed={} shed={} failed={} retries={} aborts={} p99={}",
                s.committed,
                s.shed,
                s.failed,
                s.retries,
                s.total_aborts(),
                fmt_ns(s.latency.p99_ns),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_abort_causes() {
        let s = ShardStats::new();
        s.record_abort(AbortKind::Conflict);
        s.record_abort(AbortKind::Conflict);
        s.record_abort(AbortKind::FpgaWindow);
        let snap = s.snapshot();
        assert_eq!(snap.total_aborts(), 3);
        assert_eq!(
            snap.abort_breakdown(),
            vec![("cpu-stale-read", 2), ("fpga-window", 1)]
        );
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = ShardSnapshot {
            committed: 10,
            shed: 1,
            aborts: [1, 0, 0, 0, 0, 0, 0],
            ..Default::default()
        };
        let b = ShardSnapshot {
            committed: 5,
            failed: 2,
            aborts: [0, 3, 0, 0, 0, 0, 0],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.committed, 15);
        assert_eq!(a.shed, 1);
        assert_eq!(a.failed, 2);
        assert_eq!(a.total_aborts(), 4);
    }

    #[test]
    fn report_renders() {
        let mut report = TxKvReport {
            backend: "tinystm",
            per_shard: vec![ShardSnapshot::default()],
            aggregate: ShardSnapshot {
                committed: 1000,
                aborts: [5, 0, 0, 0, 0, 0, 0],
                ..Default::default()
            },
            injected_faults: None,
            wal: None,
            elapsed: Duration::from_secs(2),
        };
        report.aggregate.latency.p99_ns = 1_500;
        let text = report.to_string();
        assert!(text.contains("500 req/s"), "{text}");
        assert!(text.contains("cpu-stale-read=5"), "{text}");
        assert!(text.contains("1.5us"), "{text}");
        assert!(!text.contains("injected faults"), "{text}");
    }

    #[test]
    fn report_renders_injected_faults_when_present() {
        let report = TxKvReport {
            backend: "rococotm",
            injected_faults: Some(rococo_fpga::FaultSnapshot {
                delayed: 3,
                spurious_cycle: 2,
                ..Default::default()
            }),
            ..Default::default()
        };
        let text = report.to_string();
        assert!(text.contains("injected faults"), "{text}");
        assert!(text.contains("delayed=3"), "{text}");
        assert!(text.contains("spurious-cycle=2"), "{text}");
    }
}
