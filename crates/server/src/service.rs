//! The TxKV service front-end: configuration, admission, routing,
//! lifecycle.

use crate::request::{Request, Response, TxKvError};
use crate::retry::RetryPolicy;
use crate::shard::{run_worker, Job};
use crate::stats::{ShardSnapshot, ShardStats, TxKvReport};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use rococo_stm::{Addr, TmSystem};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Service configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxKvConfig {
    /// Number of shards (request queues). Requests are hash-routed by
    /// primary key; sharding partitions the queueing and the statistics,
    /// not the data — all shards execute against one shared TM heap, so
    /// cross-shard transfers are ordinary transactions.
    pub shards: usize,
    /// Worker threads draining each shard's queue.
    pub workers_per_shard: usize,
    /// Bounded depth of each shard queue. When a queue is full, new
    /// requests are shed with [`TxKvError::Overloaded`] instead of
    /// queueing without bound.
    pub queue_capacity: usize,
    /// Keyspace size: valid keys are `0..keys`, each one word on the TM
    /// heap.
    pub keys: u64,
    /// Retry policy applied to every request.
    pub retry: RetryPolicy,
}

impl Default for TxKvConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            workers_per_shard: 2,
            queue_capacity: 128,
            keys: 1 << 16,
            retry: RetryPolicy::default(),
        }
    }
}

impl TxKvConfig {
    /// Heap words the backend must be built with to hold the key table
    /// (plus slack for future service metadata).
    pub fn heap_words(&self) -> usize {
        self.keys as usize + 64
    }

    /// Total worker threads the service will start — the backend's
    /// `max_threads` must be at least this.
    pub fn worker_threads(&self) -> usize {
        self.shards * self.workers_per_shard
    }
}

/// A submitted request's future reply. Obtain via [`TxKv::submit`]; wait
/// with [`PendingReply::wait`].
#[derive(Debug)]
pub struct PendingReply {
    rx: Receiver<Result<Response, TxKvError>>,
}

impl PendingReply {
    /// Blocks until the shard worker answers.
    ///
    /// # Errors
    ///
    /// Propagates the worker's [`TxKvError`]; returns
    /// [`TxKvError::ShuttingDown`] if the service stopped before
    /// answering.
    pub fn wait(self) -> Result<Response, TxKvError> {
        self.rx.recv().unwrap_or(Err(TxKvError::ShuttingDown))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Response, TxKvError>> {
        self.rx.try_recv().ok()
    }
}

/// The TxKV service: sharded queues and worker pools over one shared
/// transactional heap. See the crate docs for the architecture.
#[derive(Debug)]
pub struct TxKv<S: TmSystem + 'static> {
    system: Arc<S>,
    cfg: TxKvConfig,
    table: Addr,
    senders: Vec<Sender<Job>>,
    stats: Vec<Arc<ShardStats>>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
}

impl<S: TmSystem + 'static> TxKv<S> {
    /// Starts the service: allocates the key table on the backend's heap
    /// and spawns `shards * workers_per_shard` worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`TxKvError::InvalidConfig`] for a zero-sized pool or a
    /// heap too small for the key table.
    pub fn start(system: Arc<S>, cfg: TxKvConfig) -> Result<Self, TxKvError> {
        if cfg.shards == 0 || cfg.workers_per_shard == 0 {
            return Err(TxKvError::InvalidConfig {
                reason: "shards and workers_per_shard must be at least 1",
            });
        }
        if cfg.keys == 0 {
            return Err(TxKvError::InvalidConfig {
                reason: "keyspace must hold at least one key",
            });
        }
        if cfg.queue_capacity == 0 {
            return Err(TxKvError::InvalidConfig {
                reason: "queue_capacity must be at least 1",
            });
        }
        let heap = system.heap();
        if heap.len() - heap.allocated() < cfg.keys as usize {
            return Err(TxKvError::InvalidConfig {
                reason:
                    "backend heap too small for the key table (size it with TxKvConfig::heap_words)",
            });
        }
        let table: Addr = heap.alloc(cfg.keys as usize);

        let mut senders = Vec::with_capacity(cfg.shards);
        let mut stats = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.worker_threads());
        for shard in 0..cfg.shards {
            let (tx, rx) = bounded::<Job>(cfg.queue_capacity);
            let shard_stats = Arc::new(ShardStats::new());
            for w in 0..cfg.workers_per_shard {
                let thread_id = shard * cfg.workers_per_shard + w;
                let system = Arc::clone(&system);
                let stats = Arc::clone(&shard_stats);
                let rx = rx.clone();
                let policy = cfg.retry;
                let handle = std::thread::Builder::new()
                    .name(format!("txkv-{shard}-{w}"))
                    .spawn(move || run_worker(system, table, thread_id, policy, stats, rx))
                    .expect("failed to spawn txkv worker");
                workers.push(handle);
            }
            senders.push(tx);
            stats.push(shard_stats);
        }
        Ok(Self {
            system,
            cfg,
            table,
            senders,
            stats,
            workers,
            started: Instant::now(),
        })
    }

    /// The backend this service runs on.
    pub fn backend(&self) -> &Arc<S> {
        &self.system
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &TxKvConfig {
        &self.cfg
    }

    /// Heap address of the key table (key `k` lives at `table() + k`).
    /// Exposed so harnesses can bulk-initialise the keyspace with
    /// [`TmHeap::store_direct`](rococo_stm::TmHeap::store_direct) before
    /// opening traffic; direct stores are only safe while no transactions
    /// run.
    pub fn table(&self) -> Addr {
        self.table
    }

    /// The shard a key routes to (Fibonacci hash of the primary key).
    pub fn shard_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.cfg.shards
    }

    /// Submits a request without waiting for the reply (open-loop
    /// clients submit many, then drain the [`PendingReply`]s).
    ///
    /// # Errors
    ///
    /// * [`TxKvError::TooManyKeys`] / [`TxKvError::KeyOutOfRange`] —
    ///   invalid request, rejected before touching a queue.
    /// * [`TxKvError::Overloaded`] — the target shard's queue is full;
    ///   the request was shed.
    /// * [`TxKvError::ShuttingDown`] — the service stopped.
    pub fn submit(&self, req: Request) -> Result<PendingReply, TxKvError> {
        if let Request::MultiGet { keys } = &req {
            if keys.len() > Request::MAX_MULTI_GET {
                return Err(TxKvError::TooManyKeys {
                    requested: keys.len(),
                });
            }
        }
        let mut bad_key = None;
        req.for_each_key(|k| {
            if k >= self.cfg.keys && bad_key.is_none() {
                bad_key = Some(k);
            }
        });
        if let Some(key) = bad_key {
            return Err(TxKvError::KeyOutOfRange {
                key,
                keys: self.cfg.keys,
            });
        }

        let shard = self.shard_of(req.primary_key());
        let (reply_tx, reply_rx) = bounded(1);
        let job = Job {
            req,
            enqueued_at: Instant::now(),
            reply: reply_tx,
        };
        match self.senders[shard].try_send(job) {
            Ok(()) => {
                self.stats[shard].note_enqueued();
                Ok(PendingReply { rx: reply_rx })
            }
            Err(TrySendError::Full(_)) => {
                self.stats[shard].note_shed();
                Err(TxKvError::Overloaded { shard })
            }
            Err(TrySendError::Disconnected(_)) => Err(TxKvError::ShuttingDown),
        }
    }

    /// Submits a request and blocks for the response (closed-loop
    /// clients).
    ///
    /// # Errors
    ///
    /// Everything [`TxKv::submit`] returns, plus the worker-side errors
    /// ([`TxKvError::RetriesExhausted`]).
    pub fn call(&self, req: Request) -> Result<Response, TxKvError> {
        self.submit(req)?.wait()
    }

    /// A live report (counters keep moving while it is taken).
    pub fn report(&self) -> TxKvReport {
        self.build_report()
    }

    /// Stops the service: closes every queue, joins the workers (they
    /// finish queued requests first), and returns the final report.
    pub fn shutdown(mut self) -> TxKvReport {
        self.stop_and_join();
        self.build_report()
    }

    fn stop_and_join(&mut self) {
        self.senders.clear(); // workers' recv() errors out once queues drain
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn build_report(&self) -> TxKvReport {
        let per_shard: Vec<ShardSnapshot> = self.stats.iter().map(|s| s.snapshot()).collect();
        let mut aggregate = ShardSnapshot::default();
        for s in &per_shard {
            aggregate.merge(s);
        }
        TxKvReport {
            backend: self.system.name(),
            per_shard,
            aggregate,
            injected_faults: self.system.injected_faults(),
            elapsed: self.started.elapsed(),
        }
    }
}

impl<S: TmSystem + 'static> Drop for TxKv<S> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{RococoTm, TinyStm, TmConfig, TsxHtm};

    fn tiny(cfg: &TxKvConfig) -> Arc<TinyStm> {
        Arc::new(TinyStm::with_config(TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: cfg.worker_threads(),
        }))
    }

    #[test]
    fn basic_requests_roundtrip() {
        let cfg = TxKvConfig {
            shards: 2,
            workers_per_shard: 1,
            keys: 128,
            ..TxKvConfig::default()
        };
        let kv = TxKv::start(tiny(&cfg), cfg).unwrap();
        assert_eq!(
            kv.call(Request::Put { key: 1, value: 11 }).unwrap(),
            Response::Done
        );
        assert_eq!(
            kv.call(Request::Add { key: 1, delta: 4 }).unwrap(),
            Response::Value(15)
        );
        assert_eq!(
            kv.call(Request::MultiGet { keys: vec![0, 1] }).unwrap(),
            Response::Values(vec![0, 15])
        );
        let report = kv.shutdown();
        assert_eq!(report.aggregate.committed, 3);
        assert_eq!(report.aggregate.failed, 0);
        assert_eq!(report.aggregate.latency.count, 3);
    }

    #[test]
    fn works_on_every_backend() {
        let cfg = TxKvConfig {
            shards: 2,
            workers_per_shard: 1,
            keys: 64,
            ..TxKvConfig::default()
        };
        let tm_cfg = TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: cfg.worker_threads(),
        };
        fn smoke<S: TmSystem + 'static>(system: Arc<S>, cfg: TxKvConfig) {
            let kv = TxKv::start(system, cfg).unwrap();
            kv.call(Request::Put { key: 9, value: 2 }).unwrap();
            assert_eq!(
                kv.call(Request::Get { key: 9 }).unwrap(),
                Response::Value(2)
            );
            assert_eq!(kv.shutdown().aggregate.committed, 2);
        }
        smoke(Arc::new(TinyStm::with_config(tm_cfg)), cfg);
        smoke(Arc::new(TsxHtm::with_config(tm_cfg)), cfg);
        smoke(Arc::new(RococoTm::with_config(tm_cfg)), cfg);
    }

    #[test]
    fn rejects_invalid_requests_up_front() {
        let cfg = TxKvConfig {
            shards: 1,
            workers_per_shard: 1,
            keys: 16,
            ..TxKvConfig::default()
        };
        let kv = TxKv::start(tiny(&cfg), cfg).unwrap();
        assert_eq!(
            kv.call(Request::Get { key: 16 }),
            Err(TxKvError::KeyOutOfRange { key: 16, keys: 16 })
        );
        assert_eq!(
            kv.call(Request::Transfer {
                from: 3,
                to: 99,
                amount: 1
            }),
            Err(TxKvError::KeyOutOfRange { key: 99, keys: 16 })
        );
        let big = vec![0u64; Request::MAX_MULTI_GET + 1];
        assert_eq!(
            kv.call(Request::MultiGet { keys: big }),
            Err(TxKvError::TooManyKeys {
                requested: Request::MAX_MULTI_GET + 1
            })
        );
        // Service still healthy afterwards.
        assert_eq!(
            kv.call(Request::Get { key: 0 }).unwrap(),
            Response::Value(0)
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = TxKvConfig {
            shards: 0,
            ..TxKvConfig::default()
        };
        let tm = Arc::new(TinyStm::with_config(TmConfig {
            heap_words: 1024,
            max_threads: 1,
        }));
        assert!(matches!(
            TxKv::start(Arc::clone(&tm), cfg),
            Err(TxKvError::InvalidConfig { .. })
        ));
        // Heap too small for the table.
        let cfg = TxKvConfig {
            shards: 1,
            workers_per_shard: 1,
            keys: 1 << 20,
            ..TxKvConfig::default()
        };
        assert!(matches!(
            TxKv::start(tm, cfg),
            Err(TxKvError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let cfg = TxKvConfig {
            shards: 2,
            workers_per_shard: 2,
            keys: 32,
            ..TxKvConfig::default()
        };
        let kv = TxKv::start(tiny(&cfg), cfg).unwrap();
        kv.call(Request::Put { key: 0, value: 1 }).unwrap();
        drop(kv); // must not hang or leak threads
    }
}
