//! The TxKV service front-end: configuration, admission, routing,
//! lifecycle, and (in durable mode) recovery and checkpointing.

use crate::request::{Request, Response, TxKvError};
use crate::retry::RetryPolicy;
use crate::shard::{run_worker, Job, WorkerCtx, WorkerWal};
use crate::stats::{ShardSnapshot, ShardStats, TxKvReport};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::RwLock;
use rococo_stm::{Addr, TmSystem};
use rococo_wal::{FsyncPolicy, KillSwitch, RecoveryReport, Wal, WalConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Durable-mode configuration: where the write-ahead log lives and how
/// it acknowledges.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory for the log and checkpoint files (created if missing).
    pub dir: PathBuf,
    /// When an append is acknowledged relative to fsync (see
    /// [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Checkpoint (snapshot + log truncation) after this many logged
    /// transactions; `0` disables automatic checkpoints
    /// ([`TxKv::checkpoint`] still works).
    pub checkpoint_every: u64,
    /// Armed crash point for chaos testing; `None` in production.
    pub kill: Option<Arc<KillSwitch>>,
}

impl DurabilityConfig {
    /// Durable defaults for `dir`: fsync-per-batch, checkpoint every
    /// 100k transactions.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 100_000,
            kill: None,
        }
    }
}

/// Telemetry configuration: periodic metric snapshots written to a
/// directory as `metrics.prom` (Prometheus text exposition) and
/// `metrics.json`. Files are written atomically (temp + rename), so a
/// scraper tailing the directory never sees a torn snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Directory the snapshots land in (created if missing).
    pub dir: PathBuf,
    /// How often the scraper thread refreshes the files. A final scrape
    /// always runs at shutdown regardless of the interval.
    pub scrape_interval: Duration,
}

impl TelemetryConfig {
    /// Telemetry into `dir` at a 250 ms cadence.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            scrape_interval: Duration::from_millis(250),
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TxKvConfig {
    /// Which TM runtime executes requests. Only consulted by
    /// [`AnyTxKv::start`](crate::AnyTxKv::start), which constructs the
    /// backend from configuration; the generic [`TxKv::start`] takes the
    /// already-built system and ignores this field.
    pub backend: crate::BackendChoice,
    /// Number of shards (request queues). Requests are hash-routed by
    /// primary key; sharding partitions the queueing and the statistics,
    /// not the data — all shards execute against one shared TM heap, so
    /// cross-shard transfers are ordinary transactions.
    pub shards: usize,
    /// Worker threads draining each shard's queue.
    pub workers_per_shard: usize,
    /// Bounded depth of each shard queue. When a queue is full, new
    /// requests are shed with [`TxKvError::Overloaded`] instead of
    /// queueing without bound.
    pub queue_capacity: usize,
    /// Keyspace size: valid keys are `0..keys`, each one word on the TM
    /// heap.
    pub keys: u64,
    /// Retry policy applied to every request.
    pub retry: RetryPolicy,
    /// Ceiling on the number of jobs a worker pulls off its shard queue
    /// per run-to-completion batch. Each batch executes every job to its
    /// validation point, submits all the commits asynchronously, and
    /// completes them in verdict order, amortising the validator
    /// round-trip across the batch. `1` restores the old
    /// one-request-at-a-time loop (a lone queued request is never
    /// delayed either way — the batch fill is non-blocking).
    pub max_batch: usize,
    /// Write-ahead logging; `None` runs the service in memory (a crash
    /// loses everything, as before this field existed).
    pub durability: Option<DurabilityConfig>,
    /// Periodic metric snapshots; `None` disables the scraper thread.
    pub telemetry: Option<TelemetryConfig>,
}

impl PartialEq for DurabilityConfig {
    fn eq(&self, other: &Self) -> bool {
        // KillSwitch carries no identity worth comparing.
        self.dir == other.dir
            && self.fsync == other.fsync
            && self.checkpoint_every == other.checkpoint_every
    }
}

impl Default for TxKvConfig {
    fn default() -> Self {
        Self {
            backend: crate::BackendChoice::default(),
            shards: 4,
            workers_per_shard: 2,
            queue_capacity: 128,
            keys: 1 << 16,
            retry: RetryPolicy::default(),
            max_batch: 16,
            durability: None,
            telemetry: None,
        }
    }
}

impl TxKvConfig {
    /// Heap words the backend must be built with to hold the key table
    /// (plus slack for future service metadata).
    pub fn heap_words(&self) -> usize {
        self.keys as usize + 64
    }

    /// Total worker threads the service will start — the backend's
    /// `max_threads` must be at least this.
    pub fn worker_threads(&self) -> usize {
        self.shards * self.workers_per_shard
    }
}

/// A submitted request's future reply. Obtain via [`TxKv::submit`]; wait
/// with [`PendingReply::wait`].
#[derive(Debug)]
pub struct PendingReply {
    rx: Receiver<Result<(Response, Option<u64>), TxKvError>>,
}

impl PendingReply {
    /// Blocks until the shard worker answers.
    ///
    /// # Errors
    ///
    /// Propagates the worker's [`TxKvError`]; returns
    /// [`TxKvError::ShuttingDown`] if the service stopped before
    /// answering.
    pub fn wait(self) -> Result<Response, TxKvError> {
        self.wait_with_seq().map(|(resp, _)| resp)
    }

    /// Blocks until the shard worker answers, returning the commit
    /// sequence number alongside the response. `None` for read-only
    /// requests (they commit without consuming a sequence number). In
    /// durable mode the sequence is the on-disk (rebased) one — the
    /// number the WAL logged and the replication stream ships, so it can
    /// be used directly as a read-your-writes watermark against a
    /// follower.
    ///
    /// # Errors
    ///
    /// As [`PendingReply::wait`].
    pub fn wait_with_seq(self) -> Result<(Response, Option<u64>), TxKvError> {
        self.rx.recv().unwrap_or(Err(TxKvError::ShuttingDown))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Response, TxKvError>> {
        self.rx.try_recv().ok().map(|r| r.map(|(resp, _)| resp))
    }
}

/// The TxKV service: sharded queues and worker pools over one shared
/// transactional heap. See the crate docs for the architecture.
#[derive(Debug)]
pub struct TxKv<S: TmSystem + 'static> {
    system: Arc<S>,
    cfg: TxKvConfig,
    table: Addr,
    senders: Vec<Sender<Job>>,
    stats: Vec<Arc<ShardStats>>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
    /// Durable-mode state: the WAL opener handle (joins the writer on
    /// drop) and the commit pause gate the checkpoint coordinator uses
    /// to quiesce.
    wal: Option<Wal>,
    pause: Arc<RwLock<()>>,
    ckpt_stop: Arc<AtomicBool>,
    ckpt_thread: Option<JoinHandle<()>>,
    /// WAL counters captured at shutdown, so the final report still
    /// carries them after the writer has been joined.
    final_wal: Option<rococo_wal::WalSnapshot>,
    tlm_stop: Arc<AtomicBool>,
    tlm_thread: Option<JoinHandle<()>>,
}

/// Writes `contents` to `dir/name` atomically (temp file + rename), so
/// concurrent readers never observe a torn snapshot.
fn write_atomic(dir: &std::path::Path, name: &str, contents: &str) -> std::io::Result<()> {
    let tmp = dir.join(format!(".{name}.tmp"));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, dir.join(name))
}

/// One telemetry scrape: gathers every subsystem's counters into a
/// registry and rewrites `metrics.prom` / `metrics.json` in `dir`.
fn scrape_metrics<S: TmSystem + ?Sized>(
    system: &S,
    stats: &[Arc<ShardStats>],
    wal: Option<&Wal>,
    elapsed: Duration,
    dir: &std::path::Path,
) {
    let per_shard: Vec<ShardSnapshot> = stats.iter().map(|s| s.snapshot()).collect();
    let mut aggregate = ShardSnapshot::default();
    for s in &per_shard {
        aggregate.merge(s);
    }
    let report = TxKvReport {
        backend: system.name(),
        per_shard,
        aggregate,
        injected_faults: system.injected_faults(),
        wal: wal.map(|w| w.stats()),
        elapsed,
    };
    let mut reg = rococo_telemetry::MetricsRegistry::new();
    report.export_metrics(&mut reg);
    // `stats_snapshot` (not `stats().snapshot()`): a routing backend
    // merges the counters only its wrapped engines track into one
    // snapshot, with starts/commits/aborts counted exactly once at the
    // outer layer — so `rococo_tm_*` never double-counts a commit.
    system.stats_snapshot().export_metrics(&mut reg);
    if let Some(engine) = system.engine_stats() {
        engine.export_metrics(&mut reg);
    }
    // Backend-specific families (e.g. the hybrid's `rococo_sched_*`).
    system.export_extra_metrics(&mut reg);
    let _ = std::fs::create_dir_all(dir);
    let _ = write_atomic(dir, "metrics.prom", &reg.render_prometheus());
    let _ = write_atomic(dir, "metrics.json", &reg.render_json());
}

impl<S: TmSystem + 'static> TxKv<S> {
    /// Starts the service: allocates the key table on the backend's heap
    /// and spawns `shards * workers_per_shard` worker threads. With
    /// `cfg.durability` set this also recovers the WAL directory first —
    /// [`TxKv::recover`] is the same call but hands back the recovery
    /// report.
    ///
    /// # Errors
    ///
    /// Returns [`TxKvError::InvalidConfig`] for a zero-sized pool, a
    /// heap too small for the key table, a backend that has already run
    /// transactions (recovery must rebuild onto a fresh heap), or a WAL
    /// directory that cannot be opened.
    pub fn start(system: Arc<S>, cfg: TxKvConfig) -> Result<Self, TxKvError> {
        Self::recover(system, cfg).map(|(kv, _)| kv)
    }

    /// Starts the service, recovering durable state when
    /// `cfg.durability` is set: loads the newest valid checkpoint,
    /// replays the log tail in commit order (torn tail truncated), seeds
    /// the key table, and resumes logging where the disk left off. The
    /// report says what recovery found; without durability it is empty.
    ///
    /// # Errors
    ///
    /// As [`TxKv::start`].
    pub fn recover(system: Arc<S>, cfg: TxKvConfig) -> Result<(Self, RecoveryReport), TxKvError> {
        if cfg.shards == 0 || cfg.workers_per_shard == 0 {
            return Err(TxKvError::InvalidConfig {
                reason: "shards and workers_per_shard must be at least 1",
            });
        }
        if cfg.keys == 0 {
            return Err(TxKvError::InvalidConfig {
                reason: "keyspace must hold at least one key",
            });
        }
        if cfg.queue_capacity == 0 {
            return Err(TxKvError::InvalidConfig {
                reason: "queue_capacity must be at least 1",
            });
        }
        let heap = system.heap();
        if heap.len() - heap.allocated() < cfg.keys as usize {
            return Err(TxKvError::InvalidConfig {
                reason:
                    "backend heap too small for the key table (size it with TxKvConfig::heap_words)",
            });
        }
        let table: Addr = heap.alloc(cfg.keys as usize);

        // Durable mode: recover the directory and seed the table before
        // any worker can run a transaction.
        let mut wal = None;
        let mut base_seq = 0u64;
        let mut report = RecoveryReport::default();
        if let Some(dur) = &cfg.durability {
            // The durable sequence must restart at 0 for the rebased
            // on-disk sequence (base + tm_seq) to stay dense — a backend
            // that already committed transactions has burnt sequence
            // numbers we never logged.
            if system.stats().snapshot().commits > 0 {
                return Err(TxKvError::InvalidConfig {
                    reason: "durable recovery requires a freshly constructed backend",
                });
            }
            let wal_cfg = WalConfig {
                dir: dur.dir.clone(),
                fsync: dur.fsync,
                kill: dur.kill.clone(),
            };
            let (w, recovered) = Wal::open(wal_cfg).map_err(|_| TxKvError::InvalidConfig {
                reason: "could not open the WAL directory",
            })?;
            if recovered.values.len() > cfg.keys as usize {
                return Err(TxKvError::InvalidConfig {
                    reason: "checkpoint holds more keys than the configured keyspace",
                });
            }
            // Checkpoint image first, then the replayed log tail: direct
            // stores are safe here because no transactions run yet.
            for (k, &v) in recovered.values.iter().enumerate() {
                heap.store_direct(table + k, v);
            }
            for rec in &recovered.records {
                for &(k, v) in &rec.writes {
                    if k < cfg.keys {
                        heap.store_direct(table + k as Addr, v);
                    }
                }
            }
            base_seq = recovered.next_seq;
            report = recovered.report;
            wal = Some(w);
        }

        let pause = Arc::new(RwLock::new(()));
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut stats = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.worker_threads());
        for shard in 0..cfg.shards {
            let (tx, rx) = bounded::<Job>(cfg.queue_capacity);
            let shard_stats = Arc::new(ShardStats::new());
            for w in 0..cfg.workers_per_shard {
                let ctx = WorkerCtx {
                    system: Arc::clone(&system),
                    table,
                    thread_id: shard * cfg.workers_per_shard + w,
                    policy: cfg.retry,
                    stats: Arc::clone(&shard_stats),
                    rx: rx.clone(),
                    pause: Arc::clone(&pause),
                    wal: wal.as_ref().map(|w| WorkerWal {
                        wal: w.client(),
                        base_seq,
                    }),
                    max_batch: cfg.max_batch,
                };
                let handle = std::thread::Builder::new()
                    .name(format!("txkv-{shard}-{w}"))
                    .spawn(move || run_worker(ctx))
                    .expect("failed to spawn txkv worker");
                workers.push(handle);
            }
            senders.push(tx);
            stats.push(shard_stats);
        }

        // The checkpoint coordinator: quiesce, snapshot, truncate.
        let ckpt_stop = Arc::new(AtomicBool::new(false));
        let mut ckpt_thread = None;
        if let (Some(w), Some(dur)) = (&wal, &cfg.durability) {
            if dur.checkpoint_every > 0 {
                let every = dur.checkpoint_every;
                let wal = w.client();
                let system = Arc::clone(&system);
                let pause = Arc::clone(&pause);
                let stop = Arc::clone(&ckpt_stop);
                let keys = cfg.keys;
                ckpt_thread = Some(
                    std::thread::Builder::new()
                        .name("txkv-ckpt".into())
                        .spawn(move || {
                            let mut last = 0u64;
                            while !stop.load(Ordering::SeqCst) {
                                std::thread::sleep(Duration::from_millis(2));
                                let acked = wal.stats().acked_records;
                                if acked.saturating_sub(last) < every || wal.is_dead() {
                                    continue;
                                }
                                // Write-lock the pause gate: every
                                // in-flight job finishes (including its
                                // WAL ack), so no sequence number is
                                // fetched but unlogged while we snapshot.
                                let quiesced = pause.write();
                                let heap = system.heap();
                                let values: Vec<u64> = (0..keys as usize)
                                    .map(|k| heap.load_direct(table + k))
                                    .collect();
                                let _ = wal.checkpoint(values);
                                drop(quiesced);
                                last = wal.stats().acked_records;
                            }
                        })
                        .expect("failed to spawn txkv checkpoint coordinator"),
                );
            }
        }

        // The telemetry scraper: periodically rewrite the metric
        // snapshot files until shutdown, then scrape one last time so
        // the on-disk artifacts cover the whole run.
        let started = Instant::now();
        let tlm_stop = Arc::new(AtomicBool::new(false));
        let mut tlm_thread = None;
        if let Some(tlm) = &cfg.telemetry {
            let dir = tlm.dir.clone();
            let interval = tlm.scrape_interval;
            let system = Arc::clone(&system);
            let stats: Vec<Arc<ShardStats>> = stats.iter().map(Arc::clone).collect();
            let wal = wal.as_ref().map(|w| w.client());
            let stop = Arc::clone(&tlm_stop);
            tlm_thread = Some(
                std::thread::Builder::new()
                    .name("txkv-telemetry".into())
                    .spawn(move || {
                        loop {
                            scrape_metrics(&*system, &stats, wal.as_ref(), started.elapsed(), &dir);
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            // Sleep in short slices so shutdown's final
                            // scrape is not delayed a whole interval.
                            let deadline = Instant::now() + interval;
                            while Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
                                std::thread::sleep(Duration::from_millis(5).min(interval));
                            }
                        }
                        rococo_telemetry::flush_thread();
                    })
                    .expect("failed to spawn txkv telemetry scraper"),
            );
        }

        Ok((
            Self {
                system,
                cfg,
                table,
                senders,
                stats,
                workers,
                started,
                wal,
                pause,
                ckpt_stop,
                ckpt_thread,
                final_wal: None,
                tlm_stop,
                tlm_thread,
            },
            report,
        ))
    }

    /// Takes a checkpoint now (durable mode): quiesces commits, writes a
    /// snapshot of the key table, and truncates the log. Returns the
    /// sequence number the checkpoint covers up to.
    ///
    /// # Errors
    ///
    /// [`TxKvError::InvalidConfig`] when the service is not durable;
    /// [`TxKvError::DurabilityLost`] when the WAL writer has died.
    pub fn checkpoint(&self) -> Result<u64, TxKvError> {
        let Some(wal) = &self.wal else {
            return Err(TxKvError::InvalidConfig {
                reason: "checkpoint requires durability to be configured",
            });
        };
        let quiesced = self.pause.write();
        let heap = self.system.heap();
        let values: Vec<u64> = (0..self.cfg.keys as usize)
            .map(|k| heap.load_direct(self.table + k))
            .collect();
        let covered = wal
            .checkpoint(values)
            .map_err(|_| TxKvError::DurabilityLost);
        drop(quiesced);
        covered
    }

    /// The backend this service runs on.
    pub fn backend(&self) -> &Arc<S> {
        &self.system
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &TxKvConfig {
        &self.cfg
    }

    /// Heap address of the key table (key `k` lives at `table() + k`).
    /// Exposed so harnesses can bulk-initialise the keyspace with
    /// [`TmHeap::store_direct`](rococo_stm::TmHeap::store_direct) before
    /// opening traffic; direct stores are only safe while no transactions
    /// run.
    pub fn table(&self) -> Addr {
        self.table
    }

    /// The shard a key routes to (Fibonacci hash of the primary key).
    pub fn shard_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.cfg.shards
    }

    /// Submits a request without waiting for the reply (open-loop
    /// clients submit many, then drain the [`PendingReply`]s).
    ///
    /// # Errors
    ///
    /// * [`TxKvError::TooManyKeys`] / [`TxKvError::KeyOutOfRange`] —
    ///   invalid request, rejected before touching a queue.
    /// * [`TxKvError::Overloaded`] — the target shard's queue is full;
    ///   the request was shed.
    /// * [`TxKvError::ShuttingDown`] — the service stopped.
    pub fn submit(&self, req: Request) -> Result<PendingReply, TxKvError> {
        if let Request::MultiGet { keys } = &req {
            if keys.len() > Request::MAX_MULTI_GET {
                return Err(TxKvError::TooManyKeys {
                    requested: keys.len(),
                });
            }
        }
        let mut bad_key = None;
        req.for_each_key(|k| {
            if k >= self.cfg.keys && bad_key.is_none() {
                bad_key = Some(k);
            }
        });
        if let Some(key) = bad_key {
            return Err(TxKvError::KeyOutOfRange {
                key,
                keys: self.cfg.keys,
            });
        }

        let shard = self.shard_of(req.primary_key());
        // Mint the request's causal trace id at ingress and open its
        // chain with an `Ingress` event on the *client* thread; the
        // shard worker continues the chain from the id carried on the
        // job. Disabled recorder ⇒ trace 0 ⇒ tracing fully off.
        let trace = if rococo_telemetry::enabled() {
            let trace = rococo_telemetry::mint_trace();
            rococo_telemetry::set_current_trace(trace);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Ingress {
                shard: shard as u32,
                class: req.class(),
            });
            trace
        } else {
            0
        };
        let enqueued_at = Instant::now();
        let (reply_tx, reply_rx) = bounded(1);
        let job = Job {
            req,
            enqueued_at,
            trace,
            reply: reply_tx,
        };
        let out = match self.senders[shard].try_send(job) {
            Ok(()) => {
                self.stats[shard].note_enqueued();
                Ok(PendingReply { rx: reply_rx })
            }
            Err(TrySendError::Full(_)) => {
                self.stats[shard].note_shed();
                if trace != 0 {
                    // Close the shed request's chain here — no worker
                    // will ever see it — and force-keep it in the tail
                    // sampler: shed requests are always worth keeping.
                    rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Reply {
                        outcome: "shed"
                    });
                    rococo_telemetry::observe_request(
                        trace,
                        enqueued_at.elapsed().as_nanos() as u64,
                        true,
                    );
                }
                Err(TxKvError::Overloaded { shard })
            }
            Err(TrySendError::Disconnected(_)) => Err(TxKvError::ShuttingDown),
        };
        if trace != 0 {
            rococo_telemetry::clear_current_trace();
        }
        out
    }

    /// Submits a request and blocks for the response (closed-loop
    /// clients).
    ///
    /// # Errors
    ///
    /// Everything [`TxKv::submit`] returns, plus the worker-side errors
    /// ([`TxKvError::RetriesExhausted`]).
    pub fn call(&self, req: Request) -> Result<Response, TxKvError> {
        self.submit(req)?.wait()
    }

    /// Submits a request and blocks for the response plus its commit
    /// sequence number (see [`PendingReply::wait_with_seq`]) — the
    /// building block for replication watermarks.
    ///
    /// # Errors
    ///
    /// As [`TxKv::call`].
    pub fn call_with_seq(&self, req: Request) -> Result<(Response, Option<u64>), TxKvError> {
        self.submit(req)?.wait_with_seq()
    }

    /// A live report (counters keep moving while it is taken).
    pub fn report(&self) -> TxKvReport {
        self.build_report()
    }

    /// Stops the service: closes every queue, joins the workers (they
    /// finish queued requests first), and returns the final report.
    pub fn shutdown(mut self) -> TxKvReport {
        self.stop_and_join();
        self.build_report()
    }

    fn stop_and_join(&mut self) {
        // Shutdown order matters in durable mode: the checkpoint
        // coordinator and the workers each hold a WAL client, and the
        // writer thread only exits once every client's sender is gone —
        // so stop those threads before dropping the opener handle.
        self.ckpt_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.ckpt_thread.take() {
            let _ = h.join();
        }
        self.senders.clear(); // workers' recv() errors out once queues drain
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Stop the scraper after the workers: its final scrape then
        // covers every request, and its WAL client must be dropped
        // before the writer below can be joined.
        self.tlm_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.tlm_thread.take() {
            let _ = h.join();
        }
        if let Some(w) = self.wal.take() {
            self.final_wal = Some(w.shutdown());
        }
    }

    fn build_report(&self) -> TxKvReport {
        let per_shard: Vec<ShardSnapshot> = self.stats.iter().map(|s| s.snapshot()).collect();
        let mut aggregate = ShardSnapshot::default();
        for s in &per_shard {
            aggregate.merge(s);
        }
        TxKvReport {
            backend: self.system.name(),
            per_shard,
            aggregate,
            injected_faults: self.system.injected_faults(),
            wal: self
                .wal
                .as_ref()
                .map(|w| w.stats())
                .or_else(|| self.final_wal.clone()),
            elapsed: self.started.elapsed(),
        }
    }
}

impl<S: TmSystem + 'static> Drop for TxKv<S> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{RococoTm, TinyStm, TmConfig, TsxHtm};

    fn tiny(cfg: &TxKvConfig) -> Arc<TinyStm> {
        Arc::new(TinyStm::with_config(TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: cfg.worker_threads(),
        }))
    }

    #[test]
    fn basic_requests_roundtrip() {
        let cfg = TxKvConfig {
            shards: 2,
            workers_per_shard: 1,
            keys: 128,
            ..TxKvConfig::default()
        };
        let kv = TxKv::start(tiny(&cfg), cfg).unwrap();
        assert_eq!(
            kv.call(Request::Put { key: 1, value: 11 }).unwrap(),
            Response::Done
        );
        assert_eq!(
            kv.call(Request::Add { key: 1, delta: 4 }).unwrap(),
            Response::Value(15)
        );
        assert_eq!(
            kv.call(Request::MultiGet { keys: vec![0, 1] }).unwrap(),
            Response::Values(vec![0, 15])
        );
        let report = kv.shutdown();
        assert_eq!(report.aggregate.committed, 3);
        assert_eq!(report.aggregate.failed, 0);
        assert_eq!(report.aggregate.latency.count, 3);
    }

    #[test]
    fn works_on_every_backend() {
        let cfg = TxKvConfig {
            shards: 2,
            workers_per_shard: 1,
            keys: 64,
            ..TxKvConfig::default()
        };
        let tm_cfg = TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: cfg.worker_threads(),
        };
        fn smoke<S: TmSystem + 'static>(system: Arc<S>, cfg: TxKvConfig) {
            let kv = TxKv::start(system, cfg).unwrap();
            kv.call(Request::Put { key: 9, value: 2 }).unwrap();
            assert_eq!(
                kv.call(Request::Get { key: 9 }).unwrap(),
                Response::Value(2)
            );
            assert_eq!(kv.shutdown().aggregate.committed, 2);
        }
        smoke(Arc::new(TinyStm::with_config(tm_cfg)), cfg.clone());
        smoke(Arc::new(TsxHtm::with_config(tm_cfg)), cfg.clone());
        smoke(Arc::new(RococoTm::with_config(tm_cfg)), cfg);
    }

    const KEYS: u64 = 8;
    const SEED_BAL: u64 = 100;

    /// The bank-conservation + write-skew oracle: concurrent conditional
    /// transfers may never create or destroy money and may never overdraw
    /// a balance (a skewed pair of transfers would wrap a `u64` balance
    /// to an enormous value, failing the bound check). Returns the final
    /// report for backend-specific assertions.
    fn bank<S: TmSystem + 'static>(system: Arc<S>, cfg: TxKvConfig) -> TxKvReport {
        let kv = Arc::new(TxKv::start(system, cfg).unwrap());
        for k in 0..KEYS {
            kv.call(Request::Put {
                key: k,
                value: SEED_BAL,
            })
            .unwrap();
        }
        // Pipelined clients: each keeps a window of transfers in
        // flight so shard workers actually form multi-job batches.
        let mut clients = Vec::new();
        for c in 0..3u64 {
            let kv = Arc::clone(&kv);
            clients.push(std::thread::spawn(move || {
                let mut window = std::collections::VecDeque::new();
                for i in 0..300u64 {
                    let from = (c * 3 + i) % KEYS;
                    let to = (c + i * 7 + 1) % KEYS;
                    if from == to {
                        continue;
                    }
                    let req = Request::Transfer {
                        from,
                        to,
                        amount: 1 + i % 5,
                    };
                    loop {
                        match kv.submit(req.clone()) {
                            Ok(pending) => {
                                window.push_back(pending);
                                break;
                            }
                            Err(TxKvError::Overloaded { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("transfer rejected: {e}"),
                        }
                    }
                    if window.len() >= 16 {
                        window.pop_front().unwrap().wait().unwrap();
                    }
                }
                for pending in window {
                    pending.wait().unwrap();
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        let balances = match kv
            .call(Request::MultiGet {
                keys: (0..KEYS).collect(),
            })
            .unwrap()
        {
            Response::Values(v) => v,
            other => panic!("unexpected reply {other:?}"),
        };
        let total: u64 = balances.iter().sum();
        assert_eq!(
            total,
            KEYS * SEED_BAL,
            "bank conservation violated: {balances:?}"
        );
        assert!(
            balances.iter().all(|&b| b <= KEYS * SEED_BAL),
            "write skew overdrew a balance (u64 wrap): {balances:?}"
        );
        let report = Arc::try_unwrap(kv).ok().unwrap().shutdown();
        assert_eq!(report.aggregate.failed, 0);
        assert!(report.aggregate.batches > 0);
        // Every job runs inside some batch, so the job counter can
        // never lag the batch counter.
        assert!(report.aggregate.batch_jobs >= report.aggregate.batches);
        report
    }

    /// The batched commit path (`max_batch > 1` with pipelined
    /// submissions) must be serializable exactly like the one-at-a-time
    /// path, on every static backend.
    #[test]
    fn batched_commits_preserve_invariants_on_every_backend() {
        let cfg = TxKvConfig {
            shards: 2,
            workers_per_shard: 2,
            keys: 32,
            max_batch: 8,
            ..TxKvConfig::default()
        };
        let tm_cfg = TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: cfg.worker_threads(),
        };
        bank(Arc::new(TinyStm::with_config(tm_cfg)), cfg.clone());
        bank(Arc::new(TsxHtm::with_config(tm_cfg)), cfg.clone());
        bank(Arc::new(RococoTm::with_config(tm_cfg)), cfg);
    }

    /// A [`HybridTm`](rococo_sched::HybridTm) whose HTM fast path is too
    /// small for any multi-word write set: one direct-mapped write-set
    /// entry at word granularity, so every `Transfer` (four writes)
    /// capacity-aborts its first HTM attempt and must migrate mid-retry
    /// to the software path.
    fn migratory_hybrid(cfg: &TxKvConfig) -> Arc<rococo_sched::HybridTm> {
        use rococo_stm::HtmConfig;
        Arc::new(rococo_sched::HybridTm::with_configs(
            rococo_sched::HybridConfig {
                tm: TmConfig {
                    heap_words: cfg.heap_words(),
                    max_threads: cfg.worker_threads(),
                },
                htm: HtmConfig {
                    line_shift: 0,
                    write_sets: 1,
                    write_ways: 1,
                    read_capacity: 4096,
                    max_attempts: 5,
                },
                classes: crate::request::Request::CLASSES,
                cooldown: 8,
                strike_limit: 2,
                ..rococo_sched::HybridConfig::default()
            },
        ))
    }

    /// The serializability oracle must hold on the hybrid router even
    /// when attempts migrate backends mid-retry: transfers overflow the
    /// deliberately tiny HTM write set, capacity-abort, and re-route to
    /// the software path with their balance invariants intact.
    #[test]
    fn hybrid_bank_survives_forced_mid_retry_migration() {
        let cfg = TxKvConfig {
            shards: 2,
            workers_per_shard: 2,
            keys: 32,
            max_batch: 8,
            ..TxKvConfig::default()
        };
        let tm = migratory_hybrid(&cfg);
        bank(Arc::clone(&tm), cfg);
        let sched = tm.sched_snapshot();
        assert!(
            sched.migrations > 0,
            "transfers never migrated HTM -> software: {sched:?}"
        );
        assert!(
            sched.commits_sw > 0,
            "no commit ever retired on the slow path: {sched:?}"
        );
    }

    /// Satellite check for the stats plumbing: the shard report, the
    /// outer [`TmSystem`] stats snapshot, and the scheduler's per-path
    /// commit counters must all agree on the number of commits — and the
    /// rendered registry must carry `rococo_tm_commits_total` exactly
    /// once (no double-counting from the wrapped engines).
    #[test]
    fn hybrid_commit_counts_agree_across_all_three_surfaces() {
        let cfg = TxKvConfig {
            shards: 2,
            workers_per_shard: 2,
            keys: 32,
            max_batch: 8,
            ..TxKvConfig::default()
        };
        let tm = migratory_hybrid(&cfg);
        let report = bank(Arc::clone(&tm), cfg);
        // Surface 1 vs 2: every committed request is exactly one TM
        // commit (bank asserts failed == 0, and nothing else ran
        // transactions on this TM instance).
        let snap = tm.stats_snapshot();
        assert_eq!(report.aggregate.committed, snap.commits);
        // Surface 3: the scheduler's per-path split partitions the total.
        let sched = tm.sched_snapshot();
        assert_eq!(snap.commits, sched.commits_htm + sched.commits_sw);
        // The exported registry shows one commit counter, with the same
        // value — the wrapped engines' own counters must not leak in.
        let mut reg = rococo_telemetry::MetricsRegistry::new();
        snap.export_metrics(&mut reg);
        tm.export_extra_metrics(&mut reg);
        let rendered = reg.render_prometheus();
        let commit_lines: Vec<&str> = rendered
            .lines()
            .filter(|l| l.starts_with("rococo_tm_commits_total"))
            .collect();
        assert_eq!(
            commit_lines,
            vec![format!("rococo_tm_commits_total {}", snap.commits).as_str()],
            "commit counter must render exactly once"
        );
        // The hybrid-only counters rode along under their own prefix.
        assert!(rendered.contains("rococo_sched_routes_total"));
    }

    /// Open-loop smoke: a tiny queue flooded faster than one worker can
    /// drain it must shed with [`TxKvError::Overloaded`] (counted per
    /// shard) rather than queueing without bound, while every accepted
    /// request still gets an answer.
    #[test]
    fn overload_sheds_instead_of_queueing() {
        let cfg = TxKvConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 4,
            keys: 16,
            ..TxKvConfig::default()
        };
        let kv = TxKv::start(tiny(&cfg), cfg).unwrap();
        let mut accepted = Vec::new();
        let mut shed = 0u64;
        for i in 0..2_000u64 {
            match kv.submit(Request::Put {
                key: i % 16,
                value: i,
            }) {
                Ok(pending) => accepted.push(pending),
                Err(TxKvError::Overloaded { shard }) => {
                    assert_eq!(shard, 0);
                    shed += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(shed > 0, "2000 blind submits never filled a 4-deep queue");
        for pending in accepted {
            pending.wait().unwrap();
        }
        let report = kv.shutdown();
        assert_eq!(report.aggregate.shed, shed);
        assert_eq!(report.aggregate.committed + shed, 2_000);
    }

    fn durable_cfg(dir: std::path::PathBuf, checkpoint_every: u64) -> TxKvConfig {
        TxKvConfig {
            shards: 2,
            workers_per_shard: 2,
            keys: 64,
            durability: Some(DurabilityConfig {
                dir,
                fsync: FsyncPolicy::Always,
                checkpoint_every,
                kill: None,
            }),
            ..TxKvConfig::default()
        }
    }

    #[test]
    fn durable_writes_survive_restart() {
        let dir = rococo_wal::scratch_dir("svc-restart");
        let cfg = durable_cfg(dir.clone(), 0);
        {
            let kv = TxKv::start(tiny(&cfg), cfg.clone()).unwrap();
            for k in 0..20 {
                kv.call(Request::Put {
                    key: k,
                    value: k + 100,
                })
                .unwrap();
            }
            kv.call(Request::Transfer {
                from: 3,
                to: 4,
                amount: 50,
            })
            .unwrap();
            let report = kv.shutdown();
            let wal = report.wal.expect("durable service reports WAL stats");
            // 20 puts + 1 transfer, all update transactions.
            assert_eq!(wal.acked_records, 21);
        }
        let (kv, report) = TxKv::recover(tiny(&cfg), cfg).unwrap();
        assert_eq!(report.replayed, 21);
        assert_eq!(report.checkpoint_seq, None);
        assert_eq!(
            kv.call(Request::Get { key: 3 }).unwrap(),
            Response::Value(53)
        );
        assert_eq!(
            kv.call(Request::Get { key: 4 }).unwrap(),
            Response::Value(154)
        );
        assert_eq!(
            kv.call(Request::Get { key: 19 }).unwrap(),
            Response::Value(119)
        );
        drop(kv);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn automatic_checkpoint_truncates_and_recovers() {
        let dir = rococo_wal::scratch_dir("svc-ckpt");
        let cfg = durable_cfg(dir.clone(), 8);
        {
            let kv = TxKv::start(tiny(&cfg), cfg.clone()).unwrap();
            for k in 0..32 {
                kv.call(Request::Put {
                    key: k,
                    value: k * 2,
                })
                .unwrap();
            }
            // Give the coordinator a beat to notice the threshold.
            let deadline = Instant::now() + Duration::from_secs(5);
            while kv.report().wal.unwrap().checkpoints == 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            let report = kv.shutdown();
            assert!(
                report.wal.unwrap().checkpoints >= 1,
                "coordinator never checkpointed"
            );
        }
        let (kv, report) = TxKv::recover(tiny(&cfg), cfg).unwrap();
        assert!(report.checkpoint_seq.is_some(), "{report:?}");
        for k in 0..32 {
            assert_eq!(
                kv.call(Request::Get { key: k }).unwrap(),
                Response::Value(k * 2)
            );
        }
        drop(kv);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manual_checkpoint_requires_durability() {
        let cfg = TxKvConfig {
            shards: 1,
            workers_per_shard: 1,
            keys: 16,
            ..TxKvConfig::default()
        };
        let kv = TxKv::start(tiny(&cfg), cfg).unwrap();
        assert!(matches!(
            kv.checkpoint(),
            Err(TxKvError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn durable_start_rejects_used_backend() {
        let dir = rococo_wal::scratch_dir("svc-used");
        let cfg = durable_cfg(dir.clone(), 0);
        let tm = tiny(&cfg);
        // Burn a sequence number outside the service.
        use rococo_stm::Transaction;
        let addr = tm.heap().alloc(1);
        rococo_stm::atomically(&*tm, 0, |tx| tx.write(addr, 1));
        assert!(matches!(
            TxKv::start(tm, cfg),
            Err(TxKvError::InvalidConfig { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_invalid_requests_up_front() {
        let cfg = TxKvConfig {
            shards: 1,
            workers_per_shard: 1,
            keys: 16,
            ..TxKvConfig::default()
        };
        let kv = TxKv::start(tiny(&cfg), cfg).unwrap();
        assert_eq!(
            kv.call(Request::Get { key: 16 }),
            Err(TxKvError::KeyOutOfRange { key: 16, keys: 16 })
        );
        assert_eq!(
            kv.call(Request::Transfer {
                from: 3,
                to: 99,
                amount: 1
            }),
            Err(TxKvError::KeyOutOfRange { key: 99, keys: 16 })
        );
        let big = vec![0u64; Request::MAX_MULTI_GET + 1];
        assert_eq!(
            kv.call(Request::MultiGet { keys: big }),
            Err(TxKvError::TooManyKeys {
                requested: Request::MAX_MULTI_GET + 1
            })
        );
        // Service still healthy afterwards.
        assert_eq!(
            kv.call(Request::Get { key: 0 }).unwrap(),
            Response::Value(0)
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = TxKvConfig {
            shards: 0,
            ..TxKvConfig::default()
        };
        let tm = Arc::new(TinyStm::with_config(TmConfig {
            heap_words: 1024,
            max_threads: 1,
        }));
        assert!(matches!(
            TxKv::start(Arc::clone(&tm), cfg),
            Err(TxKvError::InvalidConfig { .. })
        ));
        // Heap too small for the table.
        let cfg = TxKvConfig {
            shards: 1,
            workers_per_shard: 1,
            keys: 1 << 20,
            ..TxKvConfig::default()
        };
        assert!(matches!(
            TxKv::start(tm, cfg),
            Err(TxKvError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let cfg = TxKvConfig {
            shards: 2,
            workers_per_shard: 2,
            keys: 32,
            ..TxKvConfig::default()
        };
        let kv = TxKv::start(tiny(&cfg), cfg).unwrap();
        kv.call(Request::Put { key: 0, value: 1 }).unwrap();
        drop(kv); // must not hang or leak threads
    }
}
