//! End-to-end telemetry artifact validation: run TxKv on ROCoCoTM with
//! the flight recorder and metrics scraper on, then schema-check all
//! three artifacts — Prometheus text, JSON snapshot, and the Chrome
//! trace — including the requirement that at least one transaction span
//! overlaps an FPGA stage slice on the shared timeline.
//!
//! Own integration-test binary: the flight recorder is process-global.

use rococo_server::{Request, TelemetryConfig, TxKv, TxKvConfig};
use rococo_stm::{RococoTm, TmConfig};
use rococo_telemetry::json::Json;
use rococo_telemetry::{build_tx_trace, validate_prometheus, FPGA_PID, TX_PID};
use std::sync::Arc;

#[test]
fn artifacts_pass_schema_validation_and_spans_overlap() {
    let dir = std::env::temp_dir().join(format!("rococo-tlm-artifacts-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    rococo_telemetry::enable(rococo_telemetry::DEFAULT_RING_EVENTS);

    let cfg = TxKvConfig {
        shards: 2,
        workers_per_shard: 2,
        keys: 64,
        telemetry: Some(TelemetryConfig::new(dir.clone())),
        ..TxKvConfig::default()
    };
    let tm = RococoTm::with_config(TmConfig {
        heap_words: cfg.heap_words(),
        max_threads: cfg.worker_threads(),
    });
    let kv = TxKv::start(Arc::new(tm), cfg).expect("service start");
    for k in 0..64u64 {
        kv.call(Request::Put { key: k, value: 100 }).unwrap();
    }
    // Contended transfers: retries and validation traffic.
    for i in 0..400u64 {
        let _ = kv.call(Request::Transfer {
            from: i % 4,
            to: (i + 1) % 4,
            amount: 1,
        });
    }
    let report = kv.shutdown();
    assert!(report.aggregate.committed >= 400);

    let events = rococo_telemetry::drain_events();
    let lanes = rococo_telemetry::lane_names();
    rococo_telemetry::disable();

    // --- metrics.prom: strict text-format validation + namespaces ----
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("scraper wrote prom");
    let samples = validate_prometheus(&prom).expect("valid Prometheus exposition");
    assert!(samples > 0);
    for prefix in ["rococo_txkv_", "rococo_tm_", "rococo_fpga_"] {
        assert!(
            prom.lines()
                .any(|l| !l.starts_with('#') && l.starts_with(prefix)),
            "missing {prefix} samples in:\n{prom}"
        );
    }
    // The final scrape runs after worker shutdown, so it covers the
    // whole run: committed counts must agree with the report.
    let committed_line = prom
        .lines()
        .find(|l| l.starts_with("rococo_txkv_committed_total "))
        .expect("aggregate committed counter");
    let committed: f64 = committed_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(committed as u64, report.aggregate.committed);

    // --- metrics.json: parses, non-empty metric entries --------------
    let mjson = std::fs::read_to_string(dir.join("metrics.json")).expect("scraper wrote json");
    let doc = Json::parse(&mjson).expect("valid JSON snapshot");
    let metrics = doc.get("metrics").unwrap().as_arr().unwrap();
    assert!(!metrics.is_empty());
    assert!(metrics
        .iter()
        .all(|m| m.get("name").and_then(Json::as_str).is_some()));

    // --- trace: tx spans overlapping FPGA stage slices ---------------
    let trace = build_tx_trace(&events, &lanes);
    let tdoc = Json::parse(&trace).expect("valid trace JSON");
    let evs = tdoc.get("traceEvents").unwrap().as_arr().unwrap();
    let span = |e: &Json, name: &str, pid: u32| -> Option<(f64, f64)> {
        (e.get("name").and_then(Json::as_str) == Some(name)
            && e.get("ph").and_then(Json::as_str) == Some("X")
            && e.get("pid").and_then(Json::as_f64) == Some(pid as f64))
        .then(|| {
            (
                e.get("ts").unwrap().as_f64().unwrap(),
                e.get("dur").unwrap().as_f64().unwrap(),
            )
        })
    };
    let tx: Vec<_> = evs.iter().filter_map(|e| span(e, "tx", TX_PID)).collect();
    let det: Vec<_> = evs
        .iter()
        .filter_map(|e| span(e, "detector", FPGA_PID))
        .collect();
    assert!(!tx.is_empty(), "no transaction spans in trace");
    assert!(!det.is_empty(), "no detector stage slices in trace");
    assert!(
        tx.iter().any(|(tts, tdur)| det
            .iter()
            .any(|(dts, ddur)| dts < &(tts + tdur) && tts < &(dts + ddur))),
        "no tx span overlaps a detector slice"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
