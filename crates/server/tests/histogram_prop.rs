//! Property tests for cross-shard histogram merging: `merged_with` must
//! behave like recording everything into one histogram, regardless of
//! how the samples were split or in which order the parts were merged.

use proptest::prelude::*;
use rococo_server::{HistogramSnapshot, LatencyHistogram};

/// Records `samples` into one fresh histogram and snapshots it.
fn snap(samples: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

/// Latency-shaped sample values: spread across bucket decades, with the
/// saturating top of the u64 range reachable.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..1_000,
        1_000u64..1_000_000,
        1_000_000u64..10_000_000_000,
        Just(u64::MAX),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_equals_single_histogram(
        a in prop::collection::vec(sample(), 0..40),
        b in prop::collection::vec(sample(), 0..40),
    ) {
        let merged = snap(&a).merged_with(&snap(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let direct = snap(&all);
        // Exact merge: identical counts, buckets and quantiles. The
        // mean is recomputed from summed totals, so compare loosely.
        prop_assert_eq!(merged.count, direct.count);
        prop_assert_eq!(&merged.buckets, &direct.buckets);
        prop_assert_eq!(merged.p50_ns, direct.p50_ns);
        prop_assert_eq!(merged.p99_ns, direct.p99_ns);
        prop_assert_eq!(merged.p999_ns, direct.p999_ns);
        prop_assert_eq!(merged.max_ns, direct.max_ns);
        prop_assert!((merged.mean_ns - direct.mean_ns).abs() <= 1e-6 * direct.mean_ns.max(1.0));
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(sample(), 0..30),
        b in prop::collection::vec(sample(), 0..30),
        c in prop::collection::vec(sample(), 0..30),
    ) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        let left = sa.merged_with(&sb).merged_with(&sc);
        let right = sa.merged_with(&sb.merged_with(&sc));
        prop_assert_eq!(&left, &right);
        let flipped = sc.merged_with(&sb).merged_with(&sa);
        prop_assert_eq!(left.count, flipped.count);
        prop_assert_eq!(&left.buckets, &flipped.buckets);
        prop_assert_eq!(left.p999_ns, flipped.p999_ns);
    }

    #[test]
    fn merging_an_empty_snapshot_is_identity(
        a in prop::collection::vec(sample(), 0..40),
    ) {
        let sa = snap(&a);
        let merged = sa.merged_with(&snap(&[]));
        prop_assert_eq!(&merged, &sa);
    }
}
