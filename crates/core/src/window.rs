//! The sliding window of committed transactions (Figure 5).

use std::collections::VecDeque;

/// Global commit sequence number. The `n`-th transaction to commit
/// system-wide gets sequence `n` (starting at 0); sequence numbers never
/// wrap in practice (`u64`).
pub type Seq = u64;

/// A sliding window of bookkeeping entries for the last `W` committed
/// transactions, keyed by global [`Seq`] and addressable by window slot.
///
/// Slot indices align with [`ReachMatrix`](crate::ReachMatrix) slots: slot 0
/// is the oldest tracked commit. When the window is full, pushing a new
/// entry evicts slot 0 — callers owning a matrix must call
/// [`ReachMatrix::evict_oldest`](crate::ReachMatrix::evict_oldest) in
/// lockstep (see [`RococoValidator`](crate::RococoValidator), which bundles
/// the two).
#[derive(Debug, Clone)]
pub struct SlidingWindow<T> {
    entries: VecDeque<T>,
    cap: usize,
    next_seq: Seq,
}

impl<T> SlidingWindow<T> {
    /// Creates an empty window of capacity `cap` (the paper's `W`; 64 on
    /// HARP2).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        Self {
            entries: VecDeque::with_capacity(cap),
            cap,
            next_seq: 0,
        }
    }

    /// Window capacity `W`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of tracked entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the window is full (the next push evicts).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.cap
    }

    /// Sequence number the next pushed entry will receive.
    pub fn next_seq(&self) -> Seq {
        self.next_seq
    }

    /// Sequence number of the oldest tracked entry, if any.
    pub fn oldest_seq(&self) -> Option<Seq> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.next_seq - self.entries.len() as Seq)
        }
    }

    /// Pushes a newly committed entry, returning its sequence number and the
    /// evicted oldest entry if the window was full.
    pub fn push(&mut self, entry: T) -> (Seq, Option<T>) {
        let evicted = if self.is_full() {
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back(entry);
        let seq = self.next_seq;
        self.next_seq += 1;
        (seq, evicted)
    }

    /// Window slot of sequence `seq`, if it is still tracked.
    pub fn slot_of(&self, seq: Seq) -> Option<usize> {
        let oldest = self.oldest_seq()?;
        if seq < oldest || seq >= self.next_seq {
            None
        } else {
            Some((seq - oldest) as usize)
        }
    }

    /// Sequence number of window slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not live.
    pub fn seq_of(&self, slot: usize) -> Seq {
        assert!(slot < self.entries.len(), "slot {slot} not live");
        self.oldest_seq().expect("non-empty") + slot as Seq
    }

    /// Entry at window slot `slot`.
    pub fn get(&self, slot: usize) -> Option<&T> {
        self.entries.get(slot)
    }

    /// Entry with sequence `seq`, if still tracked.
    pub fn get_seq(&self, seq: Seq) -> Option<&T> {
        self.slot_of(seq).and_then(|s| self.entries.get(s))
    }

    /// Iterates `(slot, entry)` pairs from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.entries.iter().enumerate()
    }

    /// Iterates `(slot, entry)` pairs for entries with `seq > after`, i.e.
    /// the commits a transaction with snapshot `after` has not observed.
    pub fn iter_after(&self, after: Seq) -> impl Iterator<Item = (usize, &T)> {
        let start = match self.oldest_seq() {
            Some(oldest) if after + 1 > oldest => (after + 1 - oldest) as usize,
            Some(_) => 0,
            None => 0,
        };
        self.entries.iter().enumerate().skip(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_increasing_seqs() {
        let mut w = SlidingWindow::new(3);
        assert_eq!(w.push("a"), (0, None));
        assert_eq!(w.push("b"), (1, None));
        assert_eq!(w.oldest_seq(), Some(0));
        assert_eq!(w.next_seq(), 2);
    }

    #[test]
    fn eviction_when_full() {
        let mut w = SlidingWindow::new(2);
        w.push(10);
        w.push(20);
        let (seq, evicted) = w.push(30);
        assert_eq!(seq, 2);
        assert_eq!(evicted, Some(10));
        assert_eq!(w.oldest_seq(), Some(1));
        assert_eq!(w.get_seq(1), Some(&20));
        assert_eq!(w.get_seq(0), None, "seq 0 fell out of the window");
    }

    #[test]
    fn slot_seq_mapping() {
        let mut w = SlidingWindow::new(2);
        w.push('a');
        w.push('b');
        w.push('c'); // evicts 'a'
        assert_eq!(w.slot_of(1), Some(0));
        assert_eq!(w.slot_of(2), Some(1));
        assert_eq!(w.slot_of(0), None);
        assert_eq!(w.slot_of(3), None);
        assert_eq!(w.seq_of(0), 1);
        assert_eq!(w.seq_of(1), 2);
    }

    #[test]
    fn iter_after_skips_observed() {
        let mut w = SlidingWindow::new(8);
        for i in 0..5 {
            w.push(i * 100);
        }
        // Snapshot at seq 2: should see seqs 3 and 4.
        let seen: Vec<_> = w.iter_after(2).map(|(_, &v)| v).collect();
        assert_eq!(seen, vec![300, 400]);
        // Snapshot at newest: sees nothing.
        assert!(w.iter_after(4).next().is_none());
    }

    #[test]
    fn iter_after_older_than_window_sees_everything() {
        let mut w = SlidingWindow::new(2);
        for i in 0..5 {
            w.push(i);
        }
        let seen: Vec<_> = w.iter_after(0).map(|(_, &v)| v).collect();
        assert_eq!(seen, vec![3, 4]);
    }

    #[test]
    fn empty_window() {
        let w: SlidingWindow<u8> = SlidingWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.oldest_seq(), None);
        assert_eq!(w.slot_of(0), None);
    }
}
