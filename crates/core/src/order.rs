//! Order-theoretic foundations of section 3: conflict graphs, the
//! acyclicity ⟺ serializability axiom, interval orders and the phantom
//! ordering.
//!
//! These types are the *specification* side of the repository: the
//! trace-driven CC simulators and the STM runtimes are checked against the
//! oracles here (e.g. "every set of transactions committed by policy X has
//! an acyclic `→rw` graph").

use crate::depvec::DepVec;
use std::collections::VecDeque;

/// A directed graph over `n` vertices with bitset adjacency rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    adj: Vec<DepVec>,
}

impl DiGraph {
    /// Creates an edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        let cap = n.max(1);
        Self {
            n,
            adj: vec![DepVec::new(cap); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds edge `u → v`. Self-loops are allowed and make the graph cyclic.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        self.adj[u].set(v);
    }

    /// Whether edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && v < self.n && self.adj[u].get(v)
    }

    /// Successors of `u`.
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[u].iter_ones()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// Kahn's topological sort. Returns a linear extension if the graph is
    /// acyclic, `None` otherwise.
    ///
    /// (Section 4 observes that Kahn's algorithm underlies TOCC-equivalent
    /// validation: it commits to *one* linear order during traversal.)
    pub fn topo_sort(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.n];
        for u in 0..self.n {
            for v in self.adj[u].iter_ones() {
                if v == u {
                    return None; // self-loop
                }
                indeg[v] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for v in self.adj[u].iter_ones() {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// Whether the graph is acyclic — by the theorem of section 3.2, the
    /// if-and-only-if condition for the transactions to be serializable.
    pub fn is_acyclic(&self) -> bool {
        self.topo_sort().is_some()
    }

    /// The transitive closure as adjacency rows (Warshall's algorithm,
    /// `O(n³/64)`). Row `u` contains `v` iff `u` can reach `v` via one or
    /// more edges.
    pub fn transitive_closure(&self) -> Vec<DepVec> {
        let mut rows = self.adj.clone();
        for k in 0..self.n {
            for i in 0..self.n {
                if rows[i].get(k) {
                    let rk = rows[k].clone();
                    rows[i].or_with(&rk);
                }
            }
        }
        rows
    }

    /// Whether `u` can reach `v` through one or more edges.
    pub fn reaches(&self, u: usize, v: usize) -> bool {
        if u >= self.n || v >= self.n {
            return false;
        }
        // BFS; cheap enough for test-oracle use.
        let mut seen = DepVec::new(self.n.max(1));
        let mut queue = VecDeque::from([u]);
        while let Some(x) = queue.pop_front() {
            for y in self.adj[x].iter_ones() {
                if y == v {
                    return true;
                }
                if !seen.get(y) {
                    seen.set(y);
                    queue.push_back(y);
                }
            }
        }
        false
    }

    /// Checks a linear order (a permutation of vertices) for consistency
    /// with every edge: `u → v` implies `u` appears before `v`.
    pub fn is_linear_extension(&self, order: &[usize]) -> bool {
        if order.len() != self.n {
            return false;
        }
        let mut pos = vec![usize::MAX; self.n];
        for (i, &v) in order.iter().enumerate() {
            if v >= self.n || pos[v] != usize::MAX {
                return false;
            }
            pos[v] = i;
        }
        (0..self.n).all(|u| self.adj[u].iter_ones().all(|v| pos[u] < pos[v]))
    }
}

/// The read/write footprint of a committed transaction, with the snapshot
/// it executed against, expressed in commit order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Objects read.
    pub reads: Vec<u64>,
    /// Objects written.
    pub writes: Vec<u64>,
    /// The transaction observed the updates of every transaction with
    /// commit index `< observed` (and of no later one).
    pub observed: usize,
}

/// Builds the `→rw` dependency graph over transactions listed in commit
/// order, using the three rules of section 3.1:
///
/// * **read-after-write** — `b` read `a`'s update (`a` committed within
///   `b`'s snapshot and `reads(b) ∩ writes(a) ≠ ∅`): `a →rw b`;
/// * **write-after-read** — `a` overwrote a version `b` had read (`a`
///   committed *outside* `b`'s snapshot): `b →rw a`;
/// * **write-after-read / write-after-write towards later commits** — a
///   later commit `b` overwrites what `a` read or wrote: `a →rw b`.
pub fn rw_graph(txns: &[Footprint]) -> DiGraph {
    let mut g = DiGraph::new(txns.len());
    for b in 0..txns.len() {
        for a in 0..b {
            let wa_rb = intersects(&txns[a].writes, &txns[b].reads);
            let wb_ra = intersects(&txns[b].writes, &txns[a].reads);
            let wa_wb = intersects(&txns[a].writes, &txns[b].writes);
            if wa_rb {
                if a < txns[b].observed {
                    g.add_edge(a, b); // read-after-write: a -> b
                } else {
                    g.add_edge(b, a); // b read the version a overwrote
                }
            }
            if wb_ra {
                g.add_edge(a, b); // a read the version b overwrites
            }
            if wa_wb {
                g.add_edge(a, b); // commit order dictates overwrite order
            }
        }
    }
    g
}

fn intersects(xs: &[u64], ys: &[u64]) -> bool {
    xs.iter().any(|x| ys.contains(x))
}

/// A transaction's lifetime on the real-time axis, for interval-order
/// analysis (section 3.2, "strict serializability and interval order").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Interval {
    /// Start time.
    pub start: u64,
    /// End time (exclusive; must be `> start`).
    pub end: u64,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start < end, "interval must have positive length");
        Self { start, end }
    }

    /// Whether `self` wholly precedes `other` on the real axis.
    pub fn precedes(&self, other: &Interval) -> bool {
        self.end <= other.start
    }
}

/// The real-time precedence graph `→rt` of a set of transaction lifetimes:
/// `i → j` iff interval `i` ends before interval `j` starts.
pub fn realtime_order(intervals: &[Interval]) -> DiGraph {
    let mut g = DiGraph::new(intervals.len());
    for i in 0..intervals.len() {
        for j in 0..intervals.len() {
            if i != j && intervals[i].precedes(&intervals[j]) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// Whether a precedence graph is **2+2-free** — Fishburn's characterisation
/// of interval orders: there is no pair of related pairs `a → b`, `c → d`
/// with `a ↛ d` and `c ↛ b`.
///
/// Every real-time order of intervals is 2+2-free; this is exactly why
/// timestamp-based (strict-serializability) validation suffers *phantom
/// orderings*: for any two related pairs it forces a cross relation
/// (`t1 → t4` in the paper's Figure 3(b)) that has no `→rw` justification.
pub fn is_two_plus_two_free(g: &DiGraph) -> bool {
    let n = g.len();
    for a in 0..n {
        for b in 0..n {
            if a == b || !g.has_edge(a, b) {
                continue;
            }
            for c in 0..n {
                for d in 0..n {
                    if c == d || !g.has_edge(c, d) {
                        continue;
                    }
                    if (a, b) == (c, d) {
                        continue;
                    }
                    if !g.has_edge(a, d) && !g.has_edge(c, b) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Finds a *phantom ordering* a strict-serializable (interval-order based)
/// validator would impose on top of `rw`: a pair `(x, y)` such that the
/// real-time order relates `x → y` but `→rw` (even transitively) does not
/// relate them at all. Returns the first such pair.
pub fn phantom_orderings(rw: &DiGraph, rt: &DiGraph) -> Vec<(usize, usize)> {
    assert_eq!(rw.len(), rt.len(), "graph size mismatch");
    let closure = rw.transitive_closure();
    let mut out = Vec::new();
    for x in 0..rw.len() {
        for y in 0..rw.len() {
            if x != y && rt.has_edge(x, y) && !closure[x].get(y) && !closure[y].get(x) {
                out.push((x, y));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_graph_sorts() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 3);
        let order = g.topo_sort().expect("acyclic");
        assert!(g.is_linear_extension(&order));
        assert!(g.is_acyclic());
    }

    #[test]
    fn cycle_detected() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert!(!g.is_acyclic());
        assert_eq!(g.topo_sort(), None);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new(2);
        g.add_edge(1, 1);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn closure_and_reaches_agree() {
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        let c = g.transitive_closure();
        for (u, row) in c.iter().enumerate() {
            for v in 0..5 {
                assert_eq!(row.get(v), g.reaches(u, v), "({u},{v})");
            }
        }
        assert!(g.reaches(0, 2));
        assert!(!g.reaches(0, 4));
    }

    #[test]
    fn write_skew_is_not_serializable() {
        // Figure 1: t1 reads y, writes x; t2 reads x, writes y. Each ran
        // against a snapshot excluding the other.
        let t1 = Footprint {
            reads: vec![1],  // y
            writes: vec![0], // x
            observed: 0,
        };
        let t2 = Footprint {
            reads: vec![0],
            writes: vec![1],
            observed: 0,
        };
        let g = rw_graph(&[t1, t2]);
        assert!(!g.is_acyclic(), "write skew must form a cycle in ->rw");
    }

    #[test]
    fn disjoint_transactions_serializable() {
        let t1 = Footprint {
            reads: vec![0],
            writes: vec![1],
            observed: 0,
        };
        let t2 = Footprint {
            reads: vec![2],
            writes: vec![3],
            observed: 0,
        };
        assert!(rw_graph(&[t1, t2]).is_acyclic());
    }

    #[test]
    fn fig2b_trace_is_serializable_despite_timestamps() {
        // Figure 2(b): serialisable as t2 -> t3 -> t1 even though commit
        // timestamps would order t1 before t2. Model: t1 commits first
        // having read x's old version that t2 later writes (t1 -> t2 ...
        // no: t1 ->rw nothing forward). Concretely:
        //   t1: reads {a}, writes {b}, observed nothing.
        //   t2: writes {a}, observed nothing          => t1 ->rw t2? No:
        //       t2 overwrites what t1 read and commits later => t1 -> t2.
        //   t3: reads {a} with t2 observed, writes {c} => t2 -> t3.
        // Graph t1 -> t2 -> t3 is acyclic: all three commit under ROCoCo,
        // while TOCC (commit order t1, t2, t3 with t3 reading t2's update
        // but timestamped after... ) aborts one — exercised in rococo-cc.
        let t1 = Footprint {
            reads: vec![10],
            writes: vec![20],
            observed: 0,
        };
        let t2 = Footprint {
            reads: vec![],
            writes: vec![10],
            observed: 0,
        };
        let t3 = Footprint {
            reads: vec![10],
            writes: vec![30],
            observed: 2,
        };
        let g = rw_graph(&[t1, t2, t3]);
        assert!(g.is_acyclic());
        assert!(g.has_edge(0, 1), "t1 before t2 (write-after-read)");
        assert!(g.has_edge(1, 2), "t2 before t3 (read-after-write)");
    }

    #[test]
    fn realtime_orders_are_interval_orders() {
        let intervals = vec![
            Interval::new(0, 10),
            Interval::new(5, 15),
            Interval::new(12, 20),
            Interval::new(21, 30),
            Interval::new(2, 25),
        ];
        let rt = realtime_order(&intervals);
        assert!(is_two_plus_two_free(&rt));
    }

    #[test]
    fn two_plus_two_poset_is_not_interval_order() {
        // a -> b, c -> d with no cross edges: the forbidden suborder of
        // Figure 3(b).
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(!is_two_plus_two_free(&g));
    }

    #[test]
    fn phantom_ordering_exists_for_concurrent_unrelated_txns() {
        // Two rw-related pairs executing in two real-time batches: the
        // real-time order relates t0 -> t3 although ->rw does not.
        let mut rw = DiGraph::new(4);
        rw.add_edge(0, 1);
        rw.add_edge(2, 3);
        let intervals = vec![
            Interval::new(0, 10),
            Interval::new(11, 20),
            Interval::new(0, 10),
            Interval::new(11, 20),
        ];
        let rt = realtime_order(&intervals);
        let phantoms = phantom_orderings(&rw, &rt);
        assert!(
            phantoms.contains(&(0, 3)),
            "t0 -> t3 is a phantom ordering: {phantoms:?}"
        );
    }

    #[test]
    fn linear_extension_rejects_bad_orders() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        assert!(g.is_linear_extension(&[0, 1, 2]));
        assert!(g.is_linear_extension(&[2, 0, 1]));
        assert!(!g.is_linear_extension(&[1, 0, 2]));
        assert!(!g.is_linear_extension(&[0, 1])); // wrong length
        assert!(!g.is_linear_extension(&[0, 0, 1])); // not a permutation
    }

    #[test]
    fn edge_count() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        assert_eq!(g.edge_count(), 2);
    }
}
