//! The reachability matrix (Figure 4) — incremental transitive closure.

use crate::depvec::DepVec;
use std::fmt;

/// Error returned by [`ReachMatrix::validate`] when committing the candidate
/// transaction would create a cycle in `→rw` (and hence break
/// serializability, by the acyclicity axiom of section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleDetected;

impl fmt::Display for CycleDetected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "committing this transaction would create a dependency cycle"
        )
    }
}

impl std::error::Error for CycleDetected {}

/// The closure vectors computed by a successful validation: what the
/// candidate reaches (`p`, *proceeding*) and what reaches it (`s`,
/// *succeeding*). Feed this to [`ReachMatrix::commit`] to admit the
/// transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Closure {
    /// `p[i]` ⇔ candidate ▷ `tᵢ` (candidate reaches slot `i`).
    pub p: DepVec,
    /// `s[i]` ⇔ `tᵢ` ▷ candidate (slot `i` reaches the candidate).
    pub s: DepVec,
}

/// The reachability matrix `R` of the ROCoCo manager: `r[i][j]` ⇔ `tᵢ ▷ tⱼ`
/// (transaction in slot `i` reaches transaction in slot `j`), maintained as
/// the transitive closure of the committed window DAG.
///
/// Rows are stored as [`DepVec`]-compatible word arrays; all three
/// operations map to the bit-parallel structures of the paper's Figure 4/5:
///
/// * [`validate`](Self::validate) — `p = f ∨ Rᵀf`, `s = b ∨ Rb`, cycle iff
///   `p ∧ s ≠ 0`; `O(W)` word-ops (O(1) clock cycles in hardware).
/// * [`commit`](Self::commit) — append `p`/`s` as new row/column and close
///   existing entries: `r[i][j] |= s[i] ∧ p[j]`.
/// * [`evict_oldest`](Self::evict_oldest) — the register shift when the
///   sliding window discards bookkeeping `h₆₃` (Figure 5, top-left).
///
/// Slot indices are *window-relative*: slot 0 is the oldest committed
/// transaction currently tracked. [`SlidingWindow`](crate::SlidingWindow)
/// maps slots to global sequence numbers.
#[derive(Clone, PartialEq, Eq)]
pub struct ReachMatrix {
    cap: usize,
    len: usize,
    rows: Vec<DepVec>,
}

impl ReachMatrix {
    /// Creates an empty matrix for a window of `cap` transactions.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        Self {
            cap,
            len: 0,
            rows: vec![DepVec::new(cap); cap],
        }
    }

    /// Window capacity `W`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of committed transactions currently tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no transaction is tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the window is full (a commit must evict first).
    pub fn is_full(&self) -> bool {
        self.len == self.cap
    }

    /// Whether `tᵢ ▷ tⱼ` (slot `i` reaches slot `j`).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is not a live slot.
    pub fn reaches(&self, i: usize, j: usize) -> bool {
        assert!(i < self.len && j < self.len, "slot out of range");
        self.rows[i].get(j)
    }

    /// Validates a candidate transaction with forward vector `f` and
    /// backward vector `b` (both over live slots; bits at or beyond
    /// [`len`](Self::len) must be clear).
    ///
    /// Returns the [`Closure`] on success.
    ///
    /// # Errors
    ///
    /// Returns [`CycleDetected`] if `p ∧ s ≠ 0`, i.e. some committed
    /// transaction both reaches and is reached by the candidate.
    ///
    /// # Panics
    ///
    /// Panics if `f`/`b` capacities don't match the window capacity, or if a
    /// dependency bit refers to a dead slot.
    pub fn validate(&self, f: &DepVec, b: &DepVec) -> Result<Closure, CycleDetected> {
        assert_eq!(f.capacity(), self.cap, "f capacity mismatch");
        assert_eq!(b.capacity(), self.cap, "b capacity mismatch");
        debug_assert!(
            f.iter_ones().all(|i| i < self.len) && b.iter_ones().all(|i| i < self.len),
            "dependency on a slot outside the live window"
        );

        // p = f | R^T f : candidate reaches slot i directly (f[i]) or
        // through any j with f[j] and r[j][i] (row j read whole).
        let mut p = f.clone();
        for j in f.iter_ones() {
            p.or_with(&self.rows[j]);
        }

        // s = b | R b : slot i reaches the candidate directly (b[i]) or
        // through any j with r[i][j] and b[j] (test row i against b).
        let mut s = b.clone();
        for i in 0..self.len {
            if self.rows[i].intersects(b) {
                s.set(i);
            }
        }

        if p.intersects(&s) {
            Err(CycleDetected)
        } else {
            Ok(Closure { p, s })
        }
    }

    /// Commits the candidate whose closure was computed by
    /// [`validate`](Self::validate), appending it as the newest slot.
    /// Returns the slot index it occupies.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is full — callers must
    /// [`evict_oldest`](Self::evict_oldest) first — or if the closure's
    /// capacity does not match.
    pub fn commit(&mut self, closure: &Closure) -> usize {
        assert!(!self.is_full(), "matrix full; evict before committing");
        assert_eq!(closure.p.capacity(), self.cap, "closure capacity mismatch");
        let idx = self.len;

        // Close existing entries over the new element: every t_i that
        // reaches the candidate (s[i]) now also reaches everything the
        // candidate reaches (p), and the candidate itself (bit idx).
        for i in closure.s.iter_ones() {
            debug_assert!(i < idx);
            self.rows[i].or_with(&closure.p);
            self.rows[i].set(idx);
        }

        // New row: p plus self-reachability ("a vertex can always reach
        // itself" — R₁ = [1] in the paper).
        let row = &mut self.rows[idx];
        row.clear();
        row.or_with(&closure.p);
        row.set(idx);

        self.len = idx + 1;
        idx
    }

    /// Evicts the oldest transaction (slot 0): every slot decreases by one,
    /// modelling the 2D-register shift of Figure 5.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    pub fn evict_oldest(&mut self) {
        assert!(self.len > 0, "cannot evict from an empty matrix");
        // Drop row 0, move rows up, and drop column 0 from every row.
        self.rows.rotate_left(1);
        self.len -= 1;
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i < self.len {
                row.shift_down();
            } else {
                row.clear();
            }
        }
    }

    /// Checks the transitive-closure invariant by recomputing reachability
    /// from scratch (Warshall) and comparing. Intended for tests and debug
    /// assertions; `O(W³)`.
    pub fn closure_invariant_holds(&self) -> bool {
        let n = self.len;
        let mut ref_rows: Vec<DepVec> = self.rows[..n].to_vec();
        // The stored matrix *is* supposed to be transitively closed; closing
        // it again must be a no-op.
        for k in 0..n {
            for i in 0..n {
                if ref_rows[i].get(k) {
                    let rk = ref_rows[k].clone();
                    ref_rows[i].or_with(&rk);
                }
            }
        }
        ref_rows.iter().zip(&self.rows[..n]).all(|(a, b)| a == b)
    }
}

impl fmt::Debug for ReachMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ReachMatrix[{}/{}]", self.len, self.cap)?;
        for i in 0..self.len {
            write!(f, "  {i:3}: ")?;
            for j in 0..self.len {
                write!(f, "{}", if self.rows[i].get(j) { '1' } else { '.' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dv(cap: usize, ones: &[usize]) -> DepVec {
        let mut v = DepVec::new(cap);
        for &i in ones {
            v.set(i);
        }
        v
    }

    /// Commits a transaction with the given direct dependencies, panicking
    /// on a cycle.
    fn commit(m: &mut ReachMatrix, f: &[usize], b: &[usize]) -> usize {
        let c = m
            .validate(&dv(m.capacity(), f), &dv(m.capacity(), b))
            .expect("unexpected cycle");
        m.commit(&c)
    }

    #[test]
    fn first_commit_reaches_itself() {
        let mut m = ReachMatrix::new(8);
        let idx = commit(&mut m, &[], &[]);
        assert_eq!(idx, 0);
        assert!(m.reaches(0, 0));
        assert!(m.closure_invariant_holds());
    }

    #[test]
    fn chain_is_transitively_closed() {
        // t0 -> t1 -> t2 (each new txn is after the previous: b on prev).
        let mut m = ReachMatrix::new(8);
        commit(&mut m, &[], &[]);
        commit(&mut m, &[], &[0]);
        commit(&mut m, &[], &[1]);
        assert!(m.reaches(0, 2), "closure must include t0 -> t2");
        assert!(!m.reaches(2, 0));
        assert!(m.closure_invariant_holds());
    }

    #[test]
    fn forward_dep_orders_candidate_before() {
        // t0 commits; t1 has f = {0}: t1 ->rw t0 (t1 serialises BEFORE t0).
        let mut m = ReachMatrix::new(8);
        commit(&mut m, &[], &[]);
        commit(&mut m, &[0], &[]);
        assert!(m.reaches(1, 0), "t1 must reach t0");
        assert!(!m.reaches(0, 1));
    }

    #[test]
    fn direct_cycle_rejected() {
        let mut m = ReachMatrix::new(8);
        commit(&mut m, &[], &[]);
        let r = m.validate(&dv(8, &[0]), &dv(8, &[0]));
        assert_eq!(r.unwrap_err(), CycleDetected);
    }

    #[test]
    fn transitive_cycle_rejected() {
        // t0 -> t1 (b dep). Candidate t with f={1} (t -> t1) and b={0}
        // wait - that's fine: t0 -> t, t -> t1 requires t1 not reach t0.
        // Build the cyclic case: t0 -> t1; candidate with f={0} (t -> t0)
        // and b={1} (t1 -> t): then t -> t0 -> t1 -> t is a cycle.
        let mut m = ReachMatrix::new(8);
        commit(&mut m, &[], &[]);
        commit(&mut m, &[], &[0]); // t0 -> t1
        let r = m.validate(&dv(8, &[0]), &dv(8, &[1]));
        assert_eq!(r.unwrap_err(), CycleDetected, "t -> t0 -> t1 -> t");
    }

    #[test]
    fn reordering_allowed_without_cycle() {
        // The phantom-ordering scenario of Fig. 2(a): candidate reads a
        // version overwritten by t0, so candidate ->rw t0 is NOT required;
        // rather t0 overwrote what candidate read: candidate -> t0 (f).
        // TOCC with start timestamps would abort; ROCoCo commits.
        let mut m = ReachMatrix::new(8);
        commit(&mut m, &[], &[]);
        let c = m.validate(&dv(8, &[0]), &dv(8, &[])).expect("no cycle");
        let idx = m.commit(&c);
        assert!(m.reaches(idx, 0));
        assert!(m.closure_invariant_holds());
    }

    #[test]
    fn eviction_shifts_slots() {
        let mut m = ReachMatrix::new(4);
        commit(&mut m, &[], &[]); // t0
        commit(&mut m, &[], &[0]); // t1, t0 -> t1
        commit(&mut m, &[], &[1]); // t2, chain
        m.evict_oldest();
        assert_eq!(m.len(), 2);
        // Old t1 is now slot 0, old t2 slot 1; t1 -> t2 must survive.
        assert!(m.reaches(0, 1));
        assert!(!m.reaches(1, 0));
        assert!(m.closure_invariant_holds());
    }

    #[test]
    fn fill_evict_refill() {
        let mut m = ReachMatrix::new(4);
        for _ in 0..4 {
            let prev: Vec<usize> = if m.is_empty() {
                vec![]
            } else {
                vec![m.len() - 1]
            };
            commit(&mut m, &[], &prev);
        }
        assert!(m.is_full());
        m.evict_oldest();
        assert!(!m.is_full());
        commit(&mut m, &[], &[2]);
        assert!(m.is_full());
        assert!(m.closure_invariant_holds());
    }

    #[test]
    fn diamond_no_false_cycle() {
        // t0 -> t1, t0 -> t2, candidate after both: no cycle.
        let mut m = ReachMatrix::new(8);
        commit(&mut m, &[], &[]);
        commit(&mut m, &[], &[0]);
        commit(&mut m, &[], &[0]);
        let c = m
            .validate(&dv(8, &[]), &dv(8, &[1, 2]))
            .expect("diamond join");
        m.commit(&c);
        assert!(m.reaches(0, 3));
        assert!(m.closure_invariant_holds());
    }

    #[test]
    fn concurrent_transactions_stay_unrelated() {
        let mut m = ReachMatrix::new(8);
        commit(&mut m, &[], &[]);
        commit(&mut m, &[], &[]); // no deps: concurrent with t0
        assert!(!m.reaches(0, 1));
        assert!(!m.reaches(1, 0));
    }

    #[test]
    #[should_panic(expected = "full")]
    fn commit_into_full_matrix_panics() {
        let mut m = ReachMatrix::new(1);
        commit(&mut m, &[], &[]);
        let c = Closure {
            p: DepVec::new(1),
            s: DepVec::new(1),
        };
        m.commit(&c);
    }
}
