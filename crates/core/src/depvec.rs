//! Bit vectors over window slots (the `f`, `b`, `p`, `s` vectors of Fig. 4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A bit vector indexed by window slot, used for the adjacency vectors `f`
/// and `b` and the closure vectors `p` and `s` of the ROCoCo algorithm.
///
/// The capacity is fixed at construction (the window size `W`); all binary
/// operations require equal capacities.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DepVec {
    bits: usize,
    words: Vec<u64>,
}

impl DepVec {
    /// Creates an all-zero vector over `bits` slots.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn new(bits: usize) -> Self {
        assert!(bits > 0, "DepVec must have at least one slot");
        Self {
            bits,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.bits
    }

    /// Sets slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.bits, "slot {i} out of range {}", self.bits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        assert!(i < self.bits, "slot {i} out of range {}", self.bits);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.bits, "slot {i} out of range {}", self.bits);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Whether every slot is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set slots.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Clears all slots.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// In-place OR (`self |= other`).
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn or_with(&mut self, other: &DepVec) {
        assert_eq!(self.bits, other.bits, "DepVec capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether `self & other` is non-zero — the cycle-detection test
    /// `p ∧ s ≠ 0` of Figure 4(a).
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn intersects(&self, other: &DepVec) -> bool {
        assert_eq!(self.bits, other.bits, "DepVec capacity mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Shifts the vector one slot towards zero (slot 0 falls off), modelling
    /// the register shift when the sliding window evicts its oldest
    /// transaction.
    pub fn shift_down(&mut self) {
        let n = self.words.len();
        for i in 0..n {
            let carry = if i + 1 < n {
                self.words[i + 1] << 63
            } else {
                0
            };
            self.words[i] = (self.words[i] >> 1) | carry;
        }
        // Mask off any bit that may have been shifted past the capacity.
        self.mask_tail();
    }

    fn mask_tail(&mut self) {
        let rem = self.bits % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }

    /// Iterates the indices of set slots in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Raw word view.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for DepVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DepVec{{")?;
        let mut first = true;
        for i in self.iter_ones() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}/{}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = DepVec::new(100);
        for i in [0usize, 1, 63, 64, 65, 99] {
            assert!(!v.get(i));
            v.set(i);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 6);
        v.unset(64);
        assert!(!v.get(64));
    }

    #[test]
    fn intersects_and_or() {
        let mut a = DepVec::new(64);
        let mut b = DepVec::new(64);
        a.set(3);
        b.set(7);
        assert!(!a.intersects(&b));
        a.or_with(&b);
        assert!(a.intersects(&b));
        assert!(a.get(3) && a.get(7));
    }

    #[test]
    fn shift_down_drops_slot_zero() {
        let mut v = DepVec::new(130);
        v.set(0);
        v.set(64);
        v.set(129);
        v.shift_down();
        assert!(!v.get(0));
        assert!(v.get(63), "bit 64 must move to 63");
        assert!(v.get(128), "bit 129 must move to 128");
        assert!(!v.get(129));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn shift_down_of_slot_one_lands_on_zero() {
        let mut v = DepVec::new(64);
        v.set(1);
        v.shift_down();
        assert!(v.get(0));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut v = DepVec::new(200);
        for i in [5usize, 64, 70, 199] {
            v.set(i);
        }
        let ones: Vec<_> = v.iter_ones().collect();
        assert_eq!(ones, vec![5, 64, 70, 199]);
    }

    #[test]
    fn debug_format_lists_bits() {
        let mut v = DepVec::new(8);
        v.set(2);
        assert_eq!(format!("{v:?}"), "DepVec{2}/8");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        DepVec::new(10).set(10);
    }
}
