//! The ROCoCo validator: matrix + window bundled behind a sequence-number
//! interface.

use crate::depvec::DepVec;
use crate::matrix::ReachMatrix;
use crate::window::{Seq, SlidingWindow};
use std::fmt;

/// Why a transaction was rejected by the validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// Committing would create a cycle in `→rw` (a true serializability
    /// violation — every CC algorithm must abort this transaction).
    Cycle,
    /// The transaction's snapshot predates the sliding window: commits it
    /// has not observed were already evicted, so its dependencies can no
    /// longer be tracked ("transactions that neglect updates of `t_{k−W}`
    /// abort", section 4.2).
    WindowOverflow,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Cycle => write!(f, "dependency cycle detected"),
            RejectReason::WindowOverflow => write!(f, "snapshot older than the sliding window"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// Validation outcome for one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Commit granted; the transaction received this global sequence number.
    Committed(Seq),
    /// Commit denied.
    Rejected(RejectReason),
}

impl Verdict {
    /// Whether the verdict is a commit.
    pub fn is_commit(&self) -> bool {
        matches!(self, Verdict::Committed(_))
    }
}

/// The R/W dependencies of a candidate transaction, expressed against global
/// commit sequence numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnDeps {
    /// The candidate has observed every commit with `seq < snapshot` (the
    /// CPU side's `ValidTS`).
    pub snapshot: Seq,
    /// Commits the candidate must *precede* (`t →rw tᵢ`): transactions that
    /// overwrote data the candidate read from an older version. Only commits
    /// with `seq >= snapshot` can appear here.
    pub forward: Vec<Seq>,
    /// Commits the candidate must *succeed* (`tᵢ →rw t`): transactions whose
    /// updates the candidate read, whose reads the candidate overwrites, or
    /// whose writes the candidate overwrites.
    pub backward: Vec<Seq>,
}

/// A ROCoCo validator: the reachability matrix and the sliding window of
/// per-commit bookkeeping entries `T`, kept in lockstep.
///
/// This is the *algorithmic* validator used directly by the trace-driven CC
/// simulators; the FPGA pipeline model in `rococo-fpga` wraps it with
/// signature-based conflict detection and timing.
#[derive(Debug, Clone)]
pub struct RococoValidator<T> {
    matrix: ReachMatrix,
    window: SlidingWindow<T>,
    /// Window slots that must precede every future candidate.
    ///
    /// When a transaction `tᵢ` is evicted, pairs involving `tᵢ` fall back to
    /// *strict* serializability (section 5.1): `tᵢ` is ordered before every
    /// future transaction. Any window transaction `tⱼ` that reaches `tᵢ`
    /// therefore also precedes every future candidate; recording `tⱼ` here
    /// (and OR-ing the vector into each candidate's backward vector)
    /// preserves those constraints after the matrix forgets `tᵢ`.
    pinned: DepVec,
}

impl<T> RococoValidator<T> {
    /// Creates a validator with window capacity `w` (the paper uses 64).
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(w: usize) -> Self {
        Self {
            matrix: ReachMatrix::new(w),
            window: SlidingWindow::new(w),
            pinned: DepVec::new(w),
        }
    }

    /// Window capacity `W`.
    pub fn capacity(&self) -> usize {
        self.matrix.capacity()
    }

    /// The sliding window of bookkeeping entries (oldest first).
    pub fn window(&self) -> &SlidingWindow<T> {
        &self.window
    }

    /// The reachability matrix (slot-indexed; slots align with the window).
    pub fn matrix(&self) -> &ReachMatrix {
        &self.matrix
    }

    /// Sequence number the next committed transaction will receive.
    pub fn next_seq(&self) -> Seq {
        self.window.next_seq()
    }

    /// Oldest sequence still tracked, if any.
    pub fn oldest_seq(&self) -> Option<Seq> {
        self.window.oldest_seq()
    }

    /// Checks whether a transaction with the given snapshot could still be
    /// validated, or would be rejected for window overflow.
    pub fn snapshot_in_window(&self, snapshot: Seq) -> bool {
        match self.window.oldest_seq() {
            Some(oldest) => snapshot >= oldest,
            None => true,
        }
    }

    /// Validates a candidate and, on success, commits it with bookkeeping
    /// `entry`, returning its sequence number.
    ///
    /// # Errors
    ///
    /// * [`RejectReason::WindowOverflow`] if the snapshot predates the
    ///   window or a forward dependency targets an evicted commit;
    /// * [`RejectReason::Cycle`] if committing would create a dependency
    ///   cycle.
    pub fn validate_and_commit(&mut self, deps: &TxnDeps, entry: T) -> Result<Seq, RejectReason> {
        if !self.snapshot_in_window(deps.snapshot) {
            return Err(RejectReason::WindowOverflow);
        }

        let cap = self.matrix.capacity();
        let mut f = DepVec::new(cap);
        for &seq in &deps.forward {
            match self.window.slot_of(seq) {
                Some(slot) => f.set(slot),
                // A forward dependency on an evicted commit can no longer be
                // ordered; with the snapshot check this should not occur,
                // but a caller racing the window must abort.
                None => return Err(RejectReason::WindowOverflow),
            }
        }
        let mut b = DepVec::new(cap);
        for &seq in &deps.backward {
            if let Some(slot) = self.window.slot_of(seq) {
                b.set(slot);
            }
            // A backward dependency on an evicted commit is satisfied by
            // construction: evicted transactions are strictly serialised
            // before every candidate. Transactions that *reach* evicted
            // commits are covered by the pinned vector below.
        }
        // Everything that reaches an evicted commit precedes the candidate.
        b.or_with(&self.pinned);

        let mut closure = self
            .matrix
            .validate(&f, &b)
            .map_err(|_| RejectReason::Cycle)?;

        let mut candidate_pinned = false;
        if self.matrix.is_full() {
            // Before the oldest commit t₀ is forgotten, everything that
            // reaches it inherits its must-precede-the-future constraint
            // (slot 0 itself falls off, so only survivors matter).
            for j in 1..self.matrix.len() {
                if self.matrix.reaches(j, 0) {
                    self.pinned.set(j);
                }
            }
            // If the candidate itself serialises before t₀, it too must
            // precede every future transaction.
            candidate_pinned = closure.p.get(0);
            // Slot indices shift by one when the oldest commit is evicted;
            // the in-flight vectors shift with them, exactly like the
            // register shift of the hardware pipeline (Figure 5).
            self.matrix.evict_oldest();
            closure.p.shift_down();
            closure.s.shift_down();
            self.pinned.shift_down();
        }
        let slot = self.matrix.commit(&closure);
        if candidate_pinned {
            self.pinned.set(slot);
        }
        let (seq, _evicted) = self.window.push(entry);
        debug_assert_eq!(Some(slot), self.window.slot_of(seq), "matrix/window skew");
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deps(snapshot: Seq, forward: &[Seq], backward: &[Seq]) -> TxnDeps {
        TxnDeps {
            snapshot,
            forward: forward.to_vec(),
            backward: backward.to_vec(),
        }
    }

    #[test]
    fn independent_commits_get_sequential_seqs() {
        let mut v: RococoValidator<()> = RococoValidator::new(4);
        for i in 0..3 {
            let seq = v.validate_and_commit(&deps(i, &[], &[]), ()).unwrap();
            assert_eq!(seq, i);
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let mut v: RococoValidator<()> = RococoValidator::new(4);
        v.validate_and_commit(&deps(0, &[], &[]), ()).unwrap();
        let err = v.validate_and_commit(&deps(0, &[0], &[0]), ()).unwrap_err();
        assert_eq!(err, RejectReason::Cycle);
    }

    #[test]
    fn stale_snapshot_overflows() {
        let mut v: RococoValidator<()> = RococoValidator::new(2);
        for i in 0..3 {
            v.validate_and_commit(&deps(i, &[], &[]), ()).unwrap();
        }
        // Window now holds seqs {1, 2}; snapshot 0 predates it.
        let err = v.validate_and_commit(&deps(0, &[], &[]), ()).unwrap_err();
        assert_eq!(err, RejectReason::WindowOverflow);
        // Snapshot 1 is still fine.
        v.validate_and_commit(&deps(1, &[], &[1]), ()).unwrap();
    }

    #[test]
    fn backward_dep_on_evicted_commit_is_dropped() {
        let mut v: RococoValidator<()> = RococoValidator::new(2);
        for i in 0..3 {
            v.validate_and_commit(&deps(i, &[], &[]), ()).unwrap();
        }
        // seq 0 is evicted; a backward edge to it is harmless.
        let seq = v.validate_and_commit(&deps(3, &[], &[0, 2]), ()).unwrap();
        assert_eq!(seq, 3);
    }

    #[test]
    fn transitive_cycle_across_commits() {
        let mut v: RococoValidator<()> = RococoValidator::new(8);
        v.validate_and_commit(&deps(0, &[], &[]), ()).unwrap(); // t0
        v.validate_and_commit(&deps(0, &[], &[0]), ()).unwrap(); // t0 -> t1
                                                                 // Candidate: t -> t0 (forward), t1 -> t (backward): cycle.
        let err = v.validate_and_commit(&deps(0, &[0], &[1]), ()).unwrap_err();
        assert_eq!(err, RejectReason::Cycle);
        // But t -> t0 alone is the phantom-ordering case ROCoCo admits.
        v.validate_and_commit(&deps(0, &[0], &[]), ()).unwrap();
    }

    #[test]
    fn bookkeeping_entries_follow_commits() {
        let mut v: RococoValidator<&'static str> = RococoValidator::new(2);
        v.validate_and_commit(&deps(0, &[], &[]), "a").unwrap();
        v.validate_and_commit(&deps(1, &[], &[]), "b").unwrap();
        v.validate_and_commit(&deps(2, &[], &[]), "c").unwrap();
        assert_eq!(v.window().get_seq(1), Some(&"b"));
        assert_eq!(v.window().get_seq(2), Some(&"c"));
        assert_eq!(v.window().get_seq(0), None);
    }

    #[test]
    fn cycle_through_evicted_commit_is_still_caught() {
        // W = 2. t1 serialises BEFORE t0 (forward edge); t0 is then
        // evicted. A later candidate with a forward edge to t1 would close
        // the cycle candidate -> t1 -> t0 -> (strict order) -> candidate;
        // the pinned vector must catch it even though t0 is forgotten.
        let mut v: RococoValidator<()> = RococoValidator::new(2);
        v.validate_and_commit(&deps(0, &[], &[]), ()).unwrap(); // t0
        v.validate_and_commit(&deps(0, &[0], &[]), ()).unwrap(); // t1 -> t0
        v.validate_and_commit(&deps(1, &[], &[]), ()).unwrap(); // t2 evicts t0
        let err = v.validate_and_commit(&deps(1, &[1], &[]), ()).unwrap_err();
        assert_eq!(err, RejectReason::Cycle);
    }

    #[test]
    fn pinning_does_not_block_forward_progress() {
        // After heavy eviction, ordinary transactions with fresh snapshots
        // still commit.
        let mut v: RococoValidator<()> = RococoValidator::new(2);
        for i in 0..20 {
            v.validate_and_commit(&deps(i, &[], &[i.saturating_sub(1)]), ())
                .unwrap();
        }
        assert_eq!(v.next_seq(), 20);
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::Committed(3).is_commit());
        assert!(!Verdict::Rejected(RejectReason::Cycle).is_commit());
    }
}
