//! The ROCoCo algorithm — Reachability-based Optimistic Concurrency Control.
//!
//! This crate implements the paper's core contribution (section 4):
//! validating the *acyclicity* of the transactional happens-before relation
//! `→rw` directly — without timestamps — by incrementally maintaining the
//! transitive closure (reachability) of committed transactions as a bit
//! matrix.
//!
//! For each candidate transaction `t` the caller supplies two bit vectors
//! over the window of previously committed transactions:
//!
//! * `f` (*forward*): `f[i]` ⇔ `t →rw tᵢ` — `t` must be ordered before `tᵢ`
//!   (e.g. `t` read a version that `tᵢ` later overwrote);
//! * `b` (*backward*): `b[i]` ⇔ `tᵢ →rw t` — `t` must be ordered after `tᵢ`
//!   (e.g. `t` read `tᵢ`'s update, or overwrites what `tᵢ` wrote/read).
//!
//! Using Warshall's fact and its dual, the *proceeding* vector
//! `p = f ∨ Rᵀf` (everything `t` reaches) and the *succeeding* vector
//! `s = b ∨ Rb` (everything that reaches `t`) are computed with `O(W)` word
//! operations; a cycle exists iff `p ∧ s ≠ 0` ([`ReachMatrix::validate`]).
//! On commit the matrix is extended with `p` and `s` as the new row and
//! column, and existing entries are closed over the new element
//! ([`ReachMatrix::commit`]).
//!
//! Because hardware resources are bounded, ROCoCo maintains a **sliding
//! window** of the last `W` committed transactions ([`SlidingWindow`],
//! paper's Figure 5, `W = 64`); transactions whose snapshot predates the
//! window must abort ([`RejectReason::WindowOverflow`]).
//!
//! The [`order`] module provides the order-theoretic vocabulary of section 3
//! (conflict graphs, acyclicity ⟺ serializability, interval orders and the
//! phantom ordering) used by tests and by the trace-driven simulators in
//! `rococo-cc`.
//!
//! # Example
//!
//! ```
//! use rococo_core::{DepVec, ReachMatrix};
//!
//! let mut m = ReachMatrix::new(64);
//! // First transaction commits unconditionally.
//! let empty = DepVec::new(64);
//! let c = m.validate(&empty, &empty).expect("no deps, no cycle");
//! m.commit(&c);
//!
//! // A transaction that must precede AND succeed transaction 0 is cyclic.
//! let mut f = DepVec::new(64);
//! let mut b = DepVec::new(64);
//! f.set(0);
//! b.set(0);
//! assert!(m.validate(&f, &b).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod depvec;
mod matrix;
pub mod order;
mod validator;
mod window;

pub use depvec::DepVec;
pub use matrix::{Closure, CycleDetected, ReachMatrix};
pub use validator::{RejectReason, RococoValidator, TxnDeps, Verdict};
pub use window::{Seq, SlidingWindow};
