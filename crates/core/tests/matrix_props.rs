//! Property tests: the ROCoCo validator against a brute-force oracle.
//!
//! The oracle maintains the *full* dependency graph over every committed
//! transaction (never forgetting evicted ones, and adding the strict
//! edges `evicted → future` the sliding window imposes). Soundness:
//! whenever the validator admits a transaction, the oracle graph must
//! remain acyclic.

use proptest::prelude::*;
use rococo_core::order::DiGraph;
use rococo_core::{RejectReason, RococoValidator, TxnDeps};

/// One randomly-shaped candidate: which recent commits it precedes /
/// succeeds, as offsets from the newest commit.
#[derive(Debug, Clone)]
struct Candidate {
    snapshot_back: u64,
    forward_back: Vec<u64>,
    backward_back: Vec<u64>,
}

fn candidate() -> impl Strategy<Value = Candidate> {
    (
        0u64..6,
        prop::collection::vec(0u64..8, 0..3),
        prop::collection::vec(0u64..12, 0..4),
    )
        .prop_map(|(snapshot_back, forward_back, backward_back)| Candidate {
            snapshot_back,
            forward_back,
            backward_back,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn validator_is_sound_under_random_histories(
        window in 2usize..10,
        cands in prop::collection::vec(candidate(), 1..60),
    ) {
        let mut v: RococoValidator<()> = RococoValidator::new(window);
        // Oracle: global graph over commit sequence numbers. Node i is
        // commit seq i; extra strict edges evicted -> all later commits.
        let cap = cands.len() + 1;
        let mut oracle = DiGraph::new(cap);
        let mut committed: Vec<(Vec<u64>, Vec<u64>)> = Vec::new(); // (f,b) per seq

        for cand in &cands {
            let next = v.next_seq();
            if next == 0 {
                let seq = v
                    .validate_and_commit(&TxnDeps::default(), ())
                    .expect("first commit is unconditional");
                assert_eq!(seq, 0);
                committed.push((vec![], vec![]));
                continue;
            }
            let newest = next - 1;
            let snapshot = newest.saturating_sub(cand.snapshot_back) + 1;
            // Forward deps must target unobserved commits (seq >= snapshot).
            let forward: Vec<u64> = cand
                .forward_back
                .iter()
                .map(|&b| newest.saturating_sub(b))
                .filter(|&s| s >= snapshot)
                .collect();
            let backward: Vec<u64> = cand
                .backward_back
                .iter()
                .map(|&b| newest.saturating_sub(b))
                .collect();
            let deps = TxnDeps { snapshot, forward: forward.clone(), backward: backward.clone() };
            // Strict order applies to commits already evicted when the
            // candidate validates (its own commit may evict a transaction
            // it legitimately precedes, so capture `oldest` first).
            let oldest_before = v.oldest_seq().unwrap_or(0);
            match v.validate_and_commit(&deps, ()) {
                Ok(seq) => {
                    let me = seq as usize;
                    for old in 0..oldest_before {
                        oracle.add_edge(old as usize, me);
                    }
                    for &f in &forward {
                        oracle.add_edge(me, f as usize);
                    }
                    for &b in &backward {
                        oracle.add_edge(b as usize, me);
                    }
                    committed.push((forward, backward));
                    prop_assert!(
                        oracle.is_acyclic(),
                        "validator admitted a transaction that closes a cycle \
                         (seq {seq}, window {window})"
                    );
                }
                Err(RejectReason::Cycle | RejectReason::WindowOverflow) => {
                    // Rejections are always safe; completeness is bounded
                    // by the window and the pinned-vector conservatism.
                }
            }
        }

        // The matrix invariant must hold at the end as well.
        prop_assert!(v.matrix().closure_invariant_holds());
    }

    #[test]
    fn matrix_matches_bruteforce_reachability(
        // Chain/jump structure: each new txn depends backward on a random
        // subset of live slots.
        deps in prop::collection::vec(prop::collection::vec(0usize..6, 0..3), 1..12),
    ) {
        use rococo_core::{DepVec, ReachMatrix};
        let w = 16;
        let mut m = ReachMatrix::new(w);
        let mut edges: Vec<(usize, usize)> = Vec::new(); // slot-level, no eviction (n < w)
        for (i, ds) in deps.iter().enumerate() {
            let mut b = DepVec::new(w);
            for &d in ds {
                if d < i {
                    b.set(d);
                    edges.push((d, i));
                }
            }
            let c = m.validate(&DepVec::new(w), &b).expect("backward-only deps are acyclic");
            m.commit(&c);
        }
        // Brute-force closure.
        let n = deps.len();
        let mut g = DiGraph::new(n);
        for &(u, vtx) in &edges {
            g.add_edge(u, vtx);
        }
        for i in 0..n {
            for j in 0..n {
                let expect = i == j || g.reaches(i, j);
                prop_assert_eq!(
                    m.reaches(i, j),
                    expect,
                    "reachability mismatch at ({}, {})", i, j
                );
            }
        }
    }
}
