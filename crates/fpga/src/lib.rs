//! Cycle-level simulator of the ROCoCoTM FPGA validation pipeline.
//!
//! The paper offloads the centralized validation phase of ROCoCo to an
//! Arria 10 FPGA on Intel HARP2 (sections 4.2 and 5). This crate substitutes
//! a software model that is **bit-exact in its decisions** and
//! **stage-accurate in its timing**:
//!
//! * [`ValidationEngine`] — the functional model: the *Detector* queries a
//!   transaction's read/write addresses against the bloom-signature history
//!   of the last `W` commits to build the `f`/`b` dependency vectors, and
//!   the *Manager* validates them against the reachability matrix
//!   ([`rococo_core::RococoValidator`]) and slides the window (Figure 5).
//! * [`PipelinedValidator`] — wraps the engine with a timing model
//!   ([`TimingModel`]): a fully pipelined datapath with an initiation
//!   interval of one clock cycle at 200 MHz, plus the CCI round-trip latency
//!   of the HARP2 interconnect (< 600 ns, footnote 8). Used by the
//!   Figure 11 overhead study.
//! * [`ValidationService`] — a dedicated validator thread connected by
//!   message queues, playing the role of the physical FPGA inside the live
//!   `rococo-stm` runtime (the pull/push queues of Figure 6).
//! * [`resources`] — the analytical resource model reproducing the
//!   section 6.5 utilisation table.
//!
//! # Example
//!
//! ```
//! use rococo_fpga::{EngineConfig, ValidateRequest, ValidationEngine};
//!
//! let mut engine = ValidationEngine::new(EngineConfig::default());
//! let verdict = engine.process(&ValidateRequest {
//!     tx_id: 1,
//!     valid_ts: 0,
//!     read_addrs: vec![0x10],
//!     write_addrs: vec![0x20],
//! });
//! assert!(verdict.is_commit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod fault;
mod pipeline;
pub mod resources;
mod service;

pub use engine::{
    EngineConfig, EngineStats, FpgaVerdict, HistoryEntry, ValidateRequest, ValidationEngine,
};
pub use fault::{FaultConfig, FaultSnapshot, FaultStats};
pub use pipeline::{PipelineStats, PipelinedValidator, TimingModel};
pub use service::{PendingVerdict, ServiceHandle, ValidationService};
