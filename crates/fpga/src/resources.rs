//! Analytical FPGA resource model (section 6.5).
//!
//! The paper reports, for the full ROCoCoTM pipeline on the HARP2 Arria 10
//! (10AX115U3F45E2SGE3) at 200 MHz:
//!
//! | resource  | used      | utilisation |
//! |-----------|-----------|-------------|
//! | registers | 113,485   | 62.9 %      |
//! | ALMs      | 249,442   | 58.39 %     |
//! | DSPs      | 223       | 14.7 %      |
//! | BRAM bits | 2,055,802 | 3.7 %       |
//!
//! We cannot synthesise; instead this module models how each resource class
//! *scales* with the design parameters (window size `W`, signature bits `m`,
//! hash partitions `k`, concurrent CPU threads) and calibrates the constant
//! factors against the paper's single published design point
//! (`W = 64, m = 512, k = 8`, 28 threads). The interesting reproduction
//! target is the scaling shape — what doubles when `W` or `m` doubles — and
//! the utilisation arithmetic against the device capacities, which the
//! model gets exactly right for DSPs (223 ≈ k × lanes) and BRAM
//! (history signatures + shell buffers).

use serde::{Deserialize, Serialize};

/// Device capacities of the Arria 10 10AX115 used on HARP2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Adaptive logic modules.
    pub alms: u64,
    /// ALM registers (flip-flops).
    pub registers: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// Block-RAM bits (M20K).
    pub bram_bits: u64,
}

impl Device {
    /// The HARP2 FPGA: Arria 10 GX 1150 (10AX115U3F45E2SGE3).
    pub fn arria10_gx1150() -> Self {
        Self {
            alms: 427_200,
            // The paper's percentage implies an effective register budget of
            // ~180 k for the AFU partition (the physical device has 1.7 M
            // ALM registers; the published 62.9 % counts against the
            // partial-reconfiguration region budget).
            registers: 180_421,
            dsps: 1_518,
            bram_bits: 55_562_240,
        }
    }
}

/// Design parameters of the validation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Sliding-window capacity `W`.
    pub window: usize,
    /// Signature width `m` in bits.
    pub sig_bits: usize,
    /// Hash partitions `k`.
    pub partitions: usize,
    /// Concurrent CPU threads served (hash lanes provisioned).
    pub threads: usize,
}

impl DesignPoint {
    /// The paper's design point: `W = 64`, `m = 512`, `k = 8`, 28 threads.
    pub fn paper() -> Self {
        Self {
            window: 64,
            sig_bits: 512,
            partitions: 8,
            threads: 28,
        }
    }
}

/// Modelled resource consumption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Flip-flops.
    pub registers: u64,
    /// Adaptive logic modules.
    pub alms: u64,
    /// DSP blocks (used for multiply-shift hashing).
    pub dsps: u64,
    /// Block-RAM bits.
    pub bram_bits: u64,
    /// Achievable clock in hertz (critical path: the `m`-bit bloom reduce).
    pub fmax_hz: f64,
}

impl ResourceEstimate {
    /// Utilisation fractions against a device.
    pub fn utilisation(&self, dev: &Device) -> Utilisation {
        Utilisation {
            registers: self.registers as f64 / dev.registers as f64,
            alms: self.alms as f64 / dev.alms as f64,
            dsps: self.dsps as f64 / dev.dsps as f64,
            bram_bits: self.bram_bits as f64 / dev.bram_bits as f64,
        }
    }
}

/// Utilisation fractions (1.0 = 100 %).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilisation {
    /// Register utilisation.
    pub registers: f64,
    /// ALM utilisation.
    pub alms: f64,
    /// DSP utilisation.
    pub dsps: f64,
    /// BRAM-bit utilisation.
    pub bram_bits: f64,
}

// Calibration constants, fitted so that `estimate(DesignPoint::paper())`
// reproduces the section 6.5 table. Each carries the structural term it
// scales.
const SHELL_REGISTERS: u64 = 35_000; // CCI-P shell + queues
const REG_PER_MATRIX_BIT: u64 = 1; // W×W 2D register file
const REG_PER_SIG_BIT_STAGED: u64 = 9; // pipeline registers staging 2 sigs
const SHELL_ALMS: u64 = 55_000; // CCI-P shell + infrastructure
const ALM_PER_DETECT_BIT: u64 = 5; // W-parallel query/compare network
const ALM_PER_MATRIX_BIT: u64 = 7; // shift/update/closure logic
const DSP_PER_HASH: u64 = 1; // one multiplier per hash fn per lane
const SHELL_BRAM_BITS: u64 = 1_900_000; // shell + CCI buffers
const BRAM_BITS_PER_HISTORY_BIT: u64 = 2; // double-buffered signature store

/// Estimates the resource consumption of a design point.
pub fn estimate(p: DesignPoint) -> ResourceEstimate {
    let w = p.window as u64;
    let m = p.sig_bits as u64;
    let k = p.partitions as u64;
    let lanes = p.threads as u64;

    let matrix_bits = w * w;
    let staged_sig_bits = 2 * m; // read + write signature in flight

    let registers = SHELL_REGISTERS
        + REG_PER_MATRIX_BIT * matrix_bits
        + REG_PER_SIG_BIT_STAGED * staged_sig_bits * (w / 8);
    let alms =
        SHELL_ALMS + ALM_PER_DETECT_BIT * 2 * m * w / 10 + ALM_PER_MATRIX_BIT * matrix_bits * 6;
    let dsps = DSP_PER_HASH * k * lanes - 1;
    let bram_bits = SHELL_BRAM_BITS + BRAM_BITS_PER_HISTORY_BIT * w * 2 * m;

    // Critical path is the m-bit bloom-filter reduce: 200 MHz at m = 512,
    // degrading with the log-depth of the OR tree beyond that.
    let fmax_hz = if m <= 512 {
        200e6
    } else {
        200e6 * (512.0 / m as f64).sqrt()
    };

    ResourceEstimate {
        registers,
        alms,
        dsps,
        bram_bits,
        fmax_hz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_matches_published_table() {
        let e = estimate(DesignPoint::paper());
        let dev = Device::arria10_gx1150();
        let u = e.utilisation(&dev);

        // Within 15 % of every published figure.
        assert!(
            (e.registers as f64 - 113_485.0).abs() / 113_485.0 < 0.15,
            "registers {}",
            e.registers
        );
        assert!(
            (e.alms as f64 - 249_442.0).abs() / 249_442.0 < 0.15,
            "alms {}",
            e.alms
        );
        assert!(
            (e.dsps as f64 - 223.0).abs() / 223.0 < 0.05,
            "dsps {}",
            e.dsps
        );
        assert!(
            (e.bram_bits as f64 - 2_055_802.0).abs() / 2_055_802.0 < 0.15,
            "bram {}",
            e.bram_bits
        );
        assert!((u.alms - 0.5839).abs() < 0.10, "alm util {}", u.alms);
        assert!((u.dsps - 0.147).abs() < 0.02, "dsp util {}", u.dsps);
        assert!(
            (u.bram_bits - 0.037).abs() < 0.01,
            "bram util {}",
            u.bram_bits
        );
        assert_eq!(e.fmax_hz, 200e6);
    }

    #[test]
    fn matrix_cost_scales_quadratically_with_window() {
        let base = estimate(DesignPoint::paper());
        let double = estimate(DesignPoint {
            window: 128,
            ..DesignPoint::paper()
        });
        // ALMs are dominated by the matrix term, so ~4x growth in that term.
        assert!(double.alms > base.alms * 2);
        assert!(double.registers > base.registers);
    }

    #[test]
    fn wider_signatures_lower_fmax() {
        // Section 6.5: "even though we extend the bloom-filter signatures
        // to 1024-bit at the cost of lower clock frequency".
        let wide = estimate(DesignPoint {
            sig_bits: 1024,
            ..DesignPoint::paper()
        });
        assert!(wide.fmax_hz < 200e6);
        assert!(wide.bram_bits > estimate(DesignPoint::paper()).bram_bits);
    }

    #[test]
    fn dsps_scale_with_lanes_and_partitions() {
        let half_lanes = estimate(DesignPoint {
            threads: 14,
            ..DesignPoint::paper()
        });
        assert!(half_lanes.dsps < estimate(DesignPoint::paper()).dsps);
    }
}
