//! The validator thread: the simulated FPGA inside the live TM runtime.
//!
//! ROCoCoTM cascades CPU execution/commit stages and FPGA detect/manage
//! stages through two asynchronous message queues (the pull/push queues of
//! Figure 6) so that communication latency is amortised by overlapping
//! transactions. Here the "FPGA" is a dedicated thread owning a
//! [`ValidationEngine`]; workers submit [`ValidateRequest`]s over a
//! multi-producer channel and receive their [`FpgaVerdict`] over a
//! per-request reply channel.
//!
//! The service optionally runs with a seeded [`FaultConfig`] (chaos
//! testing): verdicts can be delayed, serviced out of submission order,
//! or spuriously rejected, and the validator can stall — all without
//! touching the engine's state, so the CPU-side protocol is exercised
//! under pathological FPGA timing that stays semantically legal.

use crate::engine::{EngineConfig, EngineStats, FpgaVerdict, ValidateRequest, ValidationEngine};
use crate::fault::{FaultConfig, FaultRng, FaultSnapshot, FaultStats};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

enum Msg {
    Validate(ValidateRequest, Sender<FpgaVerdict>),
    Snapshot(Sender<EngineStats>),
    Stop,
}

/// A handle for submitting validation requests to the service. Cheap to
/// clone; one per worker thread.
#[derive(Clone)]
pub struct ServiceHandle {
    tx: Sender<Msg>,
    in_flight: Arc<AtomicU64>,
    faults: Arc<FaultStats>,
    /// Last successfully scraped engine snapshot, shared by every clone.
    /// Refreshed on each [`ServiceHandle::stats`] round-trip and once more
    /// with the final counters when the validator thread exits, so metrics
    /// scrapes racing teardown still see the complete run.
    last_stats: Arc<RwLock<EngineStats>>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .finish()
    }
}

impl ServiceHandle {
    /// Submits a request and blocks until the verdict arrives (execution
    /// threads in ROCoCoTM "send R/W-set to FPGA and wait for verdict").
    ///
    /// If the validator thread has shut down — or dies while the request
    /// is outstanding — this returns [`FpgaVerdict::ServiceStopped`]
    /// instead of panicking, so a worker blocked here during service
    /// teardown gets a clean abort path.
    pub fn validate(&self, req: ValidateRequest) -> FpgaVerdict {
        let (reply_tx, reply_rx) = bounded(1);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let verdict = if self.tx.send(Msg::Validate(req, reply_tx)).is_err() {
            FpgaVerdict::ServiceStopped
        } else {
            reply_rx.recv().unwrap_or(FpgaVerdict::ServiceStopped)
        };
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        verdict
    }

    /// Submits a request without waiting; returns a [`PendingVerdict`] so
    /// the caller can overlap other work (meta-pipelining).
    ///
    /// Async submitters count toward [`ServiceHandle::in_flight`] exactly
    /// like blocking ones: the counter is incremented here and released
    /// when the verdict is delivered (or the pending handle is dropped),
    /// so admission-control layers watching the load signal see every
    /// outstanding validation, not just the blocking ones.
    pub fn validate_async(&self, req: ValidateRequest) -> PendingVerdict {
        let (reply_tx, reply_rx) = bounded(1);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let failed = self.tx.send(Msg::Validate(req, reply_tx)).is_err();
        PendingVerdict {
            rx: reply_rx,
            in_flight: Arc::clone(&self.in_flight),
            settled: failed.then_some(FpgaVerdict::ServiceStopped),
            released: false,
        }
    }

    /// Number of validations currently waiting for a verdict across *all*
    /// clients of this engine, blocking and asynchronous alike. A cheap
    /// load signal: service layers shed or delay work when the shared
    /// validator backs up.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Number of submitted requests the validator thread has not yet
    /// dequeued (queue depth of the pull queue of Figure 6).
    pub fn queue_depth(&self) -> usize {
        self.tx.len()
    }

    /// Counters of injected faults so far (all zero unless the service
    /// was spawned with fault injection enabled).
    pub fn fault_stats(&self) -> FaultSnapshot {
        self.faults.snapshot()
    }

    /// Reads the engine's statistics (round-trips through the thread).
    ///
    /// Returns `None` when the validator thread has shut down — a metrics
    /// scrape racing service teardown must degrade, not panic, exactly like
    /// every other path degrades to [`FpgaVerdict::ServiceStopped`]. Callers
    /// that want a best-effort answer fall back to
    /// [`ServiceHandle::last_stats`].
    pub fn stats(&self) -> Option<EngineStats> {
        let (tx, rx) = bounded(1);
        self.tx.send(Msg::Snapshot(tx)).ok()?;
        let stats = rx.recv().ok()?;
        *self.last_stats.write() = stats;
        Some(stats)
    }

    /// The last engine snapshot any clone of this handle observed (zeroed
    /// counters if the engine was never scraped). Once the service has shut
    /// down this holds the final end-of-run statistics.
    pub fn last_stats(&self) -> EngineStats {
        *self.last_stats.read()
    }
}

/// An outstanding asynchronous validation. Holds one slot of the service's
/// `in_flight` load signal until the verdict is delivered or the handle is
/// dropped.
#[derive(Debug)]
pub struct PendingVerdict {
    rx: Receiver<FpgaVerdict>,
    in_flight: Arc<AtomicU64>,
    /// Pre-resolved verdict (submission already failed).
    settled: Option<FpgaVerdict>,
    /// Whether the in-flight slot has been released.
    released: bool,
}

impl PendingVerdict {
    /// Blocks until the verdict arrives. Returns
    /// [`FpgaVerdict::ServiceStopped`] if the service shut down first.
    pub fn wait(mut self) -> FpgaVerdict {
        if let Some(v) = self.settled {
            self.release();
            return v;
        }
        let v = self.rx.recv().unwrap_or(FpgaVerdict::ServiceStopped);
        self.release();
        v
    }

    /// Non-blocking poll: `None` while the verdict is still outstanding.
    pub fn try_wait(&mut self) -> Option<FpgaVerdict> {
        if let Some(v) = self.settled {
            self.release();
            return Some(v);
        }
        match self.rx.try_recv() {
            Ok(v) => {
                self.release();
                Some(v)
            }
            Err(_) => None,
        }
    }

    fn release(&mut self) {
        if !self.released {
            self.released = true;
            self.in_flight.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Drop for PendingVerdict {
    fn drop(&mut self) {
        self.release();
    }
}

/// The validator thread itself. Dropping it stops the thread after draining
/// queued requests.
pub struct ValidationService {
    handle: ServiceHandle,
    thread: Option<JoinHandle<EngineStats>>,
}

impl std::fmt::Debug for ValidationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValidationService").finish_non_exhaustive()
    }
}

impl ValidationService {
    /// Spawns the validator thread with the given engine configuration and
    /// no fault injection.
    pub fn spawn(config: EngineConfig) -> Self {
        Self::spawn_with_faults(config, FaultConfig::disabled())
    }

    /// Spawns the validator thread with seeded fault injection (chaos
    /// testing — see [`FaultConfig`]).
    pub fn spawn_with_faults(config: EngineConfig, faults: FaultConfig) -> Self {
        let (tx, rx) = unbounded::<Msg>();
        let fault_stats = Arc::new(FaultStats::default());
        let stats_for_thread = Arc::clone(&fault_stats);
        let thread = std::thread::Builder::new()
            .name("rococo-fpga".into())
            .spawn(move || run_engine(ValidationEngine::new(config), rx, faults, stats_for_thread))
            .expect("failed to spawn validator thread");
        Self {
            handle: ServiceHandle {
                tx,
                in_flight: Arc::new(AtomicU64::new(0)),
                faults: fault_stats,
                last_stats: Arc::new(RwLock::new(EngineStats::default())),
            },
            thread: Some(thread),
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Stops the thread and returns the final engine statistics.
    pub fn shutdown(mut self) -> EngineStats {
        let _ = self.handle.tx.send(Msg::Stop);
        let stats = self
            .thread
            .take()
            .expect("shutdown called twice")
            .join()
            .expect("validator thread panicked");
        *self.handle.last_stats.write() = stats;
        stats
    }
}

impl Drop for ValidationService {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = self.handle.tx.send(Msg::Stop);
            if let Ok(stats) = thread.join() {
                *self.handle.last_stats.write() = stats;
            }
        }
    }
}

/// How long a held-back (reordered) request may wait for a successor
/// before it is serviced anyway — bounds the latency injection can add to
/// the last request of a burst.
const REORDER_FLUSH: Duration = Duration::from_micros(200);

struct Injector {
    cfg: FaultConfig,
    rng: FaultRng,
    stats: Arc<FaultStats>,
}

impl Injector {
    /// Rolls the pre-dequeue fault: a validator stall.
    fn maybe_pause(&mut self) {
        if self.rng.hit(self.cfg.pause_prob) {
            self.stats.pauses.fetch_add(1, Ordering::Relaxed);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Fault { kind: "pause" });
            std::thread::sleep(Duration::from_micros(self.cfg.pause_us));
        }
    }

    /// Rolls the spurious-abort fault. `Some(verdict)` replaces engine
    /// processing entirely (the engine never observes the request, so its
    /// window state matches what the CPU side can infer from the abort).
    fn maybe_spurious(&mut self) -> Option<FpgaVerdict> {
        if self.rng.hit(self.cfg.spurious_cycle_prob) {
            self.stats.spurious_cycle.fetch_add(1, Ordering::Relaxed);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Fault {
                kind: "spurious-cycle"
            });
            return Some(FpgaVerdict::AbortCycle);
        }
        if self.rng.hit(self.cfg.spurious_window_prob) {
            self.stats.spurious_window.fetch_add(1, Ordering::Relaxed);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Fault {
                kind: "spurious-window"
            });
            return Some(FpgaVerdict::AbortWindowOverflow);
        }
        None
    }

    /// Rolls the late-verdict fault (sleep before replying).
    fn maybe_delay(&mut self) {
        if self.rng.hit(self.cfg.delay_prob) {
            self.stats.delayed.fetch_add(1, Ordering::Relaxed);
            rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Fault { kind: "delay" });
            std::thread::sleep(Duration::from_micros(self.cfg.delay_us));
        }
    }

    /// Rolls the reorder fault: whether to hold this request back until
    /// after its successor is serviced.
    fn maybe_hold(&mut self) -> bool {
        self.rng.hit(self.cfg.reorder_prob)
    }
}

fn run_engine(
    mut engine: ValidationEngine,
    rx: Receiver<Msg>,
    faults: FaultConfig,
    stats: Arc<FaultStats>,
) -> EngineStats {
    let inject = faults.enabled();
    let mut injector = Injector {
        rng: FaultRng::new(faults.seed),
        cfg: faults,
        stats,
    };
    // A request held back for reordering: serviced after the next message,
    // or after `REORDER_FLUSH` if no successor arrives (liveness).
    let mut held: Option<(ValidateRequest, Sender<FpgaVerdict>)> = None;

    let serve = |engine: &mut ValidationEngine,
                 injector: &mut Injector,
                 req: ValidateRequest,
                 reply: Sender<FpgaVerdict>,
                 inject: bool| {
        let verdict = if inject {
            match injector.maybe_spurious() {
                Some(v) => v,
                None => engine.process(&req),
            }
        } else {
            engine.process(&req)
        };
        if inject {
            injector.maybe_delay();
        }
        // The submitter may have given up (e.g. its thread panicked);
        // a lost reply must not take the validator down.
        let _ = reply.send(verdict);
    };

    loop {
        let msg = if held.is_some() {
            match rx.recv_timeout(REORDER_FLUSH) {
                Ok(msg) => Some(msg),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match rx.recv() {
                Ok(msg) => Some(msg),
                Err(_) => break,
            }
        };

        match msg {
            Some(Msg::Validate(req, reply)) => {
                if inject {
                    injector.maybe_pause();
                }
                if inject && held.is_none() && injector.maybe_hold() {
                    injector.stats.reordered.fetch_add(1, Ordering::Relaxed);
                    rococo_telemetry::tlm_event!(rococo_telemetry::TxEvent::Fault {
                        kind: "reorder"
                    });
                    held = Some((req, reply));
                    continue;
                }
                serve(&mut engine, &mut injector, req, reply, inject);
                if let Some((hreq, hreply)) = held.take() {
                    serve(&mut engine, &mut injector, hreq, hreply, inject);
                }
            }
            Some(Msg::Snapshot(reply)) => {
                let _ = reply.send(engine.stats());
            }
            Some(Msg::Stop) => break,
            None => {
                // Reorder-flush timeout: no successor arrived, service the
                // held request now.
                if let Some((hreq, hreply)) = held.take() {
                    serve(&mut engine, &mut injector, hreq, hreply, inject);
                }
            }
        }
    }
    // Shutting down: answer anything still held so blocked workers wake.
    if let Some((hreq, hreply)) = held.take() {
        serve(&mut engine, &mut injector, hreq, hreply, inject);
    }
    // Hand buffered fault events to the flight recorder's collector
    // before this thread (and its lane) goes away.
    rococo_telemetry::flush_thread();
    engine.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tx_id: u64, valid_ts: u64, reads: &[u64], writes: &[u64]) -> ValidateRequest {
        ValidateRequest {
            tx_id,
            valid_ts,
            read_addrs: reads.to_vec(),
            write_addrs: writes.to_vec(),
        }
    }

    #[test]
    fn blocking_roundtrip() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        let v = h.validate(req(1, 0, &[10], &[20]));
        assert!(v.is_commit());
        let stats = svc.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn async_submission_overlaps() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        let pending: Vec<_> = (0..32u64)
            .map(|i| h.validate_async(req(i, 0, &[i + 5000], &[i + 9000])))
            .collect();
        for p in pending {
            assert!(p.wait().is_commit());
        }
        assert_eq!(h.stats().expect("service is live").commits, 32);
    }

    #[test]
    fn stats_after_shutdown_degrades_instead_of_panicking() {
        // Regression: a metrics scrape racing service teardown used to
        // panic in stats(); it must now degrade to None with the final
        // counters available via last_stats().
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        assert!(h.validate(req(0, 0, &[1], &[2])).is_commit());
        let live = h.stats().expect("live service answers stats");
        assert_eq!(live.commits, 1);
        let final_stats = svc.shutdown();
        assert_eq!(h.stats(), None, "stopped service must not answer");
        assert_eq!(
            h.last_stats(),
            final_stats,
            "last-known snapshot must hold the end-of-run counters"
        );
        // Dropping (instead of shutdown) must also leave the final
        // counters behind.
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        assert!(h.validate(req(0, 0, &[3], &[4])).is_commit());
        drop(svc);
        assert_eq!(h.stats(), None);
        assert_eq!(h.last_stats().commits, 1);
    }

    #[test]
    fn async_submitters_count_as_in_flight() {
        // Regression: async submissions must hold an in-flight slot until
        // their verdict is delivered, or admission control undercounts
        // load. A paused validator keeps the verdicts outstanding
        // deterministically while we sample the signal.
        let svc = ValidationService::spawn_with_faults(
            EngineConfig::default(),
            FaultConfig {
                seed: 1,
                pause_prob: 1.0,
                pause_us: 2_000,
                ..FaultConfig::disabled()
            },
        );
        let h = svc.handle();
        let pending: Vec<_> = (0..8u64)
            .map(|i| h.validate_async(req(i, 0, &[i + 100], &[i + 200])))
            .collect();
        // All eight were submitted and none can have been answered within
        // the first pause window.
        assert!(
            h.in_flight() == 8,
            "async submissions missing from the load signal: {}",
            h.in_flight()
        );
        for p in pending {
            assert!(p.wait().is_commit());
        }
        assert_eq!(h.in_flight(), 0, "verdict delivery must release slots");
    }

    #[test]
    fn dropping_pending_verdict_releases_in_flight() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        let p = h.validate_async(req(0, 0, &[1], &[2]));
        assert_eq!(h.in_flight(), 1);
        drop(p);
        assert_eq!(h.in_flight(), 0);
    }

    #[test]
    fn verdicts_keep_rococo_semantics_across_threads() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        assert!(h.validate(req(0, 0, &[7], &[8])).is_commit());
        // Write skew partner must abort even when submitted from another
        // thread.
        let h2 = svc.handle();
        let join = std::thread::spawn(move || h2.validate(req(1, 0, &[8], &[7])));
        assert_eq!(join.join().unwrap(), FpgaVerdict::AbortCycle);
    }

    #[test]
    fn many_threads_hammering() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let mut joins = Vec::new();
        for t in 0..8u64 {
            let h = svc.handle();
            joins.push(std::thread::spawn(move || {
                let mut commits = 0;
                // Track the snapshot like the STM's GlobalTS would: each
                // commit verdict tells us the newest sequence we observed.
                let mut valid_ts = 0;
                for i in 0..200u64 {
                    let base = 1_000_000 + t * 10_000 + i * 4;
                    let v = h.validate(req(t * 1000 + i, valid_ts, &[base], &[base + 1]));
                    if let FpgaVerdict::Commit { seq } = v {
                        commits += 1;
                        valid_ts = seq + 1;
                    }
                }
                commits
            }));
        }
        let total: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let stats = svc.shutdown();
        assert_eq!(stats.requests, 1600);
        assert_eq!(stats.commits, total);
        // Disjoint footprints: overwhelmingly commits (bloom false
        // positives may cause a handful of cycle aborts at worst... but a
        // cycle needs both directions, so expect none or almost none).
        assert!(total > 1500, "commits: {total}");
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        h.validate(req(0, 0, &[1], &[2]));
        drop(svc); // must not hang or panic
    }

    #[test]
    fn validate_after_shutdown_is_a_clean_abort() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        drop(svc);
        // The send side fails: no panic, a ServiceStopped verdict.
        assert_eq!(
            h.validate(req(0, 0, &[1], &[2])),
            FpgaVerdict::ServiceStopped
        );
        assert_eq!(h.in_flight(), 0);
        // Async submissions resolve the same way.
        assert_eq!(
            h.validate_async(req(1, 0, &[3], &[4])).wait(),
            FpgaVerdict::ServiceStopped
        );
        assert_eq!(h.in_flight(), 0);
    }

    #[test]
    fn workers_blocked_in_validate_survive_service_drop() {
        // Workers hammer validate() from several threads while the main
        // thread tears the service down. Every call must return a real
        // verdict or ServiceStopped — never panic, never hang.
        let svc = ValidationService::spawn(EngineConfig::default());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let h = svc.handle();
            let stop = Arc::clone(&stop);
            joins.push(std::thread::spawn(move || {
                let mut stopped_seen = 0u64;
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) || stopped_seen == 0 {
                    let v = h.validate(req(t * 1_000_000 + i, 0, &[t + 10], &[t + 20]));
                    if v == FpgaVerdict::ServiceStopped {
                        stopped_seen += 1;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    i += 1;
                }
                stopped_seen
            }));
        }
        std::thread::sleep(Duration::from_millis(5));
        drop(svc);
        stop.store(true, Ordering::Relaxed);
        for j in joins {
            let stopped = j.join().expect("worker panicked during service drop");
            assert!(stopped >= 1, "worker never saw the clean stop signal");
        }
    }

    #[test]
    fn injected_faults_preserve_verdict_meaning() {
        // Under aggressive injection every commit verdict must still be a
        // true engine commit (spurious verdicts are only ever aborts), and
        // the injected classes are counted.
        let svc = ValidationService::spawn_with_faults(
            EngineConfig::default(),
            FaultConfig::aggressive(3),
        );
        let h = svc.handle();
        let mut commits = 0u64;
        for i in 0..300u64 {
            let base = 10_000 + i * 4;
            if h.validate(req(i, 0, &[base], &[base + 1])).is_commit() {
                commits += 1;
            }
        }
        let injected = h.fault_stats();
        assert!(injected.total() > 0, "aggressive preset injected nothing");
        let stats = svc.shutdown();
        // Engine-side commits equal CPU-side observed commits: injection
        // never forged a commit.
        assert_eq!(stats.commits, commits);
        // Requests the engine saw = submitted minus spuriously aborted.
        assert_eq!(stats.requests, 300 - injected.spurious_aborts());
    }

    #[test]
    fn reordering_is_bounded_by_flush_timeout() {
        // With reordering forced on, a lone request (no successor to swap
        // with) must still be answered within the flush window.
        let svc = ValidationService::spawn_with_faults(
            EngineConfig::default(),
            FaultConfig {
                seed: 9,
                reorder_prob: 1.0,
                ..FaultConfig::disabled()
            },
        );
        let h = svc.handle();
        assert!(h.validate(req(0, 0, &[5], &[6])).is_commit());
        assert!(h.fault_stats().reordered >= 1);
    }
}
