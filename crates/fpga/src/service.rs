//! The validator thread: the simulated FPGA inside the live TM runtime.
//!
//! ROCoCoTM cascades CPU execution/commit stages and FPGA detect/manage
//! stages through two asynchronous message queues (the pull/push queues of
//! Figure 6) so that communication latency is amortised by overlapping
//! transactions. Here the "FPGA" is a dedicated thread owning a
//! [`ValidationEngine`]; workers submit [`ValidateRequest`]s over a
//! multi-producer channel and receive their [`FpgaVerdict`] over a
//! per-request reply channel.

use crate::engine::{EngineConfig, EngineStats, FpgaVerdict, ValidateRequest, ValidationEngine};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Msg {
    Validate(ValidateRequest, Sender<FpgaVerdict>),
    Snapshot(Sender<EngineStats>),
    Stop,
}

/// A handle for submitting validation requests to the service. Cheap to
/// clone; one per worker thread.
#[derive(Clone)]
pub struct ServiceHandle {
    tx: Sender<Msg>,
    in_flight: Arc<AtomicU64>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .finish()
    }
}

impl ServiceHandle {
    /// Submits a request and blocks until the verdict arrives (execution
    /// threads in ROCoCoTM "send R/W-set to FPGA and wait for verdict").
    ///
    /// # Panics
    ///
    /// Panics if the validator thread has shut down.
    pub fn validate(&self, req: ValidateRequest) -> FpgaVerdict {
        let (reply_tx, reply_rx) = bounded(1);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Msg::Validate(req, reply_tx))
            .expect("validation service stopped");
        let verdict = reply_rx.recv().expect("validation service dropped reply");
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        verdict
    }

    /// Submits a request without waiting; returns a receiver for the
    /// verdict so the caller can overlap other work (meta-pipelining).
    ///
    /// # Panics
    ///
    /// Panics if the validator thread has shut down.
    pub fn validate_async(&self, req: ValidateRequest) -> Receiver<FpgaVerdict> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Msg::Validate(req, reply_tx))
            .expect("validation service stopped");
        reply_rx
    }

    /// Number of blocking validations currently waiting for a verdict
    /// across *all* clients of this engine. A cheap load signal: service
    /// layers shed or delay work when the shared validator backs up.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Number of submitted requests the validator thread has not yet
    /// dequeued (queue depth of the pull queue of Figure 6).
    pub fn queue_depth(&self) -> usize {
        self.tx.len()
    }

    /// Reads the engine's statistics (round-trips through the thread).
    ///
    /// # Panics
    ///
    /// Panics if the validator thread has shut down.
    pub fn stats(&self) -> EngineStats {
        let (tx, rx) = bounded(1);
        self.tx
            .send(Msg::Snapshot(tx))
            .expect("validation service stopped");
        rx.recv().expect("validation service dropped stats reply")
    }
}

/// The validator thread itself. Dropping it stops the thread after draining
/// queued requests.
pub struct ValidationService {
    handle: ServiceHandle,
    thread: Option<JoinHandle<EngineStats>>,
}

impl std::fmt::Debug for ValidationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValidationService").finish_non_exhaustive()
    }
}

impl ValidationService {
    /// Spawns the validator thread with the given engine configuration.
    pub fn spawn(config: EngineConfig) -> Self {
        let (tx, rx) = unbounded::<Msg>();
        let thread = std::thread::Builder::new()
            .name("rococo-fpga".into())
            .spawn(move || run_engine(ValidationEngine::new(config), rx))
            .expect("failed to spawn validator thread");
        Self {
            handle: ServiceHandle {
                tx,
                in_flight: Arc::new(AtomicU64::new(0)),
            },
            thread: Some(thread),
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Stops the thread and returns the final engine statistics.
    pub fn shutdown(mut self) -> EngineStats {
        let _ = self.handle.tx.send(Msg::Stop);
        self.thread
            .take()
            .expect("shutdown called twice")
            .join()
            .expect("validator thread panicked")
    }
}

impl Drop for ValidationService {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = self.handle.tx.send(Msg::Stop);
            let _ = thread.join();
        }
    }
}

fn run_engine(mut engine: ValidationEngine, rx: Receiver<Msg>) -> EngineStats {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Validate(req, reply) => {
                let verdict = engine.process(&req);
                // The submitter may have given up (e.g. its thread panicked);
                // a lost reply must not take the validator down.
                let _ = reply.send(verdict);
            }
            Msg::Snapshot(reply) => {
                let _ = reply.send(engine.stats());
            }
            Msg::Stop => break,
        }
    }
    engine.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tx_id: u64, valid_ts: u64, reads: &[u64], writes: &[u64]) -> ValidateRequest {
        ValidateRequest {
            tx_id,
            valid_ts,
            read_addrs: reads.to_vec(),
            write_addrs: writes.to_vec(),
        }
    }

    #[test]
    fn blocking_roundtrip() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        let v = h.validate(req(1, 0, &[10], &[20]));
        assert!(v.is_commit());
        let stats = svc.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn async_submission_overlaps() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        let pending: Vec<_> = (0..32u64)
            .map(|i| h.validate_async(req(i, 0, &[i + 5000], &[i + 9000])))
            .collect();
        for p in pending {
            assert!(p.recv().unwrap().is_commit());
        }
        assert_eq!(h.stats().commits, 32);
    }

    #[test]
    fn verdicts_keep_rococo_semantics_across_threads() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        assert!(h.validate(req(0, 0, &[7], &[8])).is_commit());
        // Write skew partner must abort even when submitted from another
        // thread.
        let h2 = svc.handle();
        let join = std::thread::spawn(move || h2.validate(req(1, 0, &[8], &[7])));
        assert_eq!(join.join().unwrap(), FpgaVerdict::AbortCycle);
    }

    #[test]
    fn many_threads_hammering() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let mut joins = Vec::new();
        for t in 0..8u64 {
            let h = svc.handle();
            joins.push(std::thread::spawn(move || {
                let mut commits = 0;
                // Track the snapshot like the STM's GlobalTS would: each
                // commit verdict tells us the newest sequence we observed.
                let mut valid_ts = 0;
                for i in 0..200u64 {
                    let base = 1_000_000 + t * 10_000 + i * 4;
                    let v = h.validate(req(t * 1000 + i, valid_ts, &[base], &[base + 1]));
                    if let FpgaVerdict::Commit { seq } = v {
                        commits += 1;
                        valid_ts = seq + 1;
                    }
                }
                commits
            }));
        }
        let total: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        let stats = svc.shutdown();
        assert_eq!(stats.requests, 1600);
        assert_eq!(stats.commits, total);
        // Disjoint footprints: overwhelmingly commits (bloom false
        // positives may cause a handful of cycle aborts at worst... but a
        // cycle needs both directions, so expect none or almost none).
        assert!(total > 1500, "commits: {total}");
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let svc = ValidationService::spawn(EngineConfig::default());
        let h = svc.handle();
        h.validate(req(0, 0, &[1], &[2]));
        drop(svc); // must not hang or panic
    }
}
