//! Stage-accurate timing model of the validation pipeline.

use crate::engine::{FpgaVerdict, ValidateRequest, ValidationEngine};
use serde::{Deserialize, Serialize};

/// Timing parameters of the simulated CPU–FPGA platform.
///
/// Defaults model Intel HARP2 as characterised in section 6.2 and
/// footnote 8: the FPGA component clocked at 200 MHz (the 512-bit bloom
/// filter being the critical path), around 200 ns for an FPGA read hit in
/// the shared LLC and under 400 ns for a write-back, i.e. a sub-600 ns
/// round trip over the QPI-based low-latency channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// FPGA clock frequency in hertz.
    pub clock_hz: f64,
    /// CPU→FPGA transfer latency in nanoseconds (FPGA reading the request
    /// cache line from the LLC).
    pub cci_read_ns: f64,
    /// FPGA→CPU transfer latency in nanoseconds (writing the verdict back).
    pub cci_write_ns: f64,
    /// Pipeline depth of the Detector in clock cycles (hash + `W`-parallel
    /// signature queries + reduce).
    pub detector_stages: u32,
    /// Pipeline depth of the Manager in clock cycles (`p`/`s` computation +
    /// cycle test + matrix shift/update, all bit-parallel).
    pub manager_stages: u32,
    /// Extra cycles per cache line of request payload beyond the first
    /// (eight 64-bit addresses per line).
    pub cycles_per_extra_line: u32,
}

impl Default for TimingModel {
    fn default() -> Self {
        Self {
            clock_hz: 200e6,
            cci_read_ns: 200.0,
            cci_write_ns: 400.0,
            detector_stages: 4,
            manager_stages: 3,
            cycles_per_extra_line: 1,
        }
    }
}

impl TimingModel {
    /// Nanoseconds per FPGA clock cycle.
    pub fn cycle_ns(&self) -> f64 {
        1e9 / self.clock_hz
    }

    /// Unloaded validation latency for a request carrying `addrs` addresses:
    /// CCI round trip plus pipeline depth plus payload streaming.
    pub fn latency_ns(&self, addrs: usize) -> f64 {
        let lines = addrs.div_ceil(8).max(1) as u32;
        let cycles =
            self.detector_stages + self.manager_stages + (lines - 1) * self.cycles_per_extra_line;
        self.cci_read_ns + self.cci_write_ns + cycles as f64 * self.cycle_ns()
    }

    /// Model time the Detector occupies for a request carrying `addrs`
    /// addresses: payload streaming (one extra cycle per cache line past the
    /// first) plus the Detector pipeline depth. Together with
    /// [`manager_ns`](Self::manager_ns) this partitions the on-FPGA portion
    /// of [`latency_ns`](Self::latency_ns):
    /// `cci_read_ns + detector_ns + manager_ns + cci_write_ns == latency_ns`.
    pub fn detector_ns(&self, addrs: usize) -> f64 {
        let lines = addrs.div_ceil(8).max(1) as u32;
        let cycles = self.detector_stages + (lines - 1) * self.cycles_per_extra_line;
        cycles as f64 * self.cycle_ns()
    }

    /// Model time the Manager stage occupies (independent of request size:
    /// `p`/`s` computation and the matrix update are bit-parallel).
    pub fn manager_ns(&self) -> f64 {
        self.manager_stages as f64 * self.cycle_ns()
    }

    /// Minimum initiation interval between back-to-back validations, in
    /// nanoseconds. The pipeline is fully pipelined (II = 1 cycle) except
    /// that multi-line payloads occupy the ingress for extra cycles.
    pub fn initiation_interval_ns(&self, addrs: usize) -> f64 {
        let lines = addrs.div_ceil(8).max(1) as u32;
        (1 + (lines - 1) * self.cycles_per_extra_line) as f64 * self.cycle_ns()
    }
}

/// Timing statistics accumulated by a [`PipelinedValidator`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Requests timed.
    pub requests: u64,
    /// Sum of per-request latency (ns of model time).
    pub total_latency_ns: f64,
    /// Sum of per-request *occupancy* (ns the pipeline ingress was held) —
    /// the amortised per-transaction validation cost under full overlap.
    pub total_occupancy_ns: f64,
    /// Model time at which the last verdict left the pipeline.
    pub last_departure_ns: f64,
}

impl PipelineStats {
    /// Mean per-transaction validation latency in microseconds — the
    /// Figure 11 metric for ROCoCoTM.
    pub fn mean_latency_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_ns / self.requests as f64 / 1000.0
        }
    }

    /// Mean amortised pipeline occupancy per transaction in microseconds
    /// (what centralized validation costs once pipelining overlaps the
    /// latency, Figure 6(d)).
    pub fn mean_occupancy_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_occupancy_ns / self.requests as f64 / 1000.0
        }
    }
}

/// A [`ValidationEngine`] wrapped with queueing-aware model timing.
///
/// The caller stamps each request with its arrival time in model
/// nanoseconds; the validator returns the verdict together with the model
/// time at which the CPU would observe it, accounting for the CCI hop, the
/// pipeline depth, and head-of-line blocking at the single ingress port
/// (initiation interval of one clock per cache line).
#[derive(Debug, Clone)]
pub struct PipelinedValidator {
    engine: ValidationEngine,
    timing: TimingModel,
    /// Model time at which the ingress becomes free.
    ingress_free_at_ns: f64,
    stats: PipelineStats,
}

impl PipelinedValidator {
    /// Creates a timed validator around `engine`.
    pub fn new(engine: ValidationEngine, timing: TimingModel) -> Self {
        Self {
            engine,
            timing,
            ingress_free_at_ns: 0.0,
            stats: PipelineStats::default(),
        }
    }

    /// The wrapped functional engine.
    pub fn engine(&self) -> &ValidationEngine {
        &self.engine
    }

    /// The timing model in use.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Accumulated timing statistics.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Model time at which the ingress port next becomes free — the
    /// queueing state a trace exporter needs to place stage slices.
    pub fn ingress_free_at_ns(&self) -> f64 {
        self.ingress_free_at_ns
    }

    /// Processes `req` arriving at model time `arrival_ns`; returns the
    /// verdict and the model time at which the CPU observes it.
    pub fn process_at(&mut self, req: &ValidateRequest, arrival_ns: f64) -> (FpgaVerdict, f64) {
        let addrs = req.read_addrs.len() + req.write_addrs.len();

        // The request reaches the FPGA after the CCI read; it then waits
        // for the ingress port if an earlier request still occupies it.
        let at_fpga = arrival_ns + self.timing.cci_read_ns;
        let start = at_fpga.max(self.ingress_free_at_ns);
        let occupancy = self.timing.initiation_interval_ns(addrs);
        self.ingress_free_at_ns = start + occupancy;

        let pipeline_ns =
            self.timing.latency_ns(addrs) - self.timing.cci_read_ns - self.timing.cci_write_ns;
        let done = start + pipeline_ns + self.timing.cci_write_ns;

        let verdict = self.engine.process(req);

        self.stats.requests += 1;
        self.stats.total_latency_ns += done - arrival_ns;
        self.stats.total_occupancy_ns += occupancy;
        self.stats.last_departure_ns = self.stats.last_departure_ns.max(done);
        (verdict, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn small_req(i: u64) -> ValidateRequest {
        ValidateRequest {
            tx_id: i,
            valid_ts: 0,
            read_addrs: vec![i * 2 + 1_000_000],
            write_addrs: vec![i * 2 + 1_000_001],
        }
    }

    #[test]
    fn unloaded_latency_is_submicrosecond() {
        // The paper: per-transaction validation overhead stays below 1 µs.
        let t = TimingModel::default();
        assert!(t.latency_ns(16) < 1000.0, "{}", t.latency_ns(16));
        assert!(t.latency_ns(16) > 600.0, "must include the CCI round trip");
    }

    #[test]
    fn latency_insensitive_to_read_set_size() {
        // Signature-based validation: latency grows only by payload
        // streaming, about one cycle per extra 8 addresses.
        let t = TimingModel::default();
        let small = t.latency_ns(8);
        let large = t.latency_ns(512);
        assert!(
            large - small < 400.0,
            "512-address validation only {} ns slower",
            large - small
        );
    }

    #[test]
    fn stage_breakdown_partitions_latency() {
        let t = TimingModel::default();
        for addrs in [1, 2, 8, 9, 64, 512] {
            let parts = t.cci_read_ns + t.detector_ns(addrs) + t.manager_ns() + t.cci_write_ns;
            assert!(
                (parts - t.latency_ns(addrs)).abs() < 1e-9,
                "addrs={addrs}: {parts} vs {}",
                t.latency_ns(addrs)
            );
        }
    }

    #[test]
    fn pipelining_amortises_latency() {
        let mut v = PipelinedValidator::new(
            ValidationEngine::new(EngineConfig::default()),
            TimingModel::default(),
        );
        // 100 requests arriving back-to-back (all at t = 0), each with a
        // fresh snapshot so the sliding window never overflows.
        for i in 0..100 {
            let mut r = small_req(i);
            r.valid_ts = v.engine().next_seq();
            let (verdict, _) = v.process_at(&r, 0.0);
            assert!(verdict.is_commit());
        }
        let s = v.stats();
        // Occupancy per txn is ~one clock cycle = 5 ns, far below the
        // ~600 ns single-shot latency: the Figure 6(d) claim.
        assert!(s.mean_occupancy_us() < 0.01, "{}", s.mean_occupancy_us());
        assert!(s.mean_latency_us() < 1.0, "{}", s.mean_latency_us());
    }

    #[test]
    fn queueing_delays_later_requests() {
        let mut v = PipelinedValidator::new(
            ValidationEngine::new(EngineConfig::default()),
            TimingModel::default(),
        );
        let (_, t1) = v.process_at(&small_req(0), 0.0);
        let (_, t2) = v.process_at(&small_req(1), 0.0);
        assert!(t2 > t1, "second simultaneous request must finish later");
        // ... but only by the initiation interval, not the full latency.
        assert!(t2 - t1 < 100.0, "{}", t2 - t1);
    }

    #[test]
    fn spaced_requests_see_unloaded_latency() {
        let mut v = PipelinedValidator::new(
            ValidationEngine::new(EngineConfig::default()),
            TimingModel::default(),
        );
        let (_, d1) = v.process_at(&small_req(0), 0.0);
        let expected = v.timing().latency_ns(2);
        assert!((d1 - expected).abs() < 1e-6);
        let (_, d2) = v.process_at(&small_req(1), 10_000.0);
        assert!((d2 - 10_000.0 - expected).abs() < 1e-6);
    }
}
