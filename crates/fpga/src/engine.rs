//! The functional model of the FPGA validation pipeline: Detector + Manager.

use rococo_core::{RejectReason, RococoValidator, Seq, TxnDeps};
use rococo_sigs::{PrehashedAddr, Sig, SigScheme};
use serde::{Deserialize, Serialize};

/// Configuration of the validation engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Sliding-window capacity `W` (64 on HARP2; bounded by the 2D register
    /// file holding the reachability matrix).
    pub window: usize,
    /// Signature geometry (the paper uses `m = 512`, `k = 8`).
    pub scheme: SigScheme,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            window: 64,
            scheme: SigScheme::paper_default(),
        }
    }
}

/// A validation request sent from a CPU worker to the FPGA: the
/// transaction's read/write sets "transferred in terms of address rather
/// than signature, so that the query operation on signatures can be used to
/// minimize the possibility of false positivity" (section 5.3), plus its
/// `ValidTS` snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidateRequest {
    /// Caller-chosen transaction identifier, echoed in the verdict.
    pub tx_id: u64,
    /// The transaction has observed every commit with `seq < valid_ts`.
    pub valid_ts: Seq,
    /// Deduplicated read-set addresses.
    pub read_addrs: Vec<u64>,
    /// Deduplicated write-set addresses.
    pub write_addrs: Vec<u64>,
}

/// The verdict pushed back to the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FpgaVerdict {
    /// The transaction may commit; it was assigned this global commit
    /// sequence number (the order in which the Manager admitted it).
    Commit {
        /// Global commit sequence number.
        seq: Seq,
    },
    /// The transaction must abort: committing it would create a dependency
    /// cycle.
    AbortCycle,
    /// The transaction must abort: its snapshot slid out of the window
    /// ("transactions that neglect updates of `t_{k−W}` abort").
    AbortWindowOverflow,
    /// No verdict was produced: the validation service stopped (shutdown
    /// or validator-thread death) while the request was outstanding. The
    /// engine itself never emits this — the service synthesizes it so a
    /// worker blocked in `validate` sees a clean abort instead of a
    /// panic. Callers must treat it as "abort, and do not assume the
    /// request was observed".
    ServiceStopped,
}

impl FpgaVerdict {
    /// Whether the verdict grants a commit.
    pub fn is_commit(&self) -> bool {
        matches!(self, FpgaVerdict::Commit { .. })
    }
}

/// Per-commit bookkeeping kept by the FPGA: "two signatures (one for read
/// set and the other for write set) per transaction so that an upper bound
/// of required resources can be determined a priori" (section 5.3).
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// Identifier of the committed transaction.
    pub tx_id: u64,
    /// Bloom signature of its read set.
    pub read_sig: Sig,
    /// Bloom signature of its write set.
    pub write_sig: Sig,
}

/// Aggregate statistics of the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Requests processed.
    pub requests: u64,
    /// Commits granted.
    pub commits: u64,
    /// Aborts due to dependency cycles.
    pub aborts_cycle: u64,
    /// Aborts due to window overflow.
    pub aborts_window: u64,
}

impl EngineStats {
    /// Total aborts.
    pub fn aborts(&self) -> u64 {
        self.aborts_cycle + self.aborts_window
    }

    /// FPGA-side abort rate (the dotted series of Figure 10).
    pub fn abort_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.aborts() as f64 / self.requests as f64
        }
    }

    /// Publishes the engine counters into a metrics registry under the
    /// unified `rococo_fpga_*` namespace.
    pub fn export_metrics(&self, reg: &mut rococo_telemetry::MetricsRegistry) {
        reg.counter(
            "rococo_fpga_requests_total",
            "Validation requests processed by the FPGA engine",
            &[],
            self.requests,
        );
        reg.counter(
            "rococo_fpga_commits_total",
            "Commit verdicts granted by the FPGA engine",
            &[],
            self.commits,
        );
        reg.counter(
            "rococo_fpga_aborts_total",
            "Abort verdicts by cause",
            &[("kind", "cycle")],
            self.aborts_cycle,
        );
        reg.counter(
            "rococo_fpga_aborts_total",
            "Abort verdicts by cause",
            &[("kind", "window")],
            self.aborts_window,
        );
    }
}

/// The functional FPGA model: conflict Detector plus ROCoCo Manager.
///
/// Processing one request mirrors the hardware datapath of Figure 5:
///
/// 1. **Detector** — each of the transaction's read/write addresses is
///    queried against the read/write signatures of every window entry, in
///    parallel in hardware; hits produce the `f` and `b` adjacency vectors
///    (classified by the request's `ValidTS`: an overlapping writer the
///    transaction already observed is a backward read-after-write
///    dependency, an unobserved one is a forward write-after-read
///    dependency).
/// 2. **Manager** — computes `p`/`s` against the reachability matrix,
///    detects cycles in O(1) cycles, and on commit shifts the window,
///    storing the new bookkeeping signatures.
///
/// The engine is deterministic and single-threaded; the crate's
/// `ValidationService` runs it on a dedicated thread for live TM use, and
/// [`PipelinedValidator`](crate::PipelinedValidator) adds model timing.
#[derive(Debug, Clone)]
pub struct ValidationEngine {
    scheme: SigScheme,
    validator: RococoValidator<HistoryEntry>,
    stats: EngineStats,
    // Per-request prehash scratch (kept across requests to avoid
    // reallocating on the validator hot loop).
    scratch_reads: Vec<PrehashedAddr>,
    scratch_writes: Vec<PrehashedAddr>,
}

impl ValidationEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if `config.window == 0`.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            scheme: config.scheme,
            validator: RococoValidator::new(config.window),
            stats: EngineStats::default(),
            scratch_reads: Vec::new(),
            scratch_writes: Vec::new(),
        }
    }

    /// The signature scheme shared with the CPU side.
    pub fn scheme(&self) -> &SigScheme {
        &self.scheme
    }

    /// Window capacity `W`.
    pub fn window(&self) -> usize {
        self.validator.capacity()
    }

    /// Engine statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Sequence number the next committed transaction will receive.
    pub fn next_seq(&self) -> Seq {
        self.validator.next_seq()
    }

    /// Derives the dependency vectors for a request (the Detector stage).
    ///
    /// `reads`/`writes` are the request's addresses prehashed once by the
    /// caller: each address is probed against every window entry (`W = 64`),
    /// and rehashing per (address, entry) pair would dominate the stage —
    /// the hardware computes each address's signature positions once at the
    /// pipeline's front, too.
    fn detect(
        &self,
        req: &ValidateRequest,
        reads: &[PrehashedAddr],
        writes: &[PrehashedAddr],
    ) -> TxnDeps {
        let mut deps = TxnDeps {
            snapshot: req.valid_ts,
            forward: Vec::new(),
            backward: Vec::new(),
        };
        for (slot, entry) in self.validator.window().iter() {
            let seq = self.validator.window().seq_of(slot);
            let observed = seq < req.valid_ts;

            // Read-set vs committed write-set: RAW if observed, forward
            // (the candidate read the overwritten version) otherwise.
            let their_write_hits_my_read = reads
                .iter()
                .any(|a| self.scheme.query_prehashed(&entry.write_sig, a));
            if their_write_hits_my_read {
                if observed {
                    deps.backward.push(seq);
                } else {
                    deps.forward.push(seq);
                }
            }

            // Write-set vs committed read-set (WAR) and write-set (WAW):
            // both order the committed transaction before the candidate.
            let war = writes
                .iter()
                .any(|a| self.scheme.query_prehashed(&entry.read_sig, a));
            let waw = !war
                && writes
                    .iter()
                    .any(|a| self.scheme.query_prehashed(&entry.write_sig, a));
            if war || waw {
                deps.backward.push(seq);
            }
        }
        deps
    }

    /// Processes one validation request end to end and returns the verdict.
    pub fn process(&mut self, req: &ValidateRequest) -> FpgaVerdict {
        self.stats.requests += 1;

        if !self.validator.snapshot_in_window(req.valid_ts) {
            self.stats.aborts_window += 1;
            return FpgaVerdict::AbortWindowOverflow;
        }

        let scheme = &self.scheme;
        self.scratch_reads.clear();
        self.scratch_reads
            .extend(req.read_addrs.iter().map(|&a| scheme.prehash(a)));
        self.scratch_writes.clear();
        self.scratch_writes
            .extend(req.write_addrs.iter().map(|&a| scheme.prehash(a)));
        let deps = self.detect(req, &self.scratch_reads, &self.scratch_writes);
        let entry = HistoryEntry {
            tx_id: req.tx_id,
            read_sig: self.scheme.sig_of(req.read_addrs.iter().copied()),
            write_sig: self.scheme.sig_of(req.write_addrs.iter().copied()),
        };
        match self.validator.validate_and_commit(&deps, entry) {
            Ok(seq) => {
                self.stats.commits += 1;
                FpgaVerdict::Commit { seq }
            }
            Err(RejectReason::Cycle) => {
                self.stats.aborts_cycle += 1;
                FpgaVerdict::AbortCycle
            }
            Err(RejectReason::WindowOverflow) => {
                self.stats.aborts_window += 1;
                FpgaVerdict::AbortWindowOverflow
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tx_id: u64, valid_ts: Seq, reads: &[u64], writes: &[u64]) -> ValidateRequest {
        ValidateRequest {
            tx_id,
            valid_ts,
            read_addrs: reads.to_vec(),
            write_addrs: writes.to_vec(),
        }
    }

    #[test]
    fn disjoint_transactions_all_commit() {
        let mut e = ValidationEngine::new(EngineConfig::default());
        for i in 0..100u64 {
            let v = e.process(&req(i, e.next_seq(), &[i * 2 + 10_000], &[i * 2 + 10_001]));
            assert!(v.is_commit(), "txn {i}: {v:?}");
        }
        assert_eq!(e.stats().commits, 100);
    }

    #[test]
    fn stale_read_is_reordered_not_aborted() {
        // t0 writes A. t1 read A's OLD version (valid_ts = 0, i.e. it did
        // not observe t0). ROCoCo orders t1 before t0 and commits both.
        let mut e = ValidationEngine::new(EngineConfig::default());
        assert!(e.process(&req(0, 0, &[], &[100])).is_commit());
        assert!(e.process(&req(1, 0, &[100], &[200])).is_commit());
    }

    #[test]
    fn write_skew_cycle_aborts() {
        // t0: reads Y writes X (commits). t1: read X's old version, writes
        // Y -> t1 must precede t0 (forward) AND succeed t0 (t0 read Y which
        // t1 writes): cycle.
        let mut e = ValidationEngine::new(EngineConfig::default());
        assert!(e.process(&req(0, 0, &[7], &[8])).is_commit());
        let v = e.process(&req(1, 0, &[8], &[7]));
        assert_eq!(v, FpgaVerdict::AbortCycle);
        assert_eq!(e.stats().aborts_cycle, 1);
    }

    #[test]
    fn observed_commit_is_backward_dependency() {
        // t1 observed t0 (valid_ts = 1) and read what t0 wrote: plain RAW,
        // commits.
        let mut e = ValidationEngine::new(EngineConfig::default());
        assert!(e.process(&req(0, 0, &[], &[100])).is_commit());
        assert!(e.process(&req(1, 1, &[100], &[300])).is_commit());
    }

    #[test]
    fn window_overflow_rejected_fast() {
        let mut e = ValidationEngine::new(EngineConfig {
            window: 4,
            ..EngineConfig::default()
        });
        for i in 0..6u64 {
            assert!(e
                .process(&req(i, e.next_seq(), &[], &[i + 50_000]))
                .is_commit());
        }
        // Oldest tracked seq is 2; a snapshot of 1 predates the window.
        let v = e.process(&req(99, 1, &[1], &[2]));
        assert_eq!(v, FpgaVerdict::AbortWindowOverflow);
        assert_eq!(e.stats().aborts_window, 1);
    }

    #[test]
    fn ww_order_recorded() {
        // Two writers to the same address commit in order; a reader that
        // observed only the first but reads the address again must be
        // ordered between them (forward to the second writer) — allowed.
        let mut e = ValidationEngine::new(EngineConfig::default());
        assert!(e.process(&req(0, 0, &[], &[500])).is_commit()); // seq 0
        assert!(e.process(&req(1, 1, &[], &[500])).is_commit()); // seq 1 (WAW)
        assert!(e.process(&req(2, 1, &[500], &[600])).is_commit());
    }

    #[test]
    fn cycle_after_reorder_chain() {
        // t0 writes A (seq0). t1 reads old A, writes B (forward to t0,
        // commits; serialised before t0). t2 observed both, reads B... and
        // writes A: t2 after t1 (RAW on B), t2 after t0 (WAW on A): fine.
        // t3 with valid_ts=0 reads A-old and B-old? reads old B written by
        // t1 (forward t3->t1) and writes... something t0 read? t0 read
        // nothing. Build explicit cycle: t3 reads old B (f: t3->t1) and
        // writes C where C was read by t1? t1 read A only. Use A: t3
        // writes A: WAW with t0 and t2 (backward), so t3 after t2 after t1,
        // but t3 before t1: cycle.
        let mut e = ValidationEngine::new(EngineConfig::default());
        assert!(e.process(&req(0, 0, &[], &[1000])).is_commit()); // t0: W A
        assert!(e.process(&req(1, 0, &[1000], &[2000])).is_commit()); // t1: R A(old), W B
        assert!(e.process(&req(2, 2, &[2000], &[1000])).is_commit()); // t2
        let v = e.process(&req(3, 0, &[2000], &[1000])); // reads old B, writes A
        assert_eq!(v, FpgaVerdict::AbortCycle);
    }

    #[test]
    fn stats_accumulate() {
        let mut e = ValidationEngine::new(EngineConfig::default());
        e.process(&req(0, 0, &[1], &[2]));
        e.process(&req(1, 0, &[2], &[1]));
        let s = e.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.commits + s.aborts(), 2);
        assert!(s.abort_rate() >= 0.0);
    }
}
