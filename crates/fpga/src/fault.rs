//! Seeded fault injection for the validation service (chaos testing).
//!
//! The CPU-side ROCoCoTM protocol (commit queue, update set, `ValidTS`
//! extension) is only exercised under *pathological* FPGA timing when the
//! validator misbehaves: verdicts arrive late, requests are serviced out
//! of submission order, transactions are spuriously rejected, or the
//! validator simply stalls. On real hardware those schedules are rare and
//! unreproducible; here they are produced on demand from a seed, so the
//! `rococo-chaos` harness can drive the commit path through the exact
//! interleavings where hybrid-TM systems historically break.
//!
//! All injection happens at the *service* layer ([`super::ValidationService`]),
//! never inside [`ValidationEngine`](crate::ValidationEngine): an injected
//! abort is returned **instead of** processing the request, so the engine's
//! window/reachability state stays exactly what the CPU side observed. That
//! keeps injected faults indistinguishable from a legitimately slow or
//! conservative FPGA — the protocol must tolerate them without any
//! correctness loss.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of the fault injector. All probabilities are per-request
/// and drawn from a deterministic generator seeded with [`FaultConfig::seed`]
/// (decision `n` of a run is a pure function of the seed, independent of
/// wall-clock time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the injection decision stream.
    pub seed: u64,
    /// Probability that the verdict reply is held until after the *next*
    /// message is serviced (reply reordering relative to submission).
    pub reorder_prob: f64,
    /// Probability that the validator sleeps [`FaultConfig::delay_us`]
    /// before replying (late verdict).
    pub delay_prob: f64,
    /// Verdict delay duration, microseconds.
    pub delay_us: u64,
    /// Probability of a spurious `AbortCycle` verdict (returned without
    /// consulting the engine, as a bloom-pessimistic FPGA might).
    pub spurious_cycle_prob: f64,
    /// Probability of a spurious `AbortWindowOverflow` verdict.
    pub spurious_window_prob: f64,
    /// Probability that the validator thread pauses for
    /// [`FaultConfig::pause_us`] *before* dequeuing work (stall of the
    /// whole pull queue).
    pub pause_prob: f64,
    /// Validator pause duration, microseconds.
    pub pause_us: u64,
}

impl FaultConfig {
    /// No injection at all (the default for production configurations).
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            reorder_prob: 0.0,
            delay_prob: 0.0,
            delay_us: 0,
            spurious_cycle_prob: 0.0,
            spurious_window_prob: 0.0,
            pause_prob: 0.0,
            pause_us: 0,
        }
    }

    /// Timing-only chaos: late, reordered and stalled verdicts, but every
    /// verdict the engine produces is delivered unchanged. Under this
    /// preset liveness properties (e.g. the irrevocability escalation
    /// bound) still hold, so harnesses can assert them.
    pub fn timing_only(seed: u64) -> Self {
        Self {
            seed,
            reorder_prob: 0.2,
            delay_prob: 0.15,
            delay_us: 30,
            spurious_cycle_prob: 0.0,
            spurious_window_prob: 0.0,
            pause_prob: 0.05,
            pause_us: 50,
        }
    }

    /// Full chaos: timing faults plus spurious abort verdicts. Safety
    /// oracles must hold; liveness bounds are off the table (an injected
    /// abort can hit even an irrevocable attempt's validation).
    pub fn aggressive(seed: u64) -> Self {
        Self {
            seed,
            spurious_cycle_prob: 0.05,
            spurious_window_prob: 0.05,
            ..Self::timing_only(seed)
        }
    }

    /// Whether any fault class has a nonzero rate.
    pub fn enabled(&self) -> bool {
        self.reorder_prob > 0.0
            || self.delay_prob > 0.0
            || self.spurious_cycle_prob > 0.0
            || self.spurious_window_prob > 0.0
            || self.pause_prob > 0.0
    }

    /// Whether verdicts can be falsified (not just delayed): spurious
    /// aborts void liveness guarantees such as the escalation bound.
    pub fn falsifies_verdicts(&self) -> bool {
        self.spurious_cycle_prob > 0.0 || self.spurious_window_prob > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Live counters of injected faults, shared between the validator thread
/// and every [`ServiceHandle`](crate::ServiceHandle).
#[derive(Debug, Default)]
pub struct FaultStats {
    pub(crate) delayed: AtomicU64,
    pub(crate) reordered: AtomicU64,
    pub(crate) spurious_cycle: AtomicU64,
    pub(crate) spurious_window: AtomicU64,
    pub(crate) pauses: AtomicU64,
}

impl FaultStats {
    /// Takes a point-in-time copy.
    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            delayed: self.delayed.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            spurious_cycle: self.spurious_cycle.load(Ordering::Relaxed),
            spurious_window: self.spurious_window.load(Ordering::Relaxed),
            pauses: self.pauses.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`FaultStats`], surfaced by service layers so
/// operators can tell injected chaos apart from organic aborts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSnapshot {
    /// Verdict replies delayed.
    pub delayed: u64,
    /// Requests serviced out of submission order.
    pub reordered: u64,
    /// Spurious `AbortCycle` verdicts injected.
    pub spurious_cycle: u64,
    /// Spurious `AbortWindowOverflow` verdicts injected.
    pub spurious_window: u64,
    /// Validator stalls injected.
    pub pauses: u64,
}

impl FaultSnapshot {
    /// Total injected faults of every class.
    pub fn total(&self) -> u64 {
        self.delayed + self.reordered + self.spurious_cycle + self.spurious_window + self.pauses
    }

    /// Spurious abort verdicts of either kind.
    pub fn spurious_aborts(&self) -> u64 {
        self.spurious_cycle + self.spurious_window
    }

    /// Publishes the injected-fault counters into a metrics registry under
    /// the unified `rococo_faults_*` namespace, one `kind` label per class.
    pub fn export_metrics(&self, reg: &mut rococo_telemetry::MetricsRegistry) {
        const HELP: &str = "Faults injected into the validation service, by class";
        for (kind, n) in [
            ("delay", self.delayed),
            ("reorder", self.reordered),
            ("spurious-cycle", self.spurious_cycle),
            ("spurious-window", self.spurious_window),
            ("pause", self.pauses),
        ] {
            reg.counter("rococo_faults_injected_total", HELP, &[("kind", kind)], n);
        }
    }
}

/// The deterministic decision stream: an xoshiro-class generator owned by
/// the validator thread. Independent of the `rand` shim so the decision
/// sequence is stable even if the workload generators evolve.
#[derive(Debug, Clone)]
pub(crate) struct FaultRng {
    s: [u64; 2],
}

impl FaultRng {
    pub(crate) fn new(seed: u64) -> Self {
        // splitmix64 expansion of the seed (never all-zero state).
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next() | 1],
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xoroshiro128+ step.
        let s0 = self.s[0];
        let mut s1 = self.s[1];
        let out = s0.wrapping_add(s1);
        s1 ^= s0;
        self.s[0] = s0.rotate_left(24) ^ s1 ^ (s1 << 16);
        self.s[1] = s1.rotate_left(37);
        out
    }

    /// Bernoulli draw with probability `p`.
    pub(crate) fn hit(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_injects_nothing() {
        let cfg = FaultConfig::disabled();
        assert!(!cfg.enabled());
        assert!(!cfg.falsifies_verdicts());
        let mut rng = FaultRng::new(1);
        for _ in 0..1000 {
            assert!(!rng.hit(cfg.delay_prob));
        }
    }

    #[test]
    fn decision_stream_is_deterministic() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let draws_a: Vec<bool> = (0..256).map(|_| a.hit(0.3)).collect();
        let draws_b: Vec<bool> = (0..256).map(|_| b.hit(0.3)).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|&d| d));
        assert!(draws_a.iter().any(|&d| !d));
    }

    #[test]
    fn presets_classify_correctly() {
        assert!(FaultConfig::timing_only(7).enabled());
        assert!(!FaultConfig::timing_only(7).falsifies_verdicts());
        assert!(FaultConfig::aggressive(7).falsifies_verdicts());
    }

    #[test]
    fn snapshot_totals() {
        let s = FaultStats::default();
        s.delayed.store(2, Ordering::Relaxed);
        s.spurious_cycle.store(3, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.total(), 5);
        assert_eq!(snap.spurious_aborts(), 3);
    }
}
