//! Figure 10 — STAMP speedups and abort rates for TinySTM / TSX / ROCoCoTM.
//!
//! For every STAMP application (bayes excluded, as in the paper) and every
//! thread count in {1, 4, 8, 14, 28}, evaluates the three TM systems and
//! prints the speedup relative to the sequential baseline plus the abort
//! rate; for ROCoCoTM the FPGA-attributed abort rate (the paper's dotted
//! series) is printed separately.
//!
//! **Default mode is `--mode sim`**: each application's committed
//! transactions are recorded from a real single-threaded run, then
//! replayed on a virtual-time multicore simulator (`rococo-sim`) modelling
//! the paper's 14-core/28-thread Haswell — the build host has a single
//! physical core, so wall-clock multi-thread speedups are unmeasurable.
//! Abort decisions in the simulator come from the same CC implementations
//! as the live runtimes (including the real ROCoCo validation engine).
//! `--mode wall` runs the actual threaded runtimes instead and reports
//! wall time (meaningful only on a multi-core host).
//!
//! Reproduction targets (shape): the TSX emulation is competitive at low
//! thread counts but its abort rate avalanches as threads grow; ROCoCoTM
//! pays a 1-thread penalty against TinySTM (out-of-core validation
//! latency) and overtakes it at high thread counts, most clearly on the
//! transaction-friendly workloads (labyrinth, yada); ssca2's tiny
//! transactions are the adverse case for out-of-core validation; most
//! ROCoCoTM aborts fail fast on the CPU so the FPGA-side rate stays low.
//!
//! Usage: fig10 [--mode sim|wall] [--app NAME] [--threads a,b,c]
//!              [--preset tiny|small|paper] [--quick]

use rococo_bench::{banner, geomean, pct, Table};
use rococo_sim::{simulate, CostModel, SimSystem, Workload};
use rococo_stamp::apps::AppId;
use rococo_stamp::harness::{record_workload, run, Preset, SystemKind};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Sim,
    Wall,
}

struct Args {
    apps: Vec<AppId>,
    threads: Vec<usize>,
    preset: Preset,
    mode: Mode,
}

fn parse_args() -> Args {
    let mut args = Args {
        apps: AppId::ALL.to_vec(),
        threads: vec![1, 4, 8, 14, 28],
        preset: Preset::Small,
        mode: Mode::Sim,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--app" => {
                i += 1;
                args.apps = vec![argv[i].parse().expect("unknown app name")];
            }
            "--threads" => {
                i += 1;
                args.threads = argv[i]
                    .split(',')
                    .map(|s| s.parse().expect("bad thread count"))
                    .collect();
            }
            "--preset" => {
                i += 1;
                args.preset = match argv[i].as_str() {
                    "tiny" => Preset::Tiny,
                    "small" => Preset::Small,
                    "paper" => Preset::Paper,
                    other => panic!("unknown preset '{other}'"),
                };
            }
            "--mode" => {
                i += 1;
                args.mode = match argv[i].as_str() {
                    "sim" => Mode::Sim,
                    "wall" => Mode::Wall,
                    other => panic!("unknown mode '{other}'"),
                };
            }
            "--quick" => {
                args.preset = Preset::Tiny;
            }
            other => panic!("unknown argument '{other}'"),
        }
        i += 1;
    }
    args
}

const SYSTEMS: [SimSystem; 3] = [SimSystem::TinyStm, SimSystem::Tsx, SimSystem::Rococo];

fn main() {
    let args = parse_args();
    banner("Figure 10: STAMP speedup and abort rate vs thread count");
    match args.mode {
        Mode::Sim => println!(
            "mode: virtual-time simulation of a 14-core / 28-thread machine \
             (recorded single-threaded workloads; real CC algorithms decide aborts)"
        ),
        Mode::Wall => println!(
            "mode: wall-clock threaded execution on this host \
             (only meaningful on a multi-core machine)"
        ),
    }

    // speedups[system][thread index] across apps, for the geomean block.
    let mut speedups: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); args.threads.len()]; SYSTEMS.len()];

    for &app in &args.apps {
        println!();
        println!("--- {} ---", app.name());
        match args.mode {
            Mode::Sim => sim_app(app, &args, &mut speedups),
            Mode::Wall => wall_app(app, &args, &mut speedups),
        }
    }

    banner("Geomean speedups across applications");
    let mut table = Table::new([
        "threads",
        "TinySTM",
        "TSX-HTM",
        "ROCoCoTM",
        "RoCo/Tiny",
        "RoCo/TSX",
    ]);
    for (ti, &threads) in args.threads.iter().enumerate() {
        let g: Vec<f64> = (0..SYSTEMS.len())
            .map(|si| geomean(&speedups[si][ti]))
            .collect();
        table.row([
            threads.to_string(),
            format!("{:.2}x", g[0]),
            format!("{:.2}x", g[1]),
            format!("{:.2}x", g[2]),
            format!("{:.2}x", g[2] / g[0]),
            format!("{:.2}x", g[2] / g[1]),
        ]);
    }
    table.print();
    println!();
    println!(
        "paper reference: ROCoCoTM geomean 1.41x / 4.04x over TinySTM / TSX at 14 \
         threads and 1.55x / 8.05x at 28 threads; TinySTM 1.32x faster at 1 thread."
    );
}

fn sim_app(app: AppId, args: &Args, speedups: &mut [Vec<Vec<f64>>]) {
    let (records, wall) = record_workload(app, args.preset);
    let mut workload = Workload::from_records(records);
    // Spread host compute that happened between transactions (outside
    // begin..commit, e.g. kmeans' nearest-centre search) uniformly over
    // the phase's transactions so the baseline covers the whole parallel
    // region.
    let measured: f64 = workload.sequential_ns();
    let gap = wall.as_nanos() as f64 - measured;
    if gap > 0.0 && !workload.is_empty() {
        let extra = gap / workload.len() as f64;
        for phase in &mut workload.phases {
            for t in phase {
                t.exec_ns += extra;
            }
        }
    }
    let seq_ns = workload.sequential_ns();
    let (mr, mw) = workload.mean_footprint();
    println!(
        "workload: {} txns in {} phases; mean footprint {:.1}r/{:.1}w; {:.0}% read-only; sequential {:.2} ms",
        workload.len(),
        workload.phases.len(),
        mr,
        mw,
        workload.read_only_fraction() * 100.0,
        seq_ns / 1e6,
    );

    let cost = CostModel::default();
    let mut table = Table::new(["system", "threads", "speedup", "abort", "fpga-abort"]);
    for (si, &sys) in SYSTEMS.iter().enumerate() {
        for (ti, &threads) in args.threads.iter().enumerate() {
            let o = simulate(&workload, sys, threads, &cost);
            assert_eq!(
                o.commits as usize,
                workload.len(),
                "{} lost transactions",
                sys.name()
            );
            let speedup = o.speedup_vs(seq_ns);
            speedups[si][ti].push(speedup);
            table.row([
                sys.name().to_string(),
                threads.to_string(),
                format!("{speedup:.2}x"),
                pct(o.abort_rate()),
                if sys == SimSystem::Rococo {
                    pct(o.fpga_abort_rate())
                } else {
                    "-".into()
                },
            ]);
        }
    }
    table.print();
}

fn wall_app(app: AppId, args: &Args, speedups: &mut [Vec<Vec<f64>>]) {
    let baseline = run(app, SystemKind::Seq, 1, args.preset);
    assert!(baseline.validated, "{}: baseline failed", app.name());
    let base_t = baseline.duration.as_secs_f64();
    println!(
        "sequential baseline: {:.1} ms, {} commits",
        base_t * 1e3,
        baseline.stats.commits
    );
    let kinds = [SystemKind::TinyStm, SystemKind::TsxHtm, SystemKind::Rococo];
    let mut table = Table::new([
        "system",
        "threads",
        "speedup",
        "abort",
        "fpga-abort",
        "valid",
    ]);
    for (si, &kind) in kinds.iter().enumerate() {
        for (ti, &threads) in args.threads.iter().enumerate() {
            let o = run(app, kind, threads, args.preset);
            let speedup = base_t / o.duration.as_secs_f64().max(1e-12);
            speedups[si][ti].push(speedup);
            let fpga_rate = o
                .fpga
                .map(|f| {
                    let reqs = o.stats.commits + o.stats.total_aborts();
                    if reqs == 0 {
                        0.0
                    } else {
                        f.aborts() as f64 / reqs as f64
                    }
                })
                .map(pct)
                .unwrap_or_else(|| "-".into());
            table.row([
                o.system.to_string(),
                threads.to_string(),
                format!("{speedup:.2}x"),
                pct(o.stats.abort_rate()),
                fpga_rate,
                if o.validated {
                    "ok".into()
                } else {
                    "FAIL".to_string()
                },
            ]);
        }
    }
    table.print();
}
