//! Ablation — CPU↔FPGA interconnect latency.
//!
//! HARP2's in-package CCI link gives a sub-600 ns round trip; a discrete
//! PCIe accelerator card costs over a microsecond (paper footnote 8). This
//! ablation sweeps the round-trip latency of the timing model and reports
//! the per-transaction validation cost, unloaded and fully pipelined, plus
//! the break-even transaction length below which out-of-core validation
//! stops paying (the ssca2 effect).

use rococo_bench::{banner, Table};
use rococo_fpga::{
    EngineConfig, PipelinedValidator, TimingModel, ValidateRequest, ValidationEngine,
};

fn request(i: u64, valid_ts: u64) -> ValidateRequest {
    ValidateRequest {
        tx_id: i,
        valid_ts,
        read_addrs: (0..8).map(|j| 1_000_000 + i * 16 + j).collect(),
        write_addrs: (0..4).map(|j| 2_000_000 + i * 16 + j).collect(),
    }
}

fn main() {
    banner("Ablation: interconnect round-trip latency");

    let mut table = Table::new([
        "round trip ns",
        "unloaded us/txn",
        "pipelined us/txn",
        "min txn us to hide",
    ]);
    for rt in [200.0f64, 400.0, 600.0, 1200.0, 2400.0, 4800.0] {
        let timing = TimingModel {
            cci_read_ns: rt / 3.0,
            cci_write_ns: rt * 2.0 / 3.0,
            ..TimingModel::default()
        };
        let mut v = PipelinedValidator::new(ValidationEngine::new(EngineConfig::default()), timing);
        // Saturate the pipeline: 28 lanes submitting back-to-back.
        let mut t_ns = 0.0f64;
        for i in 0..2000u64 {
            let vt = v.engine().next_seq();
            let (_, _) = v.process_at(&request(i, vt), t_ns);
            t_ns += 5.0; // lanes interleave at pipeline rate
        }
        let s = v.stats();
        // With 28 concurrent threads, a transaction's validation latency is
        // hidden if its execution time (times the lane count) covers it.
        let min_txn_us = timing.latency_ns(12) / 28.0 / 1000.0;
        table.row([
            format!("{rt:.0}"),
            format!("{:.3}", timing.latency_ns(12) / 1000.0),
            format!("{:.4}", s.mean_occupancy_us()),
            format!("{min_txn_us:.3}"),
        ]);
    }
    table.print();
    println!();
    println!(
        "expected shape: pipelined occupancy is latency-independent (one clock \
         per transaction), so throughput survives slow links, but the unloaded \
         latency a *single* short transaction sees grows linearly — workloads \
         with tiny transactions (ssca2) need the in-package link, which is why \
         the paper calls HARP2-class integration 'preferable' for TM."
    );
}
