//! trace_report: critical-path attribution analyzer for a
//! `txkv_load --telemetry DIR --attribution` run.
//!
//! Usage: `trace_report <DIR> [--check] [--top N]`
//!
//! Reads `DIR/attribution.json` (one row per tail-sampled request chain,
//! each decomposed into the critical-path stages of
//! [`rococo_telemetry::STAGES`]) and prints a stage-attribution table:
//! for the overall latency-weighted mean and for the requests at p50,
//! p99 and p999 end-to-end latency, the share of each stage —
//! queue-wait, route, exec, validation, commit-publish, fsync, backoff,
//! repl-lag, other. The tail columns answer "what is the p999 made of?"
//! directly, instead of leaving the reader to eyeball Perfetto spans.
//!
//! `--top N` additionally lists the N slowest sampled requests with
//! their dominant stage. `--check` validates the artifact instead of
//! just summarising it: every row's stage nanoseconds must sum exactly
//! to its total, shares must be finite and in `[0, 1]`, and every
//! sampled trace id must have its `s`/`t`/`f` Perfetto flow triplet in
//! `DIR/trace.json` (the cross-lane request arrows). Exits 0 on
//! success, 1 with a diagnostic on the first failure — CI runs this
//! against the trace smoke artifact.

use rococo_telemetry::json::Json;
use rococo_telemetry::quantile::rank_of;
use rococo_telemetry::STAGES;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::process::ExitCode;

/// One parsed `attribution.json` row.
struct Row {
    trace: u64,
    total_ns: u64,
    outcome: String,
    attempts: u32,
    stage_ns: Vec<u64>,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_report: FAIL: {msg}");
    ExitCode::FAILURE
}

fn parse_rows(doc: &Json) -> Result<Vec<Row>, String> {
    let stages = doc
        .get("stages")
        .and_then(Json::as_arr)
        .ok_or("missing \"stages\" array")?;
    let names: Vec<&str> = stages.iter().filter_map(Json::as_str).collect();
    if names != STAGES {
        return Err(format!(
            "stage list {names:?} does not match this binary's {STAGES:?}"
        ));
    }
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing \"rows\" array")?;
    let mut out = Vec::with_capacity(rows.len());
    for (i, r) in rows.iter().enumerate() {
        let num = |key: &str| -> Result<f64, String> {
            r.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("row {i}: missing or non-numeric field {key:?}"))
        };
        let stage_obj = match r.get("stage_ns") {
            Some(Json::Obj(m)) => m,
            _ => return Err(format!("row {i}: missing \"stage_ns\" object")),
        };
        let mut stage_ns = Vec::with_capacity(STAGES.len());
        for s in STAGES {
            let v = stage_obj
                .get(s)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("row {i}: stage_ns missing stage {s:?}"))?;
            stage_ns.push(v as u64);
        }
        if stage_obj.len() != STAGES.len() {
            return Err(format!(
                "row {i}: stage_ns has {} entries, expected {}",
                stage_obj.len(),
                STAGES.len()
            ));
        }
        out.push(Row {
            trace: num("trace")? as u64,
            total_ns: num("total_ns")? as u64,
            outcome: r
                .get("outcome")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("row {i}: missing \"outcome\""))?
                .to_string(),
            attempts: num("attempts")? as u32,
            stage_ns,
        })
    }
    Ok(out)
}

/// Latency-weighted mean stage shares over `rows`.
fn weighted_shares(rows: &[&Row]) -> Vec<f64> {
    let total: u128 = rows.iter().map(|r| r.total_ns as u128).sum();
    if total == 0 {
        return vec![0.0; STAGES.len()];
    }
    let mut out = vec![0.0; STAGES.len()];
    for (i, o) in out.iter_mut().enumerate() {
        let stage: u128 = rows.iter().map(|r| r.stage_ns[i] as u128).sum();
        *o = stage as f64 / total as f64;
    }
    out
}

/// The rows in a small window around the nearest-rank index for quantile
/// `q` of end-to-end latency — "the requests at p99", averaged over a
/// few neighbours so one outlier chain doesn't dominate the column.
fn cohort<'a>(sorted: &'a [&'a Row], q: f64) -> &'a [&'a Row] {
    if sorted.is_empty() {
        return sorted;
    }
    let idx = rank_of(sorted.len() as u64, q) as usize - 1;
    let w = (sorted.len() / 50).max(1);
    let lo = idx.saturating_sub(w / 2);
    let hi = (lo + w).min(sorted.len());
    &sorted[lo..hi]
}

fn print_table(rows: &[Row]) {
    let mut by_total: Vec<&Row> = rows.iter().collect();
    by_total.sort_by_key(|r| r.total_ns);
    let quantile = |q: f64| by_total[rank_of(by_total.len() as u64, q) as usize - 1].total_ns;
    let cohorts = [
        ("mean", weighted_shares(&by_total)),
        ("p50", weighted_shares(cohort(&by_total, 0.5))),
        ("p99", weighted_shares(cohort(&by_total, 0.99))),
        ("p999", weighted_shares(cohort(&by_total, 0.999))),
    ];
    println!(
        "{} sampled chains; end-to-end p50 {} us, p99 {} us, p999 {} us",
        rows.len(),
        quantile(0.5) / 1000,
        quantile(0.99) / 1000,
        quantile(0.999) / 1000,
    );
    print!("{:<16}", "stage");
    for (name, _) in &cohorts {
        print!("{name:>9}");
    }
    println!();
    for (i, stage) in STAGES.iter().enumerate() {
        print!("{stage:<16}");
        for (_, shares) in &cohorts {
            print!("{:>8.1}%", shares[i] * 100.0);
        }
        println!();
    }
}

fn print_top(rows: &[Row], n: usize) {
    let mut by_total: Vec<&Row> = rows.iter().collect();
    by_total.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
    println!("slowest {} sampled requests:", n.min(by_total.len()));
    for r in by_total.iter().take(n) {
        let (stage, ns) = STAGES
            .iter()
            .zip(r.stage_ns.iter())
            .max_by_key(|(_, ns)| **ns)
            .expect("STAGES is non-empty");
        println!(
            "  trace {:>8}  {:>9} us  {:<18} attempts {:>3}  dominant: {} ({:.0}%)",
            r.trace,
            r.total_ns / 1000,
            r.outcome,
            r.attempts,
            stage,
            if r.total_ns == 0 {
                0.0
            } else {
                *ns as f64 * 100.0 / r.total_ns as f64
            },
        );
    }
}

/// `--check`: structural validation of every row plus the flow-event
/// cross-check against `trace.json`.
fn check(dir: &std::path::Path, rows: &[Row]) -> Result<(), String> {
    if rows.is_empty() {
        return Err("attribution.json has zero rows".into());
    }
    for r in rows {
        let sum: u64 = r.stage_ns.iter().sum();
        if sum != r.total_ns {
            return Err(format!(
                "trace {}: stage_ns sums to {} but total_ns is {}",
                r.trace, sum, r.total_ns
            ));
        }
        if r.total_ns == 0 {
            return Err(format!("trace {}: zero total_ns", r.trace));
        }
        if r.attempts == 0 && r.outcome != "shed" {
            return Err(format!(
                "trace {}: zero attempts on outcome {:?}",
                r.trace, r.outcome
            ));
        }
    }
    // Every sampled chain must be linked across lanes in the Perfetto
    // trace by its s/t/f flow triplet (shed chains never reach a worker,
    // so only "s" and "f" are required for them).
    let tjson = std::fs::read_to_string(dir.join("trace.json"))
        .map_err(|e| format!("cannot read trace.json: {e}"))?;
    let tdoc = Json::parse(&tjson).map_err(|e| format!("trace.json: {e}"))?;
    let events = tdoc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace.json: missing \"traceEvents\"")?;
    let mut flows: BTreeMap<u64, BTreeSet<char>> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
        if matches!(ph, "s" | "t" | "f") && e.get("name").and_then(Json::as_str) == Some("req") {
            if let Some(id) = e.get("id").and_then(Json::as_f64) {
                flows
                    .entry(id as u64)
                    .or_default()
                    .insert(ph.chars().next().expect("matched non-empty phase"));
            }
        }
    }
    for r in rows {
        let phases = flows
            .get(&r.trace)
            .ok_or_else(|| format!("trace {}: no flow events in trace.json", r.trace))?;
        let want: &[char] = if r.outcome == "shed" {
            &['s', 'f']
        } else {
            &['s', 't', 'f']
        };
        for ph in want {
            if !phases.contains(ph) {
                return Err(format!(
                    "trace {}: flow phase {ph:?} missing in trace.json (have {phases:?})",
                    r.trace
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut dir: Option<PathBuf> = None;
    let mut do_check = false;
    let mut top = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => do_check = true,
            "--top" => {
                top = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--top needs a count");
            }
            "--help" | "-h" => {
                println!("usage: trace_report <DIR> [--check] [--top N]");
                return ExitCode::SUCCESS;
            }
            other if dir.is_none() => dir = Some(PathBuf::from(other)),
            other => return fail(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(dir) = dir else {
        return fail("missing telemetry directory argument");
    };
    let path = dir.join("attribution.json");
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {}: {e}", path.display())),
    };
    let doc = match Json::parse(&src) {
        Ok(d) => d,
        Err(e) => return fail(&format!("attribution.json: {e}")),
    };
    let rows = match parse_rows(&doc) {
        Ok(r) => r,
        Err(e) => return fail(&format!("attribution.json: {e}")),
    };
    if rows.is_empty() {
        return fail("attribution.json: zero rows");
    }
    print_table(&rows);
    if top > 0 {
        print_top(&rows, top);
    }
    if do_check {
        if let Err(e) = check(&dir, &rows) {
            return fail(&e);
        }
        let incomplete = doc.get("incomplete").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        println!(
            "trace_report: OK ({} rows checked, {} incomplete chains dropped upstream, flows verified)",
            rows.len(),
            incomplete
        );
    }
    ExitCode::SUCCESS
}
