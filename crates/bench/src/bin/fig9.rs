//! Figure 9 — abort rate vs. collision rate for 2PL, TOCC and ROCoCo.
//!
//! Replays the section 6.1 micro-benchmark: 1024 memory locations, `N` =
//! 4..32 accesses per transaction (50 % reads / 50 % writes), 50 seeded
//! traces per point, concurrency T = 4 and T = 16. Reproduction targets:
//! ROCoCo ≤ TOCC ≤ 2PL everywhere; at T = 16 ROCoCo's reduction peaks at
//! low/medium collision rates (the paper reports up to 56.2 % vs 2PL and
//! 20.2 % vs TOCC at a 22.3 % collision rate); at T = 4 the ROCoCo–TOCC
//! gap is small; above ~50 % collision the three converge.

use rococo_bench::{banner, pct, Table};
use rococo_cc::sweep::{fig9_sweep, Fig9Config};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = Fig9Config {
        seeds: if quick { 10 } else { 50 },
        transactions: if quick { 400 } else { 1000 },
        ..Fig9Config::default()
    };

    banner("Figure 9: abort rate vs collision rate (micro-benchmark, section 6.1)");
    println!(
        "{} traces x {} txns per point; 1024 locations; window W = {}",
        cfg.seeds, cfg.transactions, cfg.window
    );

    let points = fig9_sweep(&cfg);
    for &t in &cfg.concurrency_levels {
        println!();
        println!("T = {t} concurrent transactions");
        let mut table = Table::new([
            "N",
            "collision",
            "2PL abort",
            "TOCC abort",
            "ROCoCo abort",
            "vs 2PL",
            "vs TOCC",
        ]);
        // Reductions at the paper's quoted operating point (N = 16,
        // collision ≈ 22.3 %).
        let mut at_paper_point = (0.0f64, 0.0f64);
        for p in points.iter().filter(|p| p.concurrency == t) {
            let red_2pl = if p.abort_2pl > 0.0 {
                1.0 - p.abort_rococo / p.abort_2pl
            } else {
                0.0
            };
            let red_tocc = if p.abort_tocc > 0.0 {
                1.0 - p.abort_rococo / p.abort_tocc
            } else {
                0.0
            };
            if p.accesses == 16 {
                at_paper_point = (red_2pl, red_tocc);
            }
            table.row([
                p.accesses.to_string(),
                pct(p.collision_rate),
                pct(p.abort_2pl),
                pct(p.abort_tocc),
                pct(p.abort_rococo),
                format!("-{}", pct(red_2pl).trim_start()),
                format!("-{}", pct(red_tocc).trim_start()),
            ]);
        }
        table.print();
        println!(
            "  at the paper's operating point (N=16, collision 22.3%): ROCoCo aborts {} less than 2PL, {} less than TOCC",
            pct(at_paper_point.0),
            pct(at_paper_point.1),
        );
    }

    println!();
    println!(
        "paper reference (T=16): up to 56.2% lower aborts than 2PL and 20.2% \
         lower than TOCC at a 22.3% collision rate."
    );
}
