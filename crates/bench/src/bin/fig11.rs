//! Figure 11 — amortised per-transaction validation overhead.
//!
//! Instruments the commit-time validation phase of TinySTM (the CPU walks
//! every entry of the read set) and of ROCoCoTM (round trip to the
//! simulated FPGA), per STAMP application. ROCoCoTM's overhead is reported
//! both in *model time* (what the 200 MHz pipeline + CCI link would cost —
//! the quantity comparable to the paper) and wall time of the simulation.
//!
//! Reproduction targets: ROCoCoTM's model-time overhead stays below one
//! microsecond everywhere and is insensitive to read-set size, while
//! TinySTM's grows with the read set — most visibly on labyrinth.

use rococo_bench::{banner, Table};
use rococo_stamp::apps::AppId;
use rococo_stamp::harness::{run, Preset, SystemKind};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let preset = if quick { Preset::Tiny } else { Preset::Small };
    let threads = if quick { 4 } else { 8 };

    banner("Figure 11: per-transaction validation overhead (microseconds)");
    println!("threads = {threads}; ROCoCoTM model time charges the 200 MHz pipeline + CCI link");
    println!();

    let apps = [
        AppId::Genome,
        AppId::Intruder,
        AppId::KmeansHigh,
        AppId::Labyrinth,
        AppId::Ssca2,
        AppId::VacationHigh,
        AppId::Yada,
    ];
    let mut table = Table::new([
        "app",
        "TinySTM us (wall)",
        "ROCoCoTM us (model)",
        "ROCoCoTM us (sim wall)",
    ]);
    for app in apps {
        let tiny = run(app, SystemKind::TinyStm, threads, preset);
        let roc = run(app, SystemKind::Rococo, threads, preset);
        assert!(tiny.validated && roc.validated, "{} failed", app.name());
        table.row([
            app.name().to_string(),
            format!("{:.3}", tiny.stats.mean_validation_us()),
            format!("{:.3}", roc.stats.mean_validation_model_us()),
            format!("{:.3}", roc.stats.mean_validation_us()),
        ]);
    }
    table.print();
    println!();
    println!(
        "paper reference: ROCoCoTM stays below 1 us for all applications; \
         TinySTM's overhead scales with read-set size (labyrinth worst)."
    );
}
