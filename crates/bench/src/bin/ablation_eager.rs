//! Ablation — where ROCoCoTM aborts die: CPU fast path vs FPGA.
//!
//! Section 6.3: "most aborts of ROCoCoTM fail fast on CPU, without going
//! through the validation process on FPGA", and read-only transactions
//! "commit directly on CPU-side". This ablation quantifies both effects
//! per STAMP application on the virtual-time simulator (on the single-core
//! build host, wall-mode executors virtually never observe a conflicting
//! commit mid-transaction, so the CPU path cannot trigger there — the
//! simulator models read times explicitly).

use rococo_bench::{banner, pct, Table};
use rococo_sim::{simulate, CostModel, SimSystem, Workload};
use rococo_stamp::apps::AppId;
use rococo_stamp::harness::{record_workload, Preset};
use rococo_stm::AbortKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let preset = if quick { Preset::Tiny } else { Preset::Small };
    let threads = 14;

    banner("Ablation: CPU fast-abort path and read-only fast commits (ROCoCoTM)");
    println!("virtual-time simulation, {threads} workers");
    println!();

    let mut table = Table::new([
        "app",
        "aborts",
        "CPU-side",
        "FPGA-side",
        "commits",
        "read-only (no FPGA)",
    ]);
    for app in AppId::ALL {
        let (records, _) = record_workload(app, preset);
        let w = Workload::from_records(records);
        let o = simulate(&w, SimSystem::Rococo, threads, &CostModel::default());
        let aborts = o.total_aborts();
        let cpu = o.aborts.get(&AbortKind::Conflict).copied().unwrap_or(0);
        let fpga = o.aborts.get(&AbortKind::FpgaCycle).copied().unwrap_or(0)
            + o.aborts.get(&AbortKind::FpgaWindow).copied().unwrap_or(0);
        table.row([
            app.name().to_string(),
            aborts.to_string(),
            if aborts > 0 {
                pct(cpu as f64 / aborts as f64)
            } else {
                "-".into()
            },
            if aborts > 0 {
                pct(fpga as f64 / aborts as f64)
            } else {
                "-".into()
            },
            o.commits.to_string(),
            pct(w.read_only_fraction()),
        ]);
    }
    table.print();
    println!();
    println!(
        "expected shape: the CPU-side share dominates wherever contention is \
         high (aborting before paying the out-of-core hop), and genome-like \
         workloads commit large read-only fractions without any FPGA traffic."
    );
}
