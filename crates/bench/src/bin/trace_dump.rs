//! trace_dump: exact model-time Perfetto trace of the validation pipeline.
//!
//! Where `txkv_load --telemetry` projects *modelled* stage occupancy onto
//! wall-clock validation windows, this bin drives the cycle-level
//! [`PipelinedValidator`] directly, so every Detector/Manager slice sits
//! at its exact model-time position — including ingress head-of-line
//! blocking when transactions arrive faster than the initiation interval.
//!
//! Usage:
//!   trace_dump [--txns N] [--lanes N] [--addrs N] [--spacing-ns F]
//!              [--conflict PCT] [--out PATH]
//!
//! Each simulated transaction occupies one lane track (pid 1) from its
//! arrival to the model time its verdict reaches the CPU; the Detector
//! and Manager tracks (pid 2) carry the corresponding stage slices. With
//! `--spacing-ns` below the unloaded latency the trace shows the paper's
//! pipelining story: many in-flight transactions sharing one engine whose
//! per-transaction ingress occupancy is a handful of cycles.
//!
//! Load the output at <https://ui.perfetto.dev> or `chrome://tracing`.

use rococo_fpga::{
    EngineConfig, PipelinedValidator, TimingModel, ValidateRequest, ValidationEngine,
};
use rococo_telemetry::{Arg, TraceBuilder, DETECTOR_TID, FPGA_PID, MANAGER_TID, TX_PID};
use std::process::ExitCode;

struct Cfg {
    txns: u64,
    lanes: u32,
    addrs: usize,
    spacing_ns: f64,
    conflict_pct: u32,
    out: String,
}

impl Default for Cfg {
    fn default() -> Self {
        Self {
            txns: 64,
            lanes: 4,
            addrs: 16,
            spacing_ns: 120.0,
            conflict_pct: 25,
            out: "trace_dump.json".to_string(),
        }
    }
}

fn parse_args() -> Result<Cfg, String> {
    let mut cfg = Cfg::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--txns" => cfg.txns = val("--txns")?.parse().map_err(|e| format!("--txns: {e}"))?,
            "--lanes" => {
                cfg.lanes = val("--lanes")?
                    .parse()
                    .map_err(|e| format!("--lanes: {e}"))?;
                if cfg.lanes == 0 {
                    return Err("--lanes must be positive".into());
                }
            }
            "--addrs" => {
                cfg.addrs = val("--addrs")?
                    .parse()
                    .map_err(|e| format!("--addrs: {e}"))?;
                if cfg.addrs == 0 {
                    return Err("--addrs must be positive".into());
                }
            }
            "--spacing-ns" => {
                cfg.spacing_ns = val("--spacing-ns")?
                    .parse()
                    .map_err(|e| format!("--spacing-ns: {e}"))?
            }
            "--conflict" => {
                cfg.conflict_pct = val("--conflict")?
                    .parse()
                    .map_err(|e| format!("--conflict: {e}"))?
            }
            "--out" => cfg.out = val("--out")?,
            "--help" | "-h" => {
                println!(
                    "usage: trace_dump [--txns N] [--lanes N] [--addrs N] \
                     [--spacing-ns F] [--conflict PCT] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cfg)
}

/// Deterministic xorshift so reruns produce byte-identical traces.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("trace_dump: {e}");
            return ExitCode::FAILURE;
        }
    };

    let timing = TimingModel::default();
    let mut v = PipelinedValidator::new(ValidationEngine::new(EngineConfig::default()), timing);

    let mut tb = TraceBuilder::new();
    tb.process_name(TX_PID, "transactions (model time)");
    tb.process_name(FPGA_PID, "fpga-pipeline (model time, exact)");
    tb.thread_name(FPGA_PID, DETECTOR_TID, "Detector");
    tb.thread_name(FPGA_PID, MANAGER_TID, "Manager");
    for lane in 0..cfg.lanes {
        tb.thread_name(TX_PID, lane, &format!("client lane {lane}"));
    }

    // A shared hot range produces real conflicts; the rest of each
    // transaction's footprint is private, keyed by transaction id.
    let mut rng = 0x9e3779b97f4a7c15u64;
    let mut commits = 0u64;
    let mut aborts = 0u64;
    for i in 0..cfg.txns {
        let lane = (i % cfg.lanes as u64) as u32;
        let arrival = i as f64 * cfg.spacing_ns;

        let hot = next_rand(&mut rng) % 100 < cfg.conflict_pct as u64;
        let reads: Vec<u64> = (0..cfg.addrs / 2)
            .map(|j| {
                if hot && j == 0 {
                    64 + (next_rand(&mut rng) % 8)
                } else {
                    1_000_000 + i * 64 + j as u64
                }
            })
            .collect();
        let writes: Vec<u64> = (0..cfg.addrs - cfg.addrs / 2)
            .map(|j| {
                if hot && j == 0 {
                    64 + (next_rand(&mut rng) % 8)
                } else {
                    2_000_000 + i * 64 + j as u64
                }
            })
            .collect();
        let req = ValidateRequest {
            tx_id: i,
            // Stale snapshots under contention: lag the window by a few
            // commits so the hot range forces genuine aborts.
            valid_ts: v.engine().next_seq().saturating_sub(3),
            read_addrs: reads,
            write_addrs: writes,
        };
        let n_addrs = req.read_addrs.len() + req.write_addrs.len();

        // Reproduce the validator's ingress arithmetic so the stage
        // slices land exactly where the model places them.
        let free_before = v.ingress_free_at_ns();
        let start = (arrival + timing.cci_read_ns).max(free_before);
        let det_ns = timing.detector_ns(n_addrs);
        let mgr_ns = timing.manager_ns();

        let (verdict, done) = v.process_at(&req, arrival);
        let outcome = if verdict.is_commit() {
            commits += 1;
            "commit"
        } else {
            aborts += 1;
            "abort"
        };

        let args: &[(&str, Arg)] = &[
            ("tx_id", i.into()),
            ("outcome", outcome.into()),
            ("addrs", (n_addrs as u64).into()),
            (
                "queue_wait_ns",
                (start - arrival - timing.cci_read_ns).into(),
            ),
        ];
        tb.complete(
            "tx",
            "tx",
            TX_PID,
            lane,
            arrival / 1000.0,
            (done - arrival) / 1000.0,
            args,
        );
        tb.complete(
            "detector",
            "fpga",
            FPGA_PID,
            DETECTOR_TID,
            start / 1000.0,
            det_ns / 1000.0,
            args,
        );
        tb.complete(
            "manager",
            "fpga",
            FPGA_PID,
            MANAGER_TID,
            (start + det_ns) / 1000.0,
            mgr_ns / 1000.0,
            args,
        );
    }

    let doc = tb.render();
    if let Err(e) = std::fs::write(&cfg.out, &doc) {
        eprintln!("trace_dump: cannot write {}: {e}", cfg.out);
        return ExitCode::FAILURE;
    }
    let stats = v.stats();
    println!(
        "trace_dump: {} txns ({} commit, {} abort), mean latency {:.3} us, \
         mean occupancy {:.4} us, {} trace events -> {}",
        cfg.txns,
        commits,
        aborts,
        stats.mean_latency_us(),
        stats.mean_occupancy_us(),
        tb.len(),
        cfg.out
    );
    ExitCode::SUCCESS
}
