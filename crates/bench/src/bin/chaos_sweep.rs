//! Chaos-harness sweep: abort behaviour of every TM backend under the
//! serializability oracle, across fault presets and commit-queue
//! geometries. Complements the figure binaries: instead of throughput,
//! this reports the *safety margin* — abort rates, failure streaks
//! against the irrevocability bound, and injected-fault counts — and
//! fails loudly (with a reproducer command) if any run violates an
//! oracle.
//!
//! ```text
//! cargo run --release -p rococo-bench --bin chaos_sweep            # default matrix
//! cargo run --release -p rococo-bench --bin chaos_sweep -- --quick # 1 seed, fewer ops
//! ```

use rococo_bench::{banner, pct, Table};
use rococo_chaos::{reproducer_command, sweep, BackendKind, ChaosParams};
use std::process::ExitCode;

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick { vec![1] } else { vec![1, 7, 42] };
    let ops = if quick { 150 } else { 400 };

    let mut failures: Vec<ChaosParams> = Vec::new();

    banner("Chaos sweep: backends x fault presets (queue_len 8)");
    let base = ChaosParams {
        threads: 4,
        ops_per_thread: ops,
        accounts: 16,
        queue_len: 8,
        window: 8,
        update_spin: 512,
        irrevocable_after: 8,
        ..ChaosParams::default()
    };
    let mut table = Table::new([
        "backend", "faults", "seed", "commits", "aborts", "abort%", "streak", "injected", "oracle",
    ]);
    for r in sweep(&base, &seeds, &BackendKind::ALL) {
        let attempts = r.commits + r.aborts;
        table.row([
            r.params.backend.name().to_string(),
            r.params.faults.name().to_string(),
            r.params.seed.to_string(),
            r.commits.to_string(),
            r.aborts.to_string(),
            pct(r.aborts as f64 / attempts.max(1) as f64),
            r.max_failed_streak.to_string(),
            r.injected
                .map_or_else(|| "-".into(), |f| f.total().to_string()),
            if r.ok() {
                "OK".into()
            } else {
                "FAIL".to_string()
            },
        ]);
        if !r.ok() {
            failures.push(r.params);
        }
    }
    table.print();

    banner("Chaos sweep: ROCoCoTM commit-queue geometry (all fault presets)");
    let mut table = Table::new([
        "queue", "window", "spin", "faults", "seed", "commits", "aborts", "abort%", "streak",
        "oracle",
    ]);
    for (queue_len, window, update_spin) in [(4, 4, 128), (8, 8, 512), (16, 8, 512)] {
        let geo = ChaosParams {
            queue_len,
            window,
            update_spin,
            irrevocable_after: 4,
            ..base
        };
        for r in sweep(&geo, &seeds, &[BackendKind::Rococo]) {
            let attempts = r.commits + r.aborts;
            table.row([
                queue_len.to_string(),
                window.to_string(),
                update_spin.to_string(),
                r.params.faults.name().to_string(),
                r.params.seed.to_string(),
                r.commits.to_string(),
                r.aborts.to_string(),
                pct(r.aborts as f64 / attempts.max(1) as f64),
                r.max_failed_streak.to_string(),
                if r.ok() {
                    "OK".into()
                } else {
                    "FAIL".to_string()
                },
            ]);
            if !r.ok() {
                failures.push(r.params);
            }
        }
    }
    table.print();

    if failures.is_empty() {
        println!("\nall chaos sweeps passed the oracle");
        return ExitCode::SUCCESS;
    }
    eprintln!("\n{} sweep runs FAILED the oracle:", failures.len());
    for p in &failures {
        eprintln!("  reproduce with: {}", reproducer_command(p));
    }
    ExitCode::FAILURE
}
