//! bench_check: schema validation for a `txkv_load` JSON report.
//!
//! Usage: `bench_check <FILE> [--min-rows N] [--require-open-shed]
//! [--require-hybrid] [--require-attribution]`
//!
//! Validates `BENCH_txkv.json` (or any report `txkv_load --json` wrote,
//! possibly grown with `--append`): the document must be
//! `{"bench":"txkv_load","rows":[...]}` and every row must be
//! self-contained — full workload configuration (shards, workers, batch
//! ceiling, mode, ...) plus the result columns (throughput, tail
//! latency, abort rate). `--min-rows` asserts a lower bound on the row
//! count; `--require-open-shed` asserts that at least one open-loop row
//! shed requests, i.e. that an overload smoke actually overloaded;
//! `--require-hybrid` asserts that at least one row came from the
//! hybrid router and carries its `sched` counter object;
//! `--require-attribution` asserts that at least one row carries a
//! critical-path `attribution` object. Any row that has one (flag or
//! not) is held to its invariants: every stage share finite, in
//! `[0, 1]`, named after [`rococo_telemetry::STAGES`], and the shares
//! summing to 1.0 ± 0.02 — an attribution that over- or under-explains
//! the latency it claims to decompose is worse than none.
//!
//! Exits 0 on success, 1 with a diagnostic on the first failure — the
//! CI bench-smoke step runs this against short closed- and open-loop
//! `txkv_load` runs.

use rococo_telemetry::json::Json;
use std::path::PathBuf;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_check: FAIL: {msg}");
    ExitCode::FAILURE
}

/// Field names every row must carry with a numeric value.
const NUM_FIELDS: &[&str] = &[
    "ops",
    "shards",
    "workers_per_shard",
    "clients",
    "keys",
    "theta",
    "read_pct",
    "batch",
    "elapsed_s",
    "committed",
    "throughput_rps",
    "shed",
    "failed",
    "abort_rate",
    "p50_ns",
    "p99_ns",
    "p999_ns",
];

fn check_row(i: usize, row: &Json) -> Result<(), String> {
    let ctx = |field: &str| format!("row {i}: bad or missing \"{field}\"");
    for f in ["label", "backend", "durability"] {
        row.get(f).and_then(Json::as_str).ok_or_else(|| ctx(f))?;
    }
    for f in NUM_FIELDS {
        let v = row.get(f).and_then(Json::as_f64).ok_or_else(|| ctx(f))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!(
                "row {i}: \"{f}\" = {v} is not a finite non-negative"
            ));
        }
    }
    match row.get("flight_recorder") {
        Some(Json::Bool(_)) => {}
        _ => return Err(ctx("flight_recorder")),
    }
    let mode = row
        .get("mode")
        .and_then(Json::as_str)
        .ok_or_else(|| ctx("mode"))?;
    match mode {
        "closed" => {}
        "open" => {
            // Open-loop rows must say how fast they offered load;
            // shed counts are meaningless without the arrival rate.
            row.get("rate_per_client")
                .and_then(Json::as_f64)
                .ok_or_else(|| ctx("rate_per_client"))?;
        }
        other => return Err(format!("row {i}: unknown mode {other:?}")),
    }
    // The batch ceiling is at least one job per batch by construction.
    if row.get("batch").and_then(Json::as_f64).unwrap_or(0.0) < 1.0 {
        return Err(format!("row {i}: batch ceiling below 1"));
    }
    match row.get("wal") {
        Some(Json::Null) => {}
        Some(w @ Json::Obj(_)) => {
            for f in ["acked_records", "batches", "fsyncs"] {
                w.get(f)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("row {i}: wal object missing numeric \"{f}\""))?;
            }
        }
        _ => return Err(ctx("wal")),
    }
    if let Some(r) = row.get("repl") {
        for f in ["replicas", "lag_p50_seq", "lag_p99_seq", "failover_ms"] {
            r.get(f)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("row {i}: repl object missing numeric \"{f}\""))?;
        }
    }
    // `deferred` (server-side router/batching deferrals, split from the
    // client-side `shed` column) joined the schema with the hybrid
    // backend; older appended rows may predate it.
    if let Some(d) = row.get("deferred") {
        let v = d
            .as_f64()
            .ok_or_else(|| format!("row {i}: \"deferred\" is not numeric"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!(
                "row {i}: \"deferred\" = {v} is not a finite non-negative"
            ));
        }
    }
    // Hybrid rows carry the router's counters; the split routes/commits
    // must be internally consistent with the row itself.
    if let Some(s) = row.get("sched") {
        for f in [
            "routes_htm",
            "routes_sw",
            "commits_htm",
            "commits_sw",
            "migrations",
            "capacity_bans",
            "deferrals",
            "adapts",
            "serialized_classes",
            "read_bound",
            "write_bound",
        ] {
            let v = s
                .get(f)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("row {i}: sched object missing numeric \"{f}\""))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "row {i}: sched \"{f}\" = {v} is not a finite non-negative"
                ));
            }
        }
        let commits = row.get("committed").and_then(Json::as_f64).unwrap_or(0.0);
        let split = s.get("commits_htm").and_then(Json::as_f64).unwrap_or(0.0)
            + s.get("commits_sw").and_then(Json::as_f64).unwrap_or(0.0);
        if split < commits {
            return Err(format!(
                "row {i}: sched commit split {split} below the row's {commits} committed"
            ));
        }
    }
    // Rows from `--attribution` runs carry the critical-path summary;
    // its stage shares must decompose the latency they claim to.
    if let Some(a) = row.get("attribution") {
        check_attribution(i, a)?;
    }
    Ok(())
}

/// Validates one row's `attribution` object: sampled/observed counts,
/// tail percentiles, and stage shares that sum to ~1.0.
fn check_attribution(i: usize, a: &Json) -> Result<(), String> {
    for f in ["sampled", "observed", "p50_ns", "p99_ns", "p999_ns"] {
        let v = a
            .get(f)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("row {i}: attribution missing numeric \"{f}\""))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!(
                "row {i}: attribution \"{f}\" = {v} is not a finite non-negative"
            ));
        }
    }
    if a.get("sampled").and_then(Json::as_f64).unwrap_or(0.0) < 1.0 {
        return Err(format!("row {i}: attribution sampled zero chains"));
    }
    let shares = match a.get("shares") {
        Some(s @ Json::Obj(m)) => {
            if m.len() != rococo_telemetry::STAGES.len() {
                return Err(format!(
                    "row {i}: attribution has {} stage shares, expected {}",
                    m.len(),
                    rococo_telemetry::STAGES.len()
                ));
            }
            s
        }
        _ => return Err(format!("row {i}: attribution missing \"shares\" object")),
    };
    let mut sum = 0.0f64;
    for stage in rococo_telemetry::STAGES {
        let v = shares
            .get(stage)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("row {i}: attribution shares missing stage \"{stage}\""))?;
        if !v.is_finite() || !(0.0..=1.0).contains(&v) {
            return Err(format!(
                "row {i}: attribution share \"{stage}\" = {v} outside [0, 1]"
            ));
        }
        sum += v;
    }
    if (sum - 1.0).abs() > 0.02 {
        return Err(format!(
            "row {i}: attribution stage shares sum to {sum:.4}, need 1.0 +/- 0.02"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut min_rows = 1usize;
    let mut require_open_shed = false;
    let mut require_hybrid = false;
    let mut require_attribution = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-rows" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    return fail("--min-rows needs a number");
                };
                min_rows = v;
            }
            "--require-open-shed" => require_open_shed = true,
            "--require-hybrid" => require_hybrid = true,
            "--require-attribution" => require_attribution = true,
            "--help" | "-h" => {
                println!(
                    "usage: bench_check <FILE> [--min-rows N] [--require-open-shed] \
                     [--require-hybrid] [--require-attribution]"
                );
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(PathBuf::from(other)),
            other => return fail(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(path) = path else {
        return fail("missing report file argument");
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {}: {e}", path.display())),
    };
    let doc = match Json::parse(&src) {
        Ok(d) => d,
        Err(e) => return fail(&format!("{}: {e}", path.display())),
    };
    if doc.get("bench").and_then(Json::as_str) != Some("txkv_load") {
        return fail("top-level \"bench\" is not \"txkv_load\"");
    }
    let rows = match doc.get("rows").and_then(Json::as_arr) {
        Some(r) => r,
        None => return fail("missing \"rows\" array"),
    };
    if rows.len() < min_rows {
        return fail(&format!("{} rows, need at least {min_rows}", rows.len()));
    }
    for (i, row) in rows.iter().enumerate() {
        if let Err(e) = check_row(i, row) {
            return fail(&e);
        }
    }
    if require_open_shed {
        let overloaded = rows.iter().any(|r| {
            r.get("mode").and_then(Json::as_str) == Some("open")
                && r.get("shed").and_then(Json::as_f64).unwrap_or(0.0) > 0.0
        });
        if !overloaded {
            return fail("no open-loop row shed any request (overload smoke did not overload)");
        }
    }
    if require_hybrid {
        let hybrid = rows.iter().any(|r| {
            r.get("backend").and_then(Json::as_str) == Some("hybrid") && r.get("sched").is_some()
        });
        if !hybrid {
            return fail("no hybrid row with a sched counter object");
        }
    }
    if require_attribution && !rows.iter().any(|r| r.get("attribution").is_some()) {
        return fail("no row carries a critical-path attribution object");
    }
    println!(
        "bench_check: OK ({} rows{}{}{})",
        rows.len(),
        if require_open_shed {
            ", open-loop shedding observed"
        } else {
            ""
        },
        if require_hybrid {
            ", hybrid sched row present"
        } else {
            ""
        },
        if require_attribution {
            ", attribution row present"
        } else {
            ""
        }
    );
    ExitCode::SUCCESS
}
