//! TxKV load generator: drives the sharded KV service with a skewed
//! key-value workload and prints a throughput / latency / abort report
//! per backend.
//!
//! Closed-loop mode (default) runs `--clients` threads that each issue
//! their share of `--ops` requests back-to-back, retrying shed requests;
//! open-loop mode (`--open-loop RATE`, or `--mode open --rate R`) paces
//! submissions at the given requests/s per client and counts shed
//! requests as lost, so queue-wait shows up in the latency tail instead
//! of slowing the arrival process.
//!
//! Each run also lands in a machine-readable JSON report
//! (`BENCH_txkv.json` by default): `{"bench":"txkv_load","rows":[...]}`
//! with one self-contained row per backend × durability mode × batch
//! ceiling, each row carrying its full configuration (shards, workers,
//! batch, mode, ...) plus throughput, tail latency and abort figures, so
//! CI and notebooks can track performance without scraping the text
//! output. `--append` splices this invocation's rows into an existing
//! report instead of overwriting it — that is how before/after rows from
//! different configurations accumulate in one artifact — and `--label`
//! tags the rows so a reader can tell which optimisation or experiment
//! each row belongs to. `--durability` takes a comma-separated list of
//! modes: `none` (in-memory, the default) and/or WAL fsync policies
//! (`always`, `everyN`, `never`); `--batch` takes a comma-separated list
//! of worker batch ceilings (`TxKvConfig::max_batch` values) — `--batch
//! 1,16` yields a before/after pair for the run-to-completion batching
//! optimisation.
//!
//! ```text
//! cargo run -p rococo-bench --bin txkv_load            # tinystm + rococo, 1M ops each
//! cargo run -p rococo-bench --bin txkv_load -- --quick # 100k ops for smoke runs
//! cargo run -p rococo-bench --bin txkv_load -- --backend rococo --open-loop 50000
//! cargo run -p rococo-bench --bin txkv_load -- --backend rococo --batch 1,16
//! cargo run -p rococo-bench --bin txkv_load -- --durability none,always --read-pct 20
//! ```

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rococo_bench::banner;
use rococo_repl::{Cluster, ClusterConfig, ReplError};
use rococo_sched::{HybridTm, SchedSnapshot};
use rococo_server::{
    DurabilityConfig, PendingReply, Request, Response, TelemetryConfig, TxKv, TxKvConfig, TxKvError,
};
use rococo_stm::{RococoTm, TinyStm, TmConfig, TmSystem, TsxHtm};
use rococo_trace::ZipfSampler;
use rococo_wal::{FsyncPolicy, Pow2Histogram};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open,
}

/// One durability mode under test: in-memory, or WAL with a given fsync
/// policy.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Durability {
    None,
    Wal(FsyncPolicy),
}

impl Durability {
    fn name(self) -> String {
        match self {
            Durability::None => "none".into(),
            Durability::Wal(f) => f.name(),
        }
    }

    fn parse(s: &str) -> Option<Self> {
        if s == "none" {
            return Some(Durability::None);
        }
        FsyncPolicy::parse(s).map(Durability::Wal)
    }
}

#[derive(Debug, Clone)]
struct LoadCfg {
    backend: String,
    ops: u64,
    shards: usize,
    workers_per_shard: usize,
    clients: usize,
    keys: u64,
    theta: f64,
    read_pct: u32,
    mode: Mode,
    rate: u64,
    queue_capacity: usize,
    /// Worker batch ceilings to sweep (`TxKvConfig::max_batch`), one run
    /// per value — `--batch 1,16` produces a before/after pair for the
    /// run-to-completion batching optimisation.
    batch: Vec<usize>,
    durability: Vec<Durability>,
    json_path: String,
    /// Free-text tag stamped on every JSON row of this invocation, e.g.
    /// the optimisation a before/after pair measures.
    label: String,
    /// Splice this invocation's rows into an existing report instead of
    /// overwriting it.
    append: bool,
    /// Telemetry artifact directory: enables the flight recorder, the
    /// service's metric scraper, and the Perfetto trace export.
    telemetry: Option<String>,
    /// Run each configuration twice — flight recorder off, then on — so
    /// the JSON report carries a before/after throughput pair.
    compare_telemetry: bool,
    /// Tail-sampled causal tracing: keep full event chains for the
    /// slowest-k requests per latency bucket (plus all failed ones),
    /// decompose each into critical-path stages, write the
    /// `attribution.json` artifact next to the trace, and stamp an
    /// `attribution` summary object on the recorder-on JSON rows.
    attribution: bool,
    /// Follower replica count; non-zero switches to replicated cluster
    /// mode (closed loop, WAL-shipped replication, one mid-run
    /// fail-over), emitting `repl` rows with lag and downtime.
    replicas: usize,
}

impl Default for LoadCfg {
    fn default() -> Self {
        Self {
            backend: "both".into(),
            ops: 1_000_000,
            shards: 4,
            workers_per_shard: 2,
            clients: 8,
            keys: 1 << 16,
            theta: 0.9,
            read_pct: 80,
            mode: Mode::Closed,
            rate: 25_000,
            queue_capacity: 256,
            batch: vec![TxKvConfig::default().max_batch],
            durability: vec![Durability::None],
            json_path: "BENCH_txkv.json".into(),
            label: String::new(),
            append: false,
            telemetry: None,
            compare_telemetry: false,
            attribution: false,
            replicas: 0,
        }
    }
}

fn parse_args() -> LoadCfg {
    let mut cfg = LoadCfg::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--backend" => cfg.backend = value("--backend"),
            "--ops" => cfg.ops = value("--ops").parse().expect("--ops"),
            "--shards" => cfg.shards = value("--shards").parse().expect("--shards"),
            "--workers" => cfg.workers_per_shard = value("--workers").parse().expect("--workers"),
            "--clients" => cfg.clients = value("--clients").parse().expect("--clients"),
            "--keys" => cfg.keys = value("--keys").parse().expect("--keys"),
            "--theta" => cfg.theta = value("--theta").parse().expect("--theta"),
            "--read-pct" => cfg.read_pct = value("--read-pct").parse().expect("--read-pct"),
            "--rate" => cfg.rate = value("--rate").parse().expect("--rate"),
            "--queue" => cfg.queue_capacity = value("--queue").parse().expect("--queue"),
            "--mode" => {
                cfg.mode = match value("--mode").as_str() {
                    "open" => Mode::Open,
                    "closed" => Mode::Closed,
                    other => panic!("unknown mode {other} (open|closed)"),
                }
            }
            // Shorthand for `--mode open --rate R`.
            "--open-loop" => {
                cfg.mode = Mode::Open;
                cfg.rate = value("--open-loop").parse().expect("--open-loop");
            }
            "--batch" => {
                cfg.batch = value("--batch")
                    .split(',')
                    .map(|s| s.parse().expect("--batch"))
                    .collect();
                assert!(!cfg.batch.is_empty(), "--batch needs at least one value");
            }
            "--durability" => {
                cfg.durability = value("--durability")
                    .split(',')
                    .map(|s| {
                        Durability::parse(s)
                            .unwrap_or_else(|| panic!("unknown durability mode {s:?}"))
                    })
                    .collect();
            }
            "--json" => cfg.json_path = value("--json"),
            "--label" => {
                cfg.label = value("--label");
                assert!(
                    !cfg.label.contains(['"', '\\']),
                    "--label must not contain quotes or backslashes (hand-rolled JSON)"
                );
            }
            "--append" => cfg.append = true,
            "--telemetry" => cfg.telemetry = Some(value("--telemetry")),
            "--compare-telemetry" => cfg.compare_telemetry = true,
            "--attribution" => cfg.attribution = true,
            "--replicas" => cfg.replicas = value("--replicas").parse().expect("--replicas"),
            "--quick" => cfg.ops = 100_000,
            "--help" | "-h" => {
                println!(
                    "txkv_load [--backend tinystm|htm|rococo|hybrid|both|all] [--ops N] \
                     [--shards N] [--workers N] [--clients N] [--keys N] [--theta F] \
                     [--read-pct P] [--mode closed|open] [--rate R] [--open-loop R] \
                     [--queue N] [--batch N,M,...] \
                     [--durability none,always,everyN,never] [--json PATH|none] \
                     [--label TEXT] [--append] \
                     [--telemetry DIR] [--compare-telemetry] [--attribution] \
                     [--replicas N] [--quick]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other} (try --help)"),
        }
    }
    assert!(
        !cfg.attribution || cfg.telemetry.is_some(),
        "--attribution requires --telemetry DIR (it is derived from recorded traces)"
    );
    cfg
}

/// One random request drawn from the configured mix: `read_pct` % reads
/// (mostly point gets, some snapshot multi-gets), the rest split across
/// blind puts, read-modify-writes and two-key transfers. Keys are
/// Zipf-distributed so hot keys collide like a real cache-line-hot
/// workload.
fn gen_request(rng: &mut StdRng, zipf: &ZipfSampler, cfg: &LoadCfg) -> Request {
    let roll = rng.gen_range(0u32..100);
    let key = zipf.sample(rng);
    if roll < cfg.read_pct {
        if roll % 8 == 0 {
            let n = rng.gen_range(2usize..=8);
            let keys = (0..n).map(|_| zipf.sample(rng)).collect();
            Request::MultiGet { keys }
        } else {
            Request::Get { key }
        }
    } else {
        match roll % 3 {
            0 => Request::Put {
                key,
                value: rng.gen_range(0u64..1_000),
            },
            1 => Request::Add {
                key,
                delta: rng.gen_range(1u64..=16),
            },
            _ => {
                let to = zipf.sample(rng);
                Request::Transfer {
                    from: key,
                    to,
                    amount: rng.gen_range(1u64..=8),
                }
            }
        }
    }
}

struct ClientTotals {
    ok: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
}

fn closed_loop<S: TmSystem + 'static>(
    kv: &TxKv<S>,
    cfg: &LoadCfg,
    client: usize,
    quota: u64,
    totals: &ClientTotals,
) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ (client as u64) << 8);
    let zipf = ZipfSampler::new(cfg.keys, cfg.theta);
    let mut done = 0u64;
    while done < quota {
        let req = gen_request(&mut rng, &zipf, cfg);
        loop {
            match kv.call(req.clone()) {
                Ok(_) => {
                    totals.ok.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(TxKvError::Overloaded { .. }) => {
                    // Closed-loop clients retry shed requests after a
                    // short pause; the shed is still counted server-side.
                    totals.shed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(_) => {
                    totals.failed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        done += 1;
    }
    // Client threads emit the trace-opening `Ingress` events; hand them
    // to the collector before the thread exits (no-op, recorder off).
    rococo_telemetry::flush_thread();
}

fn drain_ready(pending: &mut VecDeque<PendingReply>, totals: &ClientTotals) {
    while let Some(front) = pending.front() {
        match front.try_wait() {
            Some(result) => {
                record(result, totals);
                pending.pop_front();
            }
            None => break,
        }
    }
}

fn record(result: Result<Response, TxKvError>, totals: &ClientTotals) {
    match result {
        Ok(_) => totals.ok.fetch_add(1, Ordering::Relaxed),
        Err(_) => totals.failed.fetch_add(1, Ordering::Relaxed),
    };
}

fn open_loop<S: TmSystem + 'static>(
    kv: &TxKv<S>,
    cfg: &LoadCfg,
    client: usize,
    quota: u64,
    totals: &ClientTotals,
) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ (client as u64) << 8);
    let zipf = ZipfSampler::new(cfg.keys, cfg.theta);
    let interval = Duration::from_nanos(1_000_000_000 / cfg.rate.max(1));
    let start = Instant::now();
    let mut pending: VecDeque<PendingReply> = VecDeque::new();
    for i in 0..quota {
        // Pace to the arrival schedule; if we're behind, fire immediately
        // (open loop never slows the arrival process to match service).
        let due = start + interval * (i as u32);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let req = gen_request(&mut rng, &zipf, cfg);
        match kv.submit(req) {
            Ok(reply) => pending.push_back(reply),
            Err(TxKvError::Overloaded { .. }) => {
                // Open loop drops shed requests: that is the load shedding
                // working as intended under overload. Only admission-control
                // rejections land here — requests the backend *defers* to
                // the synchronous commit path are still answered and are
                // counted separately, server-side, in the report's
                // `deferred` column.
                totals.shed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                totals.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        drain_ready(&mut pending, totals);
    }
    for reply in pending {
        record(reply.wait(), totals);
    }
    rococo_telemetry::flush_thread();
}

/// One run's machine-readable summary (a JSON object in the report
/// file).
struct RunResult {
    backend: &'static str,
    durability: String,
    /// The worker batch ceiling (`TxKvConfig::max_batch`) this run used.
    batch: usize,
    elapsed_s: f64,
    committed: u64,
    throughput_rps: f64,
    /// Requests rejected at admission (queue overload) — the client-side
    /// count, distinct from `deferred`.
    shed: u64,
    /// Requests whose commit the backend deferred to the synchronous
    /// path (server-side router/batching deferral, still answered).
    deferred: u64,
    failed: u64,
    abort_rate: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    /// Whether the transaction flight recorder was enabled for this run
    /// (the before/after pair `--compare-telemetry` produces).
    flight_recorder: bool,
    /// Critical-path attribution summary over the tail-sampled chains;
    /// present only on recorder-on `--attribution` rows.
    attribution: Option<AttrRow>,
    wal: Option<rococo_wal::WalSnapshot>,
    /// Replication figures; present only on `--replicas` rows so the
    /// single-node schema is untouched.
    repl: Option<ReplRun>,
    /// Router/scheduler counters; present only on single-node hybrid
    /// rows so every other schema is untouched.
    sched: Option<SchedSnapshot>,
}

/// The `attribution` object of a recorder-on `--attribution` row:
/// latency-weighted stage shares over the tail-sampled request chains.
struct AttrRow {
    /// Complete sampled chains the summary aggregates.
    sampled: usize,
    /// Requests offered to the tail sampler during the run.
    observed: u64,
    /// Nearest-rank percentiles of the sampled chains' end-to-end
    /// latency (tail-biased by construction: the sampler keeps the
    /// slowest-k per bucket plus every failure).
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    /// Stage shares in `rococo_telemetry::STAGES` order, summing to 1.0.
    shares: [f64; rococo_telemetry::attr::STAGE_COUNT],
}

impl AttrRow {
    fn to_json(&self, out: &mut String) {
        let _ = write!(
            out,
            ",\"attribution\":{{\"sampled\":{},\"observed\":{},\"p50_ns\":{},\"p99_ns\":{},\
             \"p999_ns\":{},\"shares\":{{",
            self.sampled, self.observed, self.p50_ns, self.p99_ns, self.p999_ns,
        );
        for (i, (name, share)) in rococo_telemetry::STAGES
            .iter()
            .zip(self.shares.iter())
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{share:.6}");
        }
        out.push_str("}}");
    }
}

/// The replication columns of a `--replicas` row.
struct ReplRun {
    replicas: usize,
    /// Replication lag percentiles in commit sequence numbers, sampled
    /// across all live followers every 500us.
    lag_p50_seq: u64,
    lag_p99_seq: u64,
    /// Demotion-to-serving wall time of the mid-run fail-over.
    failover_ms: f64,
    /// Gets served by follower replicas instead of the primary.
    follower_reads: u64,
}

impl RunResult {
    /// Hand-rolled JSON (the workspace deliberately has no JSON crate).
    /// Every value is numeric or a short ASCII name (`--label` rejects
    /// quotes and backslashes), so no escaping is needed.
    ///
    /// Each row is self-contained — it carries the full workload
    /// configuration alongside the results — so rows measured under
    /// different shard/worker/batch configurations can live side by side
    /// in one appended report.
    fn to_json(&self, cfg: &LoadCfg, out: &mut String) {
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"ops\":{},\"shards\":{},\"workers_per_shard\":{},\
             \"clients\":{},\"keys\":{},\"theta\":{},\"read_pct\":{},\"mode\":\"{}\"",
            cfg.label,
            cfg.ops,
            cfg.shards,
            cfg.workers_per_shard,
            cfg.clients,
            cfg.keys,
            cfg.theta,
            cfg.read_pct,
            match cfg.mode {
                Mode::Closed => "closed",
                Mode::Open => "open",
            },
        );
        if cfg.mode == Mode::Open {
            let _ = write!(out, ",\"rate_per_client\":{}", cfg.rate);
        }
        let _ = write!(
            out,
            ",\"backend\":\"{}\",\"durability\":\"{}\",\"batch\":{},\"elapsed_s\":{:.3},\
             \"committed\":{},\"throughput_rps\":{:.1},\"shed\":{},\"deferred\":{},\
             \"failed\":{},\
             \"abort_rate\":{:.5},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\
             \"flight_recorder\":{}",
            self.backend,
            self.durability,
            self.batch,
            self.elapsed_s,
            self.committed,
            self.throughput_rps,
            self.shed,
            self.deferred,
            self.failed,
            self.abort_rate,
            self.p50_ns,
            self.p99_ns,
            self.p999_ns,
            self.flight_recorder,
        );
        if let Some(a) = &self.attribution {
            a.to_json(out);
        }
        if let Some(r) = &self.repl {
            let _ = write!(
                out,
                ",\"repl\":{{\"replicas\":{},\"lag_p50_seq\":{},\"lag_p99_seq\":{},\
                 \"failover_ms\":{:.2},\"follower_reads\":{}}}",
                r.replicas, r.lag_p50_seq, r.lag_p99_seq, r.failover_ms, r.follower_reads,
            );
        }
        if let Some(s) = &self.sched {
            let _ = write!(
                out,
                ",\"sched\":{{\"routes_htm\":{},\"routes_sw\":{},\"commits_htm\":{},\
                 \"commits_sw\":{},\"migrations\":{},\"capacity_bans\":{},\"deferrals\":{},\
                 \"adapts\":{},\"serialized_classes\":{},\"read_bound\":{},\"write_bound\":{}}}",
                s.routes_htm,
                s.routes_sw,
                s.commits_htm,
                s.commits_sw,
                s.migrations,
                s.capacity_bans,
                s.deferrals(),
                s.adapts,
                s.serialized_classes,
                s.read_bound,
                s.write_bound,
            );
        }
        match &self.wal {
            Some(w) => {
                let _ = write!(
                    out,
                    ",\"wal\":{{\"acked_records\":{},\"batches\":{},\"mean_batch\":{:.2},\
                     \"batch_p99\":{},\"fsyncs\":{},\"fsync_p99_ns\":{},\"checkpoints\":{}}}}}",
                    w.acked_records,
                    w.batches,
                    w.mean_batch(),
                    w.batch_sizes.quantile_upper(0.99),
                    w.fsyncs,
                    w.fsync_ns.quantile_upper(0.99),
                    w.checkpoints,
                );
            }
            None => out.push_str(",\"wal\":null}"),
        }
    }
}

fn run_backend<S: TmSystem + 'static>(
    system: Arc<S>,
    cfg: &LoadCfg,
    durability: Durability,
    batch: usize,
    recorder_on: bool,
) -> RunResult {
    let wal_dir = match durability {
        Durability::None => None,
        Durability::Wal(_) => Some(rococo_wal::scratch_dir("txkv-load")),
    };
    let telemetry_dir = cfg.telemetry.as_ref().map(std::path::PathBuf::from);
    if recorder_on {
        // Attribution needs whole chains at export time: a deeper ring
        // keeps slow sampled requests from being overwritten before the
        // run drains (sampling decides what to *keep*, the ring decides
        // what still *exists*).
        let ring = if cfg.attribution {
            rococo_telemetry::DEFAULT_RING_EVENTS * 16
        } else {
            rococo_telemetry::DEFAULT_RING_EVENTS
        };
        rococo_telemetry::enable(ring);
        if cfg.attribution {
            rococo_telemetry::sampler_reset(rococo_telemetry::DEFAULT_TAIL_K);
        }
    }
    let kv_cfg = TxKvConfig {
        shards: cfg.shards,
        workers_per_shard: cfg.workers_per_shard,
        queue_capacity: cfg.queue_capacity,
        keys: cfg.keys,
        max_batch: batch,
        durability: match (durability, &wal_dir) {
            (Durability::Wal(fsync), Some(dir)) => Some(DurabilityConfig {
                dir: dir.clone(),
                fsync,
                checkpoint_every: 0, // measure raw group commit, no truncation pauses
                kill: None,
            }),
            _ => None,
        },
        telemetry: telemetry_dir
            .as_ref()
            .filter(|_| recorder_on)
            .map(|d| TelemetryConfig::new(d.clone())),
        ..TxKvConfig::default()
    };
    let kv = TxKv::start(system, kv_cfg).expect("service start");
    banner(&format!(
        "txkv_load on {} ({} shards x {} workers, batch {}, {} {} clients, durability={}, \
         recorder={})",
        kv.backend().name(),
        cfg.shards,
        cfg.workers_per_shard,
        batch,
        cfg.clients,
        match cfg.mode {
            Mode::Closed => "closed-loop",
            Mode::Open => "open-loop",
        },
        durability.name(),
        if recorder_on { "on" } else { "off" },
    ));

    // Seed every account with a balance so transfers mostly succeed.
    // Direct stores bypass the WAL, which is fine here: the bench
    // measures logging throughput, it never recovers the directory.
    let heap = kv.backend().heap();
    let table = kv.table();
    for k in 0..cfg.keys {
        heap.store_direct(table + k as usize, 1_000);
    }

    let totals = ClientTotals {
        ok: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        failed: AtomicU64::new(0),
    };
    let started = Instant::now();
    std::thread::scope(|s| {
        let base = cfg.ops / cfg.clients as u64;
        let rem = cfg.ops % cfg.clients as u64;
        for client in 0..cfg.clients {
            let quota = base + u64::from((client as u64) < rem);
            let kv = &kv;
            let totals = &totals;
            s.spawn(move || match cfg.mode {
                Mode::Closed => closed_loop(kv, cfg, client, quota, totals),
                Mode::Open => open_loop(kv, cfg, client, quota, totals),
            });
        }
    });
    let wall = started.elapsed();

    let report = kv.shutdown();
    let ok = totals.ok.load(Ordering::Relaxed);
    let shed = totals.shed.load(Ordering::Relaxed);
    let failed = totals.failed.load(Ordering::Relaxed);
    println!(
        "client view: {} offered, {} answered, {} shed, {} failed, {:.0} req/s over {:.2}s",
        cfg.ops,
        ok,
        shed,
        failed,
        ok as f64 / wall.as_secs_f64(),
        wall.as_secs_f64(),
    );
    print!("{report}");
    let stats = &report.aggregate;
    let attempts = stats.committed + stats.retries;
    let abort_rate = if attempts > 0 {
        stats.total_aborts() as f64 / attempts as f64
    } else {
        0.0
    };
    if attempts > 0 {
        println!(
            "  attempt-level abort rate: {:.2}% ({} aborts / {} attempts)",
            100.0 * abort_rate,
            stats.total_aborts(),
            attempts,
        );
    }

    // Export the flight-recorder artifacts: the Perfetto trace of every
    // recorded transaction plus any anomaly dumps taken during the run.
    // Under --attribution the trace is tail-sampled first (only kept
    // chains and trace-0 infrastructure events survive) and each kept
    // chain is decomposed into critical-path stages.
    let mut attribution = None;
    if recorder_on {
        if let Some(dir) = &telemetry_dir {
            let _ = std::fs::create_dir_all(dir);
            let mut events = rococo_telemetry::drain_events();
            if cfg.attribution {
                let kept = rococo_telemetry::sampled_traces();
                let before = events.len();
                rococo_telemetry::filter_sampled(&mut events, &kept);
                println!(
                    "tail sampler kept {} of {} request chains ({} of {} events)",
                    kept.len(),
                    rococo_telemetry::sampler_observed(),
                    events.len(),
                    before,
                );
            }
            let lanes = rococo_telemetry::lane_names();
            let trace = rococo_telemetry::build_tx_trace(&events, &lanes);
            match std::fs::write(dir.join("trace.json"), trace) {
                Ok(()) => println!(
                    "wrote {} ({} events)",
                    dir.join("trace.json").display(),
                    events.len()
                ),
                Err(e) => eprintln!("could not write trace.json: {e}"),
            }
            for (i, dump) in rococo_telemetry::take_dumps().iter().enumerate() {
                let name = format!("anomaly-{i}-{}.txt", dump.reason);
                let _ = std::fs::write(dir.join(name), dump.to_text());
            }
            if cfg.attribution {
                attribution = write_attribution(dir, &events);
            }
        }
        rococo_telemetry::disable();
    }

    if let Some(dir) = wal_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    RunResult {
        backend: report.backend,
        durability: durability.name(),
        batch,
        elapsed_s: wall.as_secs_f64(),
        committed: stats.committed,
        throughput_rps: stats.committed as f64 / wall.as_secs_f64().max(1e-9),
        shed,
        deferred: stats.deferred,
        failed,
        abort_rate,
        p50_ns: stats.latency.p50_ns,
        p99_ns: stats.latency.p99_ns,
        p999_ns: stats.latency.p999_ns,
        flight_recorder: recorder_on,
        attribution,
        wal: report.wal.clone(),
        repl: None,
        sched: None,
    }
}

/// Attributes every complete sampled chain, writes the per-request
/// `attribution.json` artifact (the input `trace_report` analyses), and
/// returns the row-level summary.
fn write_attribution(
    dir: &std::path::Path,
    events: &[rococo_telemetry::EventRecord],
) -> Option<AttrRow> {
    let chains = rococo_telemetry::group_chains(events);
    let mut attrs = Vec::new();
    let mut incomplete = 0usize;
    for (_, chain) in &chains {
        match rococo_telemetry::attribute(chain) {
            Some(a) => attrs.push(a),
            // Ring wrap-around evicted the chain's ingress or reply;
            // nothing sound can be said about its total.
            None => incomplete += 1,
        }
    }
    if attrs.is_empty() {
        eprintln!("attribution: no complete sampled chains ({incomplete} incomplete dropped)");
        return None;
    }
    let mut out = String::from("{\"bench\":\"txkv_attribution\",\"stages\":[");
    for (i, s) in rococo_telemetry::STAGES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{s}\"");
    }
    let _ = write!(out, "],\"incomplete\":{incomplete},\"rows\":[");
    for (i, a) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"trace\":{},\"start_us\":{:.3},\"total_ns\":{},\"outcome\":\"{}\",\
             \"attempts\":{},\"ingress_lane\":{},\"worker_lane\":{},\"stage_ns\":{{",
            a.trace,
            a.start_ns as f64 / 1000.0,
            a.total_ns,
            a.outcome,
            a.attempts,
            a.ingress_lane,
            a.worker_lane,
        );
        for (j, (name, ns)) in rococo_telemetry::STAGES
            .iter()
            .zip(a.stage_ns.iter())
            .enumerate()
        {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{ns}");
        }
        out.push_str("}}");
    }
    out.push_str("]}\n");
    let path = dir.join("attribution.json");
    match std::fs::write(&path, out) {
        Ok(()) => println!(
            "wrote {} ({} chains, {} incomplete dropped)",
            path.display(),
            attrs.len(),
            incomplete
        ),
        Err(e) => eprintln!("could not write attribution.json: {e}"),
    }
    let mut totals: Vec<u64> = attrs.iter().map(|a| a.total_ns).collect();
    totals.sort_unstable();
    Some(AttrRow {
        sampled: attrs.len(),
        observed: rococo_telemetry::sampler_observed(),
        p50_ns: rococo_telemetry::quantile::sorted_quantile(&totals, 0.5),
        p99_ns: rococo_telemetry::quantile::sorted_quantile(&totals, 0.99),
        p999_ns: rococo_telemetry::quantile::sorted_quantile(&totals, 0.999),
        shares: rococo_telemetry::aggregate_shares(&attrs),
    })
}

/// Replicated-mode request mix: as [`gen_request`], except transfers
/// become blind adds — cluster preloads would have to replicate through
/// the WAL key by key, and the chaos harness already owns transfer
/// correctness; the bench measures shipping, lag, and fail-over cost.
fn gen_repl_request(rng: &mut StdRng, zipf: &ZipfSampler, cfg: &LoadCfg) -> Request {
    match gen_request(rng, zipf, cfg) {
        Request::Transfer { from, amount, .. } => Request::Add {
            key: from,
            delta: amount,
        },
        req => req,
    }
}

/// Closed-loop client against the cluster: writes go to the primary
/// (riding out fail-over by attempting recovery like a real client-side
/// coordinator), point gets are served by follower replicas.
fn repl_closed_loop<S: TmSystem + 'static>(
    cluster: &Cluster<S>,
    cfg: &LoadCfg,
    client: usize,
    quota: u64,
    totals: &ClientTotals,
    latency: &Pow2Histogram,
    follower_reads: &AtomicU64,
) {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ (client as u64) << 8);
    let zipf = ZipfSampler::new(cfg.keys, cfg.theta);
    let followers = cluster.follower_count();
    let mut next_follower = client % followers.max(1);
    let mut done = 0u64;
    while done < quota {
        let req = gen_repl_request(&mut rng, &zipf, cfg);
        let start = Instant::now();
        // Route point gets to a follower (an eventually-consistent read
        // with no watermark); a crashed or promoted follower falls back
        // to the primary.
        if let Request::Get { key } = req {
            if followers > 0 {
                next_follower = (next_follower + 1) % followers;
                if cluster
                    .follower_read(next_follower, key, None, Duration::ZERO)
                    .is_ok()
                {
                    follower_reads.fetch_add(1, Ordering::Relaxed);
                    totals.ok.fetch_add(1, Ordering::Relaxed);
                    latency.record(start.elapsed().as_nanos() as u64);
                    done += 1;
                    continue;
                }
            }
        }
        loop {
            match cluster.call(req.clone()) {
                Ok(_) => {
                    totals.ok.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(ReplError::Kv(TxKvError::Overloaded { .. })) => {
                    totals.shed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(ReplError::PrimaryDown) => {
                    // The primary is fenced mid-fail-over: help it along
                    // (the epoch check makes racing helpers harmless) and
                    // retry — the stall is real client latency.
                    let _ = cluster.recover_primary(cluster.epoch());
                }
                Err(_) => {
                    totals.failed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        latency.record(start.elapsed().as_nanos() as u64);
        done += 1;
    }
}

/// One replicated cluster run: closed-loop load, a lag sampler, and one
/// mid-run fail-over so the row carries a measured downtime.
fn run_replicated<S: TmSystem + 'static>(
    make: impl Fn() -> Arc<S> + Send + Sync + 'static,
    cfg: &LoadCfg,
) -> RunResult {
    let rcfg = ClusterConfig {
        followers: cfg.replicas,
        keys: cfg.keys,
        shards: cfg.shards,
        workers_per_shard: cfg.workers_per_shard,
        queue_capacity: cfg.queue_capacity,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::start(make, rcfg).expect("cluster start");
    banner(&format!(
        "txkv_load replicated ({} shards x {} workers, {} followers, {} closed-loop clients)",
        cfg.shards, cfg.workers_per_shard, cfg.replicas, cfg.clients,
    ));

    let totals = ClientTotals {
        ok: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        failed: AtomicU64::new(0),
    };
    let latency = Pow2Histogram::default();
    let lag_hist = Pow2Histogram::default();
    let follower_reads = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let fail_at = cfg.ops / 2;
    let mut failover_ms = 0.0f64;

    let started = Instant::now();
    std::thread::scope(|s| {
        let base = cfg.ops / cfg.clients as u64;
        let rem = cfg.ops % cfg.clients as u64;
        for client in 0..cfg.clients {
            let quota = base + u64::from((client as u64) < rem);
            let cluster = &cluster;
            let totals = &totals;
            let latency = &latency;
            let follower_reads = &follower_reads;
            s.spawn(move || {
                repl_closed_loop(cluster, cfg, client, quota, totals, latency, follower_reads);
            });
        }

        // Coordinator: sample replication lag, and demote the primary
        // once half the offered load has been answered so the row
        // carries a fail-over downtime measured under live traffic.
        let cluster = &cluster;
        let sampler_totals = &totals;
        let lag_hist = &lag_hist;
        let sampler_stop = &stop;
        let failover_ms = &mut failover_ms;
        s.spawn(move || {
            let mut triggered = false;
            while !sampler_stop.load(Ordering::Relaxed) {
                if let Some(max_lag) = (0..cluster.follower_count())
                    .filter_map(|f| cluster.lag(f).ok())
                    .max()
                {
                    lag_hist.record(max_lag);
                }
                if !triggered && sampler_totals.ok.load(Ordering::Relaxed) >= fail_at {
                    triggered = true;
                    if let Ok(report) = cluster.fail_over() {
                        *failover_ms = report.downtime.as_secs_f64() * 1e3;
                    }
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        });

        // The clients' scope handles finish first conceptually, but the
        // sampler only exits once told to — tell it when every client
        // quota can be complete. A dedicated watcher keeps the scope
        // simple: poll the answered count.
        let watcher_totals = &totals;
        let watcher_stop = &stop;
        s.spawn(move || {
            while watcher_totals.ok.load(Ordering::Relaxed)
                + watcher_totals.failed.load(Ordering::Relaxed)
                < cfg.ops
            {
                std::thread::sleep(Duration::from_millis(1));
            }
            watcher_stop.store(true, Ordering::Relaxed);
        });
    });
    let wall = started.elapsed();

    let ok = totals.ok.load(Ordering::Relaxed);
    let shed = totals.shed.load(Ordering::Relaxed);
    let failed = totals.failed.load(Ordering::Relaxed);
    let snapshot = cluster.snapshot();
    let report = cluster.shutdown();
    let (committed, aborts, attempts, deferred) = report
        .primary
        .iter()
        .chain(report.demoted.iter())
        .fold((0u64, 0u64, 0u64, 0u64), |(c, a, t, d), r| {
            (
                c + r.aggregate.committed,
                a + r.aggregate.total_aborts(),
                t + r.aggregate.committed + r.aggregate.retries,
                d + r.aggregate.deferred,
            )
        });
    let lat = latency.snapshot();
    let lag = lag_hist.snapshot();
    println!(
        "client view: {} offered, {} answered ({} by followers), {} shed, {} failed, \
         {:.0} req/s over {:.2}s",
        cfg.ops,
        ok,
        follower_reads.load(Ordering::Relaxed),
        shed,
        failed,
        ok as f64 / wall.as_secs_f64(),
        wall.as_secs_f64(),
    );
    println!(
        "replication: {} batches shipped, {} applied, lag p50/p99 {}/{} seq, \
         {} gaps, {} resends, fail-over {:.2}ms, epoch {}",
        snapshot.batches_shipped,
        snapshot.batches_applied,
        lag.quantile_upper(0.5),
        lag.quantile_upper(0.99),
        snapshot.gaps_detected,
        snapshot.resends,
        failover_ms,
        snapshot.epoch,
    );

    let backend = report
        .primary
        .as_ref()
        .or_else(|| report.demoted.first())
        .map_or("unknown", |r| r.backend);
    RunResult {
        backend,
        durability: FsyncPolicy::Always.name(),
        batch: TxKvConfig::default().max_batch,
        elapsed_s: wall.as_secs_f64(),
        committed,
        throughput_rps: ok as f64 / wall.as_secs_f64().max(1e-9),
        shed,
        deferred,
        failed,
        abort_rate: if attempts > 0 {
            aborts as f64 / attempts as f64
        } else {
            0.0
        },
        p50_ns: lat.quantile_upper(0.5),
        p99_ns: lat.quantile_upper(0.99),
        p999_ns: lat.quantile_upper(0.999),
        flight_recorder: false,
        attribution: None,
        wal: report.primary.as_ref().and_then(|r| r.wal.clone()),
        sched: None,
        repl: Some(ReplRun {
            replicas: cfg.replicas,
            lag_p50_seq: lag.quantile_upper(0.5),
            lag_p99_seq: lag.quantile_upper(0.99),
            failover_ms,
            follower_reads: follower_reads.load(Ordering::Relaxed),
        }),
    }
}

fn write_json(cfg: &LoadCfg, results: &[RunResult]) {
    if cfg.json_path == "none" {
        return;
    }
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        r.to_json(cfg, &mut rows);
    }
    // `--append` splices the new rows into an existing report so
    // before/after rows from different configurations accumulate in one
    // artifact. The report format is our own (written a few lines below),
    // so string surgery on the trailing `]}` is safe; anything that does
    // not look like a row-format report is rewritten from scratch.
    let existing = if cfg.append {
        std::fs::read_to_string(&cfg.json_path).ok()
    } else {
        None
    };
    let out = match existing.as_deref().map(str::trim_end) {
        Some(prev) if prev.contains("\"rows\":[") && prev.ends_with("]}") => {
            let head = &prev[..prev.len() - 2];
            let sep = if head.ends_with('[') { "" } else { "," };
            format!("{head}{sep}{rows}]}}\n")
        }
        Some(_) => {
            eprintln!(
                "{}: not a row-format report; rewriting instead of appending",
                cfg.json_path
            );
            format!("{{\"bench\":\"txkv_load\",\"rows\":[{rows}]}}\n")
        }
        None => format!("{{\"bench\":\"txkv_load\",\"rows\":[{rows}]}}\n"),
    };
    // Write-then-rename so a crash (or a concurrent reader polling the
    // artifact) never observes a truncated report.
    let tmp = format!("{}.tmp", cfg.json_path);
    let res = std::fs::write(&tmp, &out).and_then(|()| std::fs::rename(&tmp, &cfg.json_path));
    match res {
        Ok(()) => println!("wrote {} ({} rows)", cfg.json_path, results.len()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            eprintln!("could not write {}: {e}", cfg.json_path);
        }
    }
}

fn main() {
    let cfg = parse_args();
    let tm_cfg = TmConfig {
        heap_words: TxKvConfig {
            keys: cfg.keys,
            ..TxKvConfig::default()
        }
        .heap_words(),
        max_threads: cfg.shards * cfg.workers_per_shard,
    };
    let run_tiny = matches!(cfg.backend.as_str(), "tinystm" | "both" | "all");
    let run_htm = matches!(cfg.backend.as_str(), "htm" | "all");
    let run_rococo = matches!(cfg.backend.as_str(), "rococo" | "both" | "all");
    let run_hybrid = matches!(cfg.backend.as_str(), "hybrid" | "all");
    if !(run_tiny || run_htm || run_rococo || run_hybrid) {
        panic!(
            "unknown backend {} (tinystm|htm|rococo|hybrid|both|all)",
            cfg.backend
        );
    }
    // Replicated mode: one row per backend, always-durable, closed
    // loop; the single-node durability/telemetry matrix does not apply.
    if cfg.replicas > 0 {
        assert!(
            cfg.mode == Mode::Closed,
            "replicated mode is closed-loop only"
        );
        let mut results = Vec::new();
        if run_tiny {
            results.push(run_replicated(
                move || Arc::new(TinyStm::with_config(tm_cfg)),
                &cfg,
            ));
        }
        if run_htm {
            results.push(run_replicated(
                move || Arc::new(TsxHtm::with_config(tm_cfg)),
                &cfg,
            ));
        }
        if run_rococo {
            results.push(run_replicated(
                move || Arc::new(RococoTm::with_config(tm_cfg)),
                &cfg,
            ));
        }
        if run_hybrid {
            results.push(run_replicated(
                move || Arc::new(HybridTm::with_config(tm_cfg)),
                &cfg,
            ));
        }
        write_json(&cfg, &results);
        return;
    }
    // --compare-telemetry runs each configuration twice (flight
    // recorder off, then on) so the JSON report carries a before/after
    // throughput pair; otherwise one pass, recorder on iff --telemetry.
    let recorder_passes: &[bool] = if cfg.compare_telemetry {
        &[false, true]
    } else if cfg.telemetry.is_some() {
        &[true]
    } else {
        &[false]
    };
    let mut results = Vec::new();
    for &batch in &cfg.batch {
        for &durability in &cfg.durability {
            for &recorder_on in recorder_passes {
                // A fresh backend per run: durable mode requires one, and
                // it keeps in-memory runs comparable (no warmed-up
                // metadata).
                if run_tiny {
                    results.push(run_backend(
                        Arc::new(TinyStm::with_config(tm_cfg)),
                        &cfg,
                        durability,
                        batch,
                        recorder_on,
                    ));
                }
                if run_htm {
                    results.push(run_backend(
                        Arc::new(TsxHtm::with_config(tm_cfg)),
                        &cfg,
                        durability,
                        batch,
                        recorder_on,
                    ));
                }
                if run_rococo {
                    results.push(run_backend(
                        Arc::new(RococoTm::with_config(tm_cfg)),
                        &cfg,
                        durability,
                        batch,
                        recorder_on,
                    ));
                }
                if run_hybrid {
                    // Keep a handle on the router so the row can carry
                    // its sched counters after the service shuts down.
                    let tm = Arc::new(HybridTm::with_config(tm_cfg));
                    let mut row =
                        run_backend(Arc::clone(&tm), &cfg, durability, batch, recorder_on);
                    row.sched = Some(tm.sched_snapshot());
                    results.push(row);
                }
            }
        }
    }
    write_json(&cfg, &results);
}
