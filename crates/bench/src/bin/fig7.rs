//! Figure 7 — false positivity of bloom-filter query and set intersection.
//!
//! Prints the analytic model (Jeffrey–Steffan) alongside a Monte-Carlo
//! measurement on real signatures, for the geometries the paper examines.
//! Reproduction target: query FP stays negligible while intersection false
//! set-overlap "can be frequent even with a small number of elements",
//! justifying `m = 512` with at most 8 elements per intersected signature.

use rococo_bench::{banner, Table};
use rococo_sigs::{fp_model, SigScheme};

fn empirical(scheme: &SigScheme, n: usize, trials: u64) -> (f64, f64) {
    let mut q_fp = 0u64;
    let mut i_fp = 0u64;
    let mut state = 0x5eed_1234_u64 ^ (n as u64) << 40;
    let mut next = move || rococo_sigs::splitmix64(&mut state);
    for _ in 0..trials {
        // Two disjoint random sets of n addresses plus a non-member probe.
        let a = scheme.sig_of((0..n).map(|_| next() | 1));
        let b = scheme.sig_of((0..n).map(|_| next() & !1));
        let probe = next() | 1;
        if scheme.query(&b, probe) {
            q_fp += 1; // b only holds even addresses; odd probe is FP
        }
        if scheme.sets_may_intersect(&a, &b) {
            i_fp += 1;
        }
    }
    (q_fp as f64 / trials as f64, i_fp as f64 / trials as f64)
}

fn main() {
    banner("Figure 7: false positivity of bloom-filter signatures");

    let trials = 3000;
    for (m, k) in [(256usize, 8usize), (512, 8), (1024, 8)] {
        let scheme = SigScheme::new(m, k);
        println!("m = {m} bits, k = {k} partitions   ({trials} Monte-Carlo trials per row)");
        let mut t = Table::new([
            "n",
            "query FP (model)",
            "query FP (meas.)",
            "intersect FP (model)",
            "intersect FP (meas.)",
        ]);
        for n in [1usize, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64] {
            let (eq, ei) = empirical(&scheme, n, trials);
            t.row([
                n.to_string(),
                format!("{:.2e}", fp_model::query_fp(m, k, n)),
                format!("{eq:.2e}"),
                format!("{:.4}", fp_model::intersection_fp(m, k, n, n)),
                format!("{ei:.4}"),
            ]);
        }
        t.print();
        println!();
    }

    banner("Design point check (paper section 5.2)");
    let at8 = fp_model::intersection_fp(512, 8, 8, 8);
    let at16 = fp_model::intersection_fp(512, 8, 16, 16);
    println!(
        "m=512, k=8: intersection false set-overlap at n=8: {:.2}%, at n=16: {:.1}%",
        at8 * 100.0,
        at16 * 100.0
    );
    println!(
        "=> intersections are limited to signatures of at most 8 elements; \
         each 512-bit cache line holds exactly eight 64-bit addresses."
    );
}
