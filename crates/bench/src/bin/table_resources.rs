//! Section 6.5 — FPGA resource consumption of the ROCoCoTM pipeline.
//!
//! Prints the analytical resource model at the paper's design point next
//! to the published synthesis numbers, plus a sweep over window size and
//! signature width showing what scales with what.

use rococo_bench::{banner, pct, Table};
use rococo_fpga::resources::{estimate, DesignPoint, Device};

fn main() {
    banner("Section 6.5: FPGA resource consumption (Arria 10 10AX115, model)");

    let dev = Device::arria10_gx1150();
    let paper_point = DesignPoint::paper();
    let e = estimate(paper_point);
    let u = e.utilisation(&dev);

    let mut t = Table::new(["resource", "model", "model util", "paper", "paper util"]);
    t.row([
        "registers".to_string(),
        e.registers.to_string(),
        pct(u.registers),
        "113485".into(),
        " 62.9%".into(),
    ]);
    t.row([
        "ALMs".to_string(),
        e.alms.to_string(),
        pct(u.alms),
        "249442".into(),
        " 58.4%".into(),
    ]);
    t.row([
        "DSPs".to_string(),
        e.dsps.to_string(),
        pct(u.dsps),
        "223".into(),
        " 14.7%".into(),
    ]);
    t.row([
        "BRAM bits".to_string(),
        e.bram_bits.to_string(),
        pct(u.bram_bits),
        "2055802".into(),
        "  3.7%".into(),
    ]);
    t.print();
    println!(
        "  clock: {:.0} MHz (critical path: 512-bit bloom filter)",
        e.fmax_hz / 1e6
    );

    banner("Scaling sweep (what doubles when W or m doubles)");
    let mut s = Table::new([
        "W",
        "m",
        "registers",
        "ALMs",
        "DSPs",
        "BRAM bits",
        "fmax MHz",
    ]);
    for (w, m) in [
        (16usize, 512usize),
        (32, 512),
        (64, 512),
        (128, 512),
        (64, 256),
        (64, 1024),
    ] {
        let p = DesignPoint {
            window: w,
            sig_bits: m,
            ..paper_point
        };
        let e = estimate(p);
        s.row([
            w.to_string(),
            m.to_string(),
            e.registers.to_string(),
            e.alms.to_string(),
            e.dsps.to_string(),
            e.bram_bits.to_string(),
            format!("{:.0}", e.fmax_hz / 1e6),
        ]);
    }
    s.print();
    println!();
    println!(
        "section 6.5 note reproduced: widening signatures to 1024 bits costs clock \
         frequency; the reachability matrix (W^2 registers + update logic) dominates \
         logic growth."
    );
}
