//! telemetry_check: schema validation for a `txkv_load --telemetry` dir.
//!
//! Usage: `telemetry_check <DIR> [--no-wal] [--no-fpga] [--sched]`
//!
//! Validates the three artifacts a telemetry-enabled run writes:
//!
//! * `metrics.prom` — must pass the strict Prometheus text-format
//!   validator and cover every expected `rococo_*` subsystem namespace
//!   (txkv, tm, fpga, faults, wal — the latter two gated by flags for
//!   runs on backends without an FPGA model or without durability;
//!   `--sched` additionally requires the hybrid router's
//!   `rococo_sched_` namespace).
//! * `metrics.json` — must parse as JSON with a non-empty `metrics`
//!   array whose entries carry `name` and `kind` fields.
//! * `trace.json` — must parse as Chrome trace-event JSON with at least
//!   one transaction span and, when FPGA metrics are expected, at least
//!   one Detector stage slice overlapping a transaction span in time.
//! * `anomaly-*.txt` — every anomaly dump present must be non-empty,
//!   carry a parseable `` anomaly `reason` on lane L at T ns (N events,
//!   D dropped) `` header with N >= 1, and contain exactly N body lines.
//!
//! Exits 0 on success, 1 with a diagnostic on the first failure. A
//! trace.json that parses but contains **zero** transaction spans exits
//! 2 instead: the artifact is well-formed but vacuous (recorder enabled
//! too late, ring fully evicted, or over-aggressive sampling), which CI
//! wants to tell apart from a malformed artifact. The CI smoke step runs
//! this against a short durable `txkv_load` run.

use rococo_telemetry::json::Json;
use rococo_telemetry::{validate_prometheus, FPGA_PID, TX_PID};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("telemetry_check: FAIL: {msg}");
    ExitCode::FAILURE
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let mut dir: Option<PathBuf> = None;
    let mut expect_wal = true;
    let mut expect_fpga = true;
    let mut expect_sched = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-wal" => expect_wal = false,
            "--no-fpga" => expect_fpga = false,
            "--sched" => expect_sched = true,
            "--help" | "-h" => {
                println!("usage: telemetry_check <DIR> [--no-wal] [--no-fpga] [--sched]");
                return ExitCode::SUCCESS;
            }
            other if dir.is_none() => dir = Some(PathBuf::from(other)),
            other => return fail(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(dir) = dir else {
        return fail("missing telemetry directory argument");
    };

    // --- metrics.prom -------------------------------------------------
    let prom = match read(&dir.join("metrics.prom")) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let samples = match validate_prometheus(&prom) {
        Ok(n) => n,
        Err(e) => return fail(&format!("metrics.prom: {e}")),
    };
    if samples == 0 {
        return fail("metrics.prom: no samples");
    }
    let mut prefixes = vec!["rococo_txkv_", "rococo_tm_"];
    if expect_fpga {
        prefixes.extend(["rococo_fpga_", "rococo_faults_"]);
    }
    if expect_wal {
        prefixes.push("rococo_wal_");
    }
    if expect_sched {
        prefixes.push("rococo_sched_");
    }
    for p in &prefixes {
        if !prom
            .lines()
            .any(|l| !l.starts_with('#') && l.starts_with(p))
        {
            return fail(&format!("metrics.prom: no sample with prefix {p}"));
        }
    }
    if expect_sched {
        // The router's schema, not just its namespace: both route paths
        // must be labelled out, and the adapted admission bounds must be
        // exported as gauges.
        for needle in [
            "rococo_sched_routes_total{path=\"htm\"}",
            "rococo_sched_routes_total{path=\"sw\"}",
            "rococo_sched_commits_total{path=\"htm\"}",
            "rococo_sched_commits_total{path=\"sw\"}",
            "rococo_sched_migrations_total",
            "rococo_sched_read_bound_words",
            "rococo_sched_write_bound_words",
        ] {
            if !prom
                .lines()
                .any(|l| !l.starts_with('#') && l.starts_with(needle))
            {
                return fail(&format!("metrics.prom: missing sched sample {needle}"));
            }
        }
    }

    // --- metrics.json -------------------------------------------------
    let mjson = match read(&dir.join("metrics.json")) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let doc = match Json::parse(&mjson) {
        Ok(d) => d,
        Err(e) => return fail(&format!("metrics.json: {e}")),
    };
    let metrics = match doc.get("metrics").and_then(Json::as_arr) {
        Some(m) if !m.is_empty() => m,
        _ => return fail("metrics.json: missing or empty \"metrics\" array"),
    };
    for m in metrics {
        if m.get("name").and_then(Json::as_str).is_none()
            || m.get("kind").and_then(Json::as_str).is_none()
        {
            return fail("metrics.json: metric entry missing name/kind");
        }
    }

    // --- trace.json ---------------------------------------------------
    let tjson = match read(&dir.join("trace.json")) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let tdoc = match Json::parse(&tjson) {
        Ok(d) => d,
        Err(e) => return fail(&format!("trace.json: {e}")),
    };
    let events = match tdoc.get("traceEvents").and_then(Json::as_arr) {
        Some(ev) if !ev.is_empty() => ev,
        _ => return fail("trace.json: missing or empty \"traceEvents\""),
    };
    let span = |e: &Json| -> Option<(u32, f64, f64)> {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            return None;
        }
        let pid = e.get("pid")?.as_f64()? as u32;
        let ts = e.get("ts")?.as_f64()?;
        let dur = e.get("dur")?.as_f64()?;
        Some((pid, ts, dur))
    };
    let named = |e: &Json, n: &str| e.get("name").and_then(Json::as_str) == Some(n);
    let tx_spans: Vec<(f64, f64)> = events
        .iter()
        .filter(|e| named(e, "tx"))
        .filter_map(|e| {
            span(e)
                .filter(|(p, _, _)| *p == TX_PID)
                .map(|(_, t, d)| (t, d))
        })
        .collect();
    if tx_spans.is_empty() {
        // Distinct exit code: well-formed but vacuous trace. Previously
        // this could pass silently; CI treats 2 as "nothing recorded".
        eprintln!(
            "telemetry_check: FAIL: trace.json: no transaction spans (name=\"tx\", pid=TX_PID)"
        );
        return ExitCode::from(2);
    }
    if expect_fpga {
        let stage_spans: Vec<(f64, f64)> = events
            .iter()
            .filter(|e| named(e, "detector") || named(e, "manager"))
            .filter_map(|e| {
                span(e)
                    .filter(|(p, _, _)| *p == FPGA_PID)
                    .map(|(_, t, d)| (t, d))
            })
            .collect();
        if stage_spans.is_empty() {
            return fail("trace.json: no FPGA stage slices (pid=FPGA_PID)");
        }
        let overlap = tx_spans.iter().any(|(tts, tdur)| {
            stage_spans
                .iter()
                .any(|(sts, sdur)| *sts < tts + tdur && *tts < sts + sdur)
        });
        if !overlap {
            return fail("trace.json: no FPGA stage slice overlaps a transaction span");
        }
    }

    // --- anomaly-*.txt ------------------------------------------------
    let mut anomalies = 0usize;
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => return fail(&format!("cannot list {}: {e}", dir.display())),
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("anomaly-") && name.ends_with(".txt")) {
            continue;
        }
        let text = match read(&entry.path()) {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        if let Err(e) = check_anomaly(&text) {
            return fail(&format!("{name}: {e}"));
        }
        anomalies += 1;
    }

    println!(
        "telemetry_check: OK ({} prom samples, {} JSON metrics, {} trace events, \
         {} anomaly dumps, prefixes: {})",
        samples,
        metrics.len(),
        events.len(),
        anomalies,
        prefixes.join(" ")
    );
    ExitCode::SUCCESS
}

/// Validates one anomaly dump: a parseable header whose event count is
/// at least 1 and matches the number of body lines.
fn check_anomaly(text: &str) -> Result<(), String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty anomaly dump")?;
    // Header shape: anomaly `reason` on lane L at T ns (N events, D dropped)
    if !header.starts_with("anomaly `") {
        return Err(format!("unparseable header {header:?}"));
    }
    let count: usize = header
        .split('(')
        .nth(1)
        .and_then(|tail| tail.split(" events").next())
        .and_then(|n| n.trim().parse().ok())
        .ok_or_else(|| format!("header missing event count: {header:?}"))?;
    if count == 0 {
        return Err("anomaly dump claims zero events".into());
    }
    let body = lines.filter(|l| !l.trim().is_empty()).count();
    if body != count {
        return Err(format!(
            "header claims {count} events but body has {body} lines"
        ));
    }
    Ok(())
}
