//! Ablation — sliding-window capacity `W`.
//!
//! The paper fixes `W = 64` ("as we spawn at most 28 threads"). This
//! ablation sweeps `W` on the Figure 9 micro-benchmark at T = 16 and
//! T = 32 and splits ROCoCo's aborts into genuine cycles vs
//! window-overflow aborts, showing where a too-small window starts to
//! hurt (snapshots outrun the matrix) and where growing it stops helping.

use rococo_bench::{banner, pct, Table};
use rococo_cc::{run_policy, AbortReason, Rococo};
use rococo_trace::{eigen_trace, EigenConfig};

fn main() {
    banner("Ablation: ROCoCo sliding-window capacity");

    for concurrency in [16usize, 32, 96] {
        println!();
        println!("T = {concurrency}, N = 16 accesses, 1024 locations, 20 seeds");
        let mut table = Table::new(["W", "abort rate", "cycle aborts", "window aborts"]);
        for w in [8usize, 16, 32, 64, 128] {
            let mut total = 0usize;
            let mut cycles = 0usize;
            let mut overflows = 0usize;
            let mut n = 0usize;
            for seed in 0..20 {
                let trace = eigen_trace(
                    &EigenConfig {
                        accesses: 16,
                        transactions: 600,
                        ..EigenConfig::default()
                    },
                    seed,
                );
                let r = run_policy(&mut Rococo::with_window(w), &trace, concurrency);
                total += r.stats.aborted();
                cycles += r
                    .stats
                    .aborts
                    .get(&AbortReason::Cycle)
                    .copied()
                    .unwrap_or(0);
                overflows += r
                    .stats
                    .aborts
                    .get(&AbortReason::WindowOverflow)
                    .copied()
                    .unwrap_or(0);
                n += r.stats.total;
            }
            table.row([
                w.to_string(),
                pct(total as f64 / n as f64),
                pct(cycles as f64 / n as f64),
                pct(overflows as f64 / n as f64),
            ]);
        }
        table.print();
    }
    println!();
    println!(
        "expected shape: overflow aborts vanish once W comfortably exceeds T \
         (the paper's W=64 for <=28 threads); beyond that, larger windows no \
         longer reduce aborts but grow the W^2 reachability matrix."
    );
}
