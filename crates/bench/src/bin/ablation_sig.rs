//! Ablation — signature geometry on the FPGA detector.
//!
//! The detector sees only bloom signatures of the committed window, so
//! undersized signatures inflate the dependency vectors with false
//! positives and cause avoidable cycle aborts. This ablation replays the
//! same address-level workload through the `ValidationEngine` at several
//! signature widths and compares against the exact (graph-level) ROCoCo
//! decision, isolating the abort inflation attributable to signature
//! aliasing — the paper's section 6.5 observation that going beyond 512
//! bits buys "no noteworthy improvement".

use rococo_bench::{banner, pct, Table};
use rococo_cc::{run_policy, Rococo};
use rococo_fpga::{EngineConfig, ValidateRequest, ValidationEngine};
use rococo_sigs::SigScheme;
use rococo_trace::{eigen_trace, EigenConfig};

fn main() {
    banner("Ablation: signature width vs FPGA abort inflation");

    let cfg = EigenConfig {
        accesses: 16,
        transactions: 800,
        ..EigenConfig::default()
    };
    let seeds = 10u64;
    let concurrency = 16usize;

    // Exact baseline: the graph-level ROCoCo policy.
    let mut exact_aborts = 0usize;
    let mut total = 0usize;
    for seed in 0..seeds {
        let trace = eigen_trace(&cfg, seed);
        let r = run_policy(&mut Rococo::with_window(64), &trace, concurrency);
        exact_aborts += r.stats.aborted();
        total += r.stats.total;
    }
    let exact_rate = exact_aborts as f64 / total as f64;
    println!(
        "exact (address-precise) ROCoCo abort rate: {}",
        pct(exact_rate)
    );
    println!();

    let mut table = Table::new(["m bits", "k", "engine abort rate", "inflation vs exact"]);
    for (m, k) in [(128usize, 8usize), (256, 8), (512, 8), (1024, 8)] {
        let mut aborts = 0usize;
        let mut n = 0usize;
        for seed in 0..seeds {
            let trace = eigen_trace(&cfg, seed);
            let mut engine = ValidationEngine::new(EngineConfig {
                window: 64,
                scheme: SigScheme::new(m, k),
            });
            // Replay with the same visibility rule as the cc engine: a
            // transaction's snapshot excludes the last `concurrency`
            // arrivals; committed seqs map 1:1 because the engine only
            // counts commits.
            let mut commit_seq_of_arrival: Vec<Option<u64>> = vec![None; trace.len()];
            for (arrival, txn) in trace.iter().enumerate() {
                let snap_arrival = arrival.saturating_sub(concurrency);
                let valid_ts = commit_seq_of_arrival[..snap_arrival]
                    .iter()
                    .flatten()
                    .max()
                    .map(|&s| s + 1)
                    .unwrap_or(0);
                let verdict = engine.process(&ValidateRequest {
                    tx_id: arrival as u64,
                    valid_ts,
                    read_addrs: txn.read_set(),
                    write_addrs: txn.write_set(),
                });
                match verdict {
                    rococo_fpga::FpgaVerdict::Commit { seq } => {
                        commit_seq_of_arrival[arrival] = Some(seq);
                    }
                    _ => aborts += 1,
                }
                n += 1;
            }
        }
        let rate = aborts as f64 / n as f64;
        table.row([
            m.to_string(),
            k.to_string(),
            pct(rate),
            format!("{:+.1}pp", (rate - exact_rate) * 100.0),
        ]);
    }
    table.print();
    println!();
    println!(
        "expected shape: inflation shrinks as m grows and is already negligible \
         at m = 512 — the paper found no noteworthy abort improvement from \
         1024-bit signatures, which also cost clock frequency."
    );
}
