//! Shared reporting helpers for the experiment harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the index); this library provides the common
//! formatting and summary utilities so their output reads like the paper's
//! rows and series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Geometric mean of a slice (ignores non-positive entries, which cannot
/// appear in speedup data).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of nothing");
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Prints a banner for an experiment section.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// A minimal fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.header);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_mixed() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0%");
    }

    #[test]
    fn table_does_not_panic() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333"]);
        t.print();
    }
}
