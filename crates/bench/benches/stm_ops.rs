//! Criterion bench: single-threaded TM operation costs across runtimes —
//! the per-access bookkeeping overhead the paper's section 6.3 discusses
//! (1-thread penalty of out-of-core validation, metadata costs).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rococo_stm::{atomically, RococoTm, SeqTm, TinyStm, TmConfig, TmSystem, Transaction, TsxHtm};

fn bench_system<S: TmSystem>(c: &mut Criterion, name: &str, tm: &S) {
    c.bench_function(&format!("stm/{name}/rw_txn"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            atomically(tm, 0, |tx| {
                let v = tx.read(i % 512)?;
                tx.write((i + 1) % 512, v + 1)
            });
            i += 1;
        });
    });
    c.bench_function(&format!("stm/{name}/ro_txn"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let v = atomically(tm, 0, |tx| tx.read(i % 512));
            i += 1;
            black_box(v)
        });
    });
}

fn bench(c: &mut Criterion) {
    let cfg = TmConfig {
        heap_words: 4096,
        max_threads: 1,
    };
    bench_system(c, "seq", &SeqTm::with_config(cfg));
    bench_system(c, "tinystm", &TinyStm::with_config(cfg));
    bench_system(c, "tsx", &TsxHtm::with_config(cfg));
    bench_system(c, "rococotm", &RococoTm::with_config(cfg));
}

criterion_group!(benches, bench);
criterion_main!(benches);
