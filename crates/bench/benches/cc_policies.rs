//! Criterion bench: trace-replay cost of the three CC policies on one
//! Figure 9 trace (how expensive each decision rule is, independent of
//! abort rates).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rococo_cc::{run_policy, Rococo, Tocc, TwoPhaseLocking};
use rococo_trace::{eigen_trace, EigenConfig};

fn bench(c: &mut Criterion) {
    let trace = eigen_trace(
        &EigenConfig {
            accesses: 16,
            transactions: 500,
            ..EigenConfig::default()
        },
        7,
    );
    c.bench_function("cc/2pl", |b| {
        b.iter(|| {
            black_box(run_policy(
                &mut TwoPhaseLocking::new(),
                black_box(&trace),
                16,
            ))
        })
    });
    c.bench_function("cc/tocc", |b| {
        b.iter(|| black_box(run_policy(&mut Tocc::new(), black_box(&trace), 16)))
    });
    c.bench_function("cc/rococo_w64", |b| {
        b.iter(|| {
            black_box(run_policy(
                &mut Rococo::with_window(64),
                black_box(&trace),
                16,
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
