//! Criterion bench: bloom-signature hot-path operations (insert, query,
//! union, partitioned intersection) at the paper's m = 512, k = 8 design
//! point — the CPU-side cost Algorithm 1 pays per transactional read.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rococo_sigs::SigScheme;

fn bench(c: &mut Criterion) {
    let scheme = SigScheme::paper_default();
    let full = scheme.sig_of((0..8u64).map(|i| i * 977));
    let other = scheme.sig_of((0..8u64).map(|i| i * 991 + 5));

    c.bench_function("sig/insert", |b| {
        let mut sig = scheme.new_sig();
        let mut i = 0u64;
        b.iter(|| {
            scheme.insert(&mut sig, black_box(i));
            i = i.wrapping_add(0x9e3779b9);
        });
    });
    c.bench_function("sig/query_hit", |b| {
        b.iter(|| black_box(scheme.query(&full, black_box(977 * 3))));
    });
    c.bench_function("sig/query_miss", |b| {
        b.iter(|| black_box(scheme.query(&full, black_box(123_456_789))));
    });
    c.bench_function("sig/union", |b| {
        let mut acc = scheme.new_sig();
        b.iter(|| acc.union_with(black_box(&other)));
    });
    c.bench_function("sig/sets_may_intersect", |b| {
        b.iter(|| black_box(scheme.sets_may_intersect(black_box(&full), black_box(&other))));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
