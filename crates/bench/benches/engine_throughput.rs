//! Criterion bench: end-to-end validation-engine throughput — the
//! Detector's per-address signature queries plus the Manager's matrix
//! work, per request (the software cost that one FPGA clock cycle
//! replaces).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rococo_fpga::{EngineConfig, ValidateRequest, ValidationEngine};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &addrs in &[4usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("process", addrs), &addrs, |b, &n| {
            let mut engine = ValidationEngine::new(EngineConfig::default());
            let mut i = 0u64;
            b.iter(|| {
                let req = ValidateRequest {
                    tx_id: i,
                    valid_ts: engine.next_seq(),
                    read_addrs: (0..n as u64 / 2).map(|j| 1_000_000 + i * 512 + j).collect(),
                    write_addrs: (0..n as u64 / 2).map(|j| 9_000_000 + i * 512 + j).collect(),
                };
                i += 1;
                black_box(engine.process(&req))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
