//! Criterion bench: the ROCoCo manager's core operation — validate a
//! candidate against a full W = 64 reachability matrix and commit it
//! (Figure 4's datapath, which the FPGA does in O(1) cycles and we do in
//! O(W) word operations).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rococo_core::{DepVec, ReachMatrix, RococoValidator, TxnDeps};

fn full_matrix(w: usize) -> ReachMatrix {
    let mut m = ReachMatrix::new(w);
    for i in 0..w {
        let mut b = DepVec::new(w);
        if i > 0 {
            b.set(i - 1);
        }
        let c = m.validate(&DepVec::new(w), &b).unwrap();
        m.commit(&c);
    }
    m
}

fn bench(c: &mut Criterion) {
    for w in [16usize, 64, 128] {
        let m = full_matrix(w);
        let mut f = DepVec::new(w);
        let mut b = DepVec::new(w);
        f.set(w - 2);
        b.set(1);
        c.bench_function(&format!("matrix/validate_w{w}"), |bch| {
            bch.iter(|| black_box(m.validate(black_box(&f), black_box(&b))));
        });
    }

    c.bench_function("validator/commit_cycle_w64", |bch| {
        let mut v: RococoValidator<()> = RococoValidator::new(64);
        let mut seq = 0u64;
        bch.iter(|| {
            let deps = TxnDeps {
                snapshot: seq,
                forward: vec![],
                backward: if seq > 0 { vec![seq - 1] } else { vec![] },
            };
            seq = v.validate_and_commit(black_box(&deps), ()).unwrap();
            seq += 1;
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
