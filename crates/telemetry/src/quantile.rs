//! Shared quantile math.
//!
//! Every latency surface in the workspace (the server's log-bucketed
//! histograms, the WAL's power-of-two batch/fsync histograms, the bench
//! harness's sampled request totals) answers the same question — "which
//! rank does quantile `q` select, and which bucket/sample holds it?" —
//! and previously each answered it with its own copy of the rank
//! arithmetic. This module is the single implementation: nearest-rank
//! (inclusive) selection, `rank = ceil(q · n)` clamped to `[1, n]`.

/// The 1-based nearest rank selected by quantile `q` out of `count`
/// observations, or 0 when there are no observations. `q` is clamped to
/// `[0, 1]`; any `q > 0` selects at least rank 1 and `q = 1.0` selects
/// rank `count` exactly.
pub fn rank_of(count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * count as f64).ceil() as u64;
    rank.clamp(1, count)
}

/// Index of the histogram bucket containing the observation at quantile
/// `q`, scanning `counts` cumulatively against a nearest-rank target
/// computed from `total`. Returns `None` when `total` is 0. When `total`
/// exceeds the sum of `counts` (relaxed counter snapshots can tear), the
/// last non-empty bucket is returned, or `None` if every bucket is
/// empty.
pub fn bucket_index(counts: &[u64], total: u64, q: f64) -> Option<usize> {
    let target = rank_of(total, q);
    if target == 0 {
        return None;
    }
    let mut seen = 0u64;
    let mut last_nonempty = None;
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            last_nonempty = Some(i);
        }
        seen = seen.saturating_add(c);
        if seen >= target {
            return Some(i);
        }
    }
    last_nonempty
}

/// Nearest-rank quantile over an already-sorted ascending sample slice.
/// Returns 0 for an empty slice.
pub fn sorted_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = rank_of(sorted.len() as u64, q);
    if rank == 0 {
        return 0;
    }
    sorted[(rank - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_boundaries() {
        assert_eq!(rank_of(0, 0.5), 0);
        assert_eq!(rank_of(1, 0.0), 1);
        assert_eq!(rank_of(1, 1.0), 1);
        assert_eq!(rank_of(100, 0.5), 50);
        assert_eq!(rank_of(100, 0.99), 99);
        assert_eq!(rank_of(100, 0.999), 100);
        assert_eq!(rank_of(100, 1.0), 100);
        // Out-of-range q is clamped, not propagated.
        assert_eq!(rank_of(10, -1.0), 1);
        assert_eq!(rank_of(10, 2.0), 10);
    }

    #[test]
    fn bucket_index_empty() {
        assert_eq!(bucket_index(&[], 0, 0.5), None);
        assert_eq!(bucket_index(&[0, 0, 0], 0, 0.99), None);
        // total claims observations but every bucket is empty.
        assert_eq!(bucket_index(&[0, 0], 5, 0.5), None);
    }

    #[test]
    fn bucket_index_single_sample() {
        assert_eq!(bucket_index(&[0, 1, 0], 1, 0.0), Some(1));
        assert_eq!(bucket_index(&[0, 1, 0], 1, 0.5), Some(1));
        assert_eq!(bucket_index(&[0, 1, 0], 1, 1.0), Some(1));
    }

    #[test]
    fn bucket_index_exact_edge() {
        // 10 observations split 5/5: rank 5 is the *last* observation of
        // bucket 0, so p50 must select bucket 0 and anything above rank
        // 5 must select bucket 1.
        let counts = [5u64, 5];
        assert_eq!(bucket_index(&counts, 10, 0.5), Some(0));
        assert_eq!(bucket_index(&counts, 10, 0.50001), Some(1));
        assert_eq!(bucket_index(&counts, 10, 1.0), Some(1));
    }

    #[test]
    fn bucket_index_torn_total_falls_back_to_last_nonempty() {
        // total (from a separate relaxed counter) exceeds the bucket sum.
        assert_eq!(bucket_index(&[2, 3, 0], 100, 0.99), Some(1));
    }

    #[test]
    fn sorted_quantile_boundaries() {
        assert_eq!(sorted_quantile(&[], 0.5), 0);
        assert_eq!(sorted_quantile(&[7], 0.0), 7);
        assert_eq!(sorted_quantile(&[7], 1.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(sorted_quantile(&v, 0.5), 50);
        assert_eq!(sorted_quantile(&v, 0.99), 99);
        assert_eq!(sorted_quantile(&v, 0.999), 100);
    }
}
