//! Critical-path attribution for sampled request chains.
//!
//! Given one request's causal event chain — `Ingress` on the client
//! thread, `Dequeue`/`Begin`/…/`Reply` on a shard worker, correlated by
//! trace id — this module decomposes the end-to-end latency into
//! named stages and guarantees the stage durations sum exactly to the
//! request total (a residual `other` stage absorbs whatever the
//! instrumented windows don't explain, and overlapping windows are
//! scaled down proportionally rather than double-counted).
//!
//! Stage definitions:
//!
//! * `queue_wait` — shard-queue residency, from the worker's own
//!   `Dequeue { wait_ns }` measurement;
//! * `route` — gap between dequeue and the first `Begin`: the sched
//!   route decision plus any admission deferral (token wait, mode
//!   drain);
//! * `exec` — time inside transaction attempts not otherwise
//!   attributed;
//! * `validation` — sum of `ValidateSubmit → Verdict` windows
//!   (FPGA-model turnaround including queueing at the Detector/Manager);
//! * `commit_publish` — gap between the committing verdict and the
//!   `Commit` event (write-set publication and sequencing);
//! * `fsync` — gap between `Commit` and the durable `WalAppend`
//!   acknowledgement (group-commit fsync wait);
//! * `backoff` — sum of retry-policy `Backoff` delays;
//! * `repl_lag` — gap between `Commit` and a trace-carrying
//!   `ReplApply` (only non-zero for chains that wait on replication);
//! * `other` — everything else (reply plumbing, scheduling jitter,
//!   clock-sampling slack).

use crate::recorder::{EventRecord, TxEvent};

/// Stage names, in canonical order. `other` is always last.
pub const STAGES: [&str; 9] = [
    "queue_wait",
    "route",
    "exec",
    "validation",
    "commit_publish",
    "fsync",
    "backoff",
    "repl_lag",
    "other",
];

/// Number of stages (including the residual `other`).
pub const STAGE_COUNT: usize = STAGES.len();

/// One request's critical-path decomposition. `stage_ns` sums exactly
/// to `total_ns`.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// The request's trace id.
    pub trace: u64,
    /// `Ingress` timestamp, ns since recorder enable.
    pub start_ns: u64,
    /// End-to-end latency (`Reply` − `Ingress`), ns.
    pub total_ns: u64,
    /// The `Reply` outcome label (`"ok"`, `"shed"`, ...).
    pub outcome: &'static str,
    /// Lane that emitted `Ingress` (client thread).
    pub ingress_lane: u32,
    /// Lane that emitted `Reply` (shard worker; equals `ingress_lane`
    /// for shed requests that never reached a worker).
    pub worker_lane: u32,
    /// Transaction attempts observed (`Begin` count).
    pub attempts: u32,
    /// Per-stage durations in [`STAGES`] order, summing to `total_ns`.
    pub stage_ns: [u64; STAGE_COUNT],
}

impl Attribution {
    /// Per-stage shares of `total_ns`, summing to exactly 1.0 (the
    /// residual `other` share is computed as `1 − Σ others` in floating
    /// point). A zero-latency request is attributed entirely to
    /// `other`.
    pub fn shares(&self) -> [f64; STAGE_COUNT] {
        let mut out = [0.0; STAGE_COUNT];
        if self.total_ns == 0 {
            out[STAGE_COUNT - 1] = 1.0;
            return out;
        }
        let total = self.total_ns as f64;
        let mut partial = 0.0;
        for (o, ns) in out.iter_mut().zip(self.stage_ns).take(STAGE_COUNT - 1) {
            *o = ns as f64 / total;
            partial += *o;
        }
        out[STAGE_COUNT - 1] = (1.0 - partial).max(0.0);
        out
    }
}

/// Groups trace-carrying events into per-request chains, each sorted by
/// timestamp. Trace-0 (infrastructure) events are excluded. Chains are
/// returned in ascending trace-id order.
pub fn group_chains(events: &[EventRecord]) -> Vec<(u64, Vec<EventRecord>)> {
    let mut by_trace: std::collections::BTreeMap<u64, Vec<EventRecord>> =
        std::collections::BTreeMap::new();
    for e in events {
        if e.trace != 0 {
            by_trace.entry(e.trace).or_default().push(*e);
        }
    }
    let mut out: Vec<(u64, Vec<EventRecord>)> = by_trace.into_iter().collect();
    for (_, chain) in &mut out {
        chain.sort_by_key(|e| (e.ns, e.lane));
    }
    out
}

/// Validates that one request's chain is *stage-monotone*: the
/// lifecycle events appear in causally legal order. Used by the chaos
/// trace-completeness oracle and `trace_report --check`.
///
/// Rules: the chain starts with exactly one `Ingress` and ends with
/// exactly one `Reply`; timestamps never go backwards; at most one
/// `Dequeue`, after `Ingress` and before any `Begin`; every `Verdict`
/// answers an outstanding `ValidateSubmit`; at most one `Commit`, with
/// no `Begin` after it; `WalAppend` only after `Commit`.
pub fn check_chain(chain: &[EventRecord]) -> Result<(), String> {
    let trace = chain.first().map(|e| e.trace).unwrap_or(0);
    let fail = |msg: String| Err(format!("trace {trace}: {msg}"));
    if chain.is_empty() {
        return fail("empty chain".to_string());
    }
    if !matches!(chain[0].event, TxEvent::Ingress { .. }) {
        return fail(format!(
            "chain starts with {}, not ingress",
            chain[0].event.name()
        ));
    }
    if !matches!(chain[chain.len() - 1].event, TxEvent::Reply { .. }) {
        return fail(format!(
            "chain ends with {}, not reply",
            chain[chain.len() - 1].event.name()
        ));
    }
    let mut prev_ns = 0u64;
    let mut ingress = 0u32;
    let mut dequeue = 0u32;
    let mut reply = 0u32;
    let mut begins = 0u32;
    let mut commits = 0u32;
    let mut outstanding_submits = 0i64;
    for e in chain {
        if e.ns < prev_ns {
            return fail(format!("timestamp regression at {}", e.event.name()));
        }
        prev_ns = e.ns;
        match e.event {
            TxEvent::Ingress { .. } => ingress += 1,
            TxEvent::Dequeue { .. } => {
                dequeue += 1;
                if begins > 0 {
                    return fail("dequeue after begin".to_string());
                }
            }
            TxEvent::Reply { .. } => reply += 1,
            TxEvent::Begin => {
                if commits > 0 {
                    return fail("begin after commit".to_string());
                }
                begins += 1;
            }
            TxEvent::ValidateSubmit { .. } => outstanding_submits += 1,
            TxEvent::Verdict { .. } => {
                outstanding_submits -= 1;
                if outstanding_submits < 0 {
                    return fail("verdict without outstanding submit".to_string());
                }
            }
            TxEvent::Commit { .. } => commits += 1,
            TxEvent::WalAppend { .. } if commits == 0 => {
                return fail("wal-append before commit".to_string());
            }
            _ => {}
        }
    }
    if ingress != 1 {
        return fail(format!("{ingress} ingress events"));
    }
    if reply != 1 {
        return fail(format!("{reply} reply events"));
    }
    if dequeue > 1 {
        return fail(format!("{dequeue} dequeue events"));
    }
    if commits > 1 {
        return fail(format!("{commits} commit events"));
    }
    Ok(())
}

/// Decomposes one chain (sorted by timestamp, as produced by
/// [`group_chains`]) into stage durations. Returns `None` for
/// incomplete chains — ones whose `Ingress` or `Reply` was evicted by
/// ring wrap-around before export.
pub fn attribute(chain: &[EventRecord]) -> Option<Attribution> {
    let first = chain.first()?;
    let last = chain.last()?;
    let TxEvent::Ingress { .. } = first.event else {
        return None;
    };
    let TxEvent::Reply { outcome } = last.event else {
        return None;
    };
    let t0 = first.ns;
    let total = last.ns.saturating_sub(t0);

    let mut dequeue_ns = None;
    let mut queue_wait = 0u64;
    let mut first_begin_ns = None;
    let mut attempts = 0u32;
    let mut validation = 0u64;
    let mut submit_ns = None;
    let mut last_commit_verdict_ns = None;
    let mut commit_ns = None;
    let mut backoff = 0u64;
    let mut wal_append_ns = None;
    let mut repl_apply_ns = None;
    let mut worker_lane = last.lane;
    let mut last_active_ns = t0;
    for e in chain {
        match e.event {
            TxEvent::Dequeue { wait_ns } => {
                dequeue_ns = Some(e.ns);
                queue_wait = wait_ns;
                worker_lane = e.lane;
            }
            TxEvent::Begin => {
                attempts += 1;
                first_begin_ns.get_or_insert(e.ns);
                last_active_ns = last_active_ns.max(e.ns);
            }
            TxEvent::ValidateSubmit { .. } => submit_ns = Some(e.ns),
            TxEvent::Verdict { verdict, .. } => {
                if let Some(s) = submit_ns.take() {
                    validation += e.ns.saturating_sub(s);
                }
                if verdict == "commit" {
                    last_commit_verdict_ns = Some(e.ns);
                }
                last_active_ns = last_active_ns.max(e.ns);
            }
            TxEvent::Commit { .. } => {
                commit_ns = Some(e.ns);
                last_active_ns = last_active_ns.max(e.ns);
            }
            TxEvent::Abort { .. } => last_active_ns = last_active_ns.max(e.ns),
            TxEvent::Backoff { delay_ns, .. } => backoff += delay_ns,
            TxEvent::WalAppend { .. } => wal_append_ns = Some(e.ns),
            TxEvent::ReplApply { .. } => repl_apply_ns = Some(e.ns),
            _ => {}
        }
    }

    let mut stage_ns = [0u64; STAGE_COUNT];
    stage_ns[0] = queue_wait.min(total);
    if let (Some(dq), Some(fb)) = (dequeue_ns, first_begin_ns) {
        stage_ns[1] = fb.saturating_sub(dq);
    }
    stage_ns[3] = validation;
    let commit_publish = match (last_commit_verdict_ns, commit_ns) {
        (Some(v), Some(c)) => c.saturating_sub(v),
        _ => 0,
    };
    stage_ns[4] = commit_publish;
    if let (Some(c), Some(w)) = (commit_ns, wal_append_ns) {
        stage_ns[5] = w.saturating_sub(c);
    }
    stage_ns[6] = backoff;
    if let (Some(c), Some(r)) = (commit_ns, repl_apply_ns) {
        stage_ns[7] = r.saturating_sub(c);
    }
    // exec: time inside the attempt window not already attributed to
    // validation, commit publication, or backoff.
    if let Some(fb) = first_begin_ns {
        let window = last_active_ns.saturating_sub(fb);
        stage_ns[2] = window.saturating_sub(validation + commit_publish + backoff);
    }

    // Overlapping windows (clock sampling, the worker-measured
    // `wait_ns`) can over-explain the total: scale down proportionally,
    // then let `other` absorb the exact remainder.
    let known: u64 = stage_ns[..STAGE_COUNT - 1].iter().sum();
    if known > total && known > 0 {
        let mut scaled_sum = 0u64;
        for s in stage_ns[..STAGE_COUNT - 1].iter_mut() {
            *s = ((*s as u128 * total as u128) / known as u128) as u64;
            scaled_sum += *s;
        }
        stage_ns[STAGE_COUNT - 1] = total - scaled_sum;
    } else {
        stage_ns[STAGE_COUNT - 1] = total - known;
    }

    Some(Attribution {
        trace: first.trace,
        start_ns: t0,
        total_ns: total,
        outcome,
        ingress_lane: first.lane,
        worker_lane,
        attempts,
        stage_ns,
    })
}

/// Latency-weighted aggregate stage shares over a set of attributions:
/// summed per-stage nanoseconds over summed totals. Sums to 1.0 for a
/// non-empty input with non-zero total time; all zeros otherwise.
pub fn aggregate_shares(attrs: &[Attribution]) -> [f64; STAGE_COUNT] {
    let mut stage_sums = [0u64; STAGE_COUNT];
    let mut total = 0u64;
    for a in attrs {
        for (acc, s) in stage_sums.iter_mut().zip(a.stage_ns.iter()) {
            *acc += s;
        }
        total += a.total_ns;
    }
    let mut out = [0.0; STAGE_COUNT];
    if total == 0 {
        return out;
    }
    let mut partial = 0.0;
    for i in 0..STAGE_COUNT - 1 {
        out[i] = stage_sums[i] as f64 / total as f64;
        partial += out[i];
    }
    out[STAGE_COUNT - 1] = (1.0 - partial).max(0.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ns: u64, lane: u32, trace: u64, event: TxEvent) -> EventRecord {
        EventRecord {
            ns,
            lane,
            attempt: 1,
            trace,
            event,
        }
    }

    fn committed_chain() -> Vec<EventRecord> {
        vec![
            rec(1_000, 0, 7, TxEvent::Ingress { shard: 2, class: 0 }),
            rec(3_000, 5, 7, TxEvent::Dequeue { wait_ns: 2_000 }),
            rec(3_400, 5, 7, TxEvent::Begin),
            rec(
                4_000,
                5,
                7,
                TxEvent::ValidateSubmit {
                    reads: 2,
                    writes: 1,
                },
            ),
            rec(
                5_200,
                5,
                7,
                TxEvent::Verdict {
                    verdict: "commit",
                    model_ns: 1_000,
                    detector_ns: 600,
                    manager_ns: 400,
                    in_flight: 1,
                },
            ),
            rec(5_500, 5, 7, TxEvent::Commit { seq: 42 }),
            rec(8_000, 5, 7, TxEvent::WalAppend { seq: 42, writes: 1 }),
            rec(8_200, 5, 7, TxEvent::Reply { outcome: "ok" }),
        ]
    }

    #[test]
    fn attributes_committed_chain() {
        let chain = committed_chain();
        check_chain(&chain).unwrap();
        let a = attribute(&chain).unwrap();
        assert_eq!(a.trace, 7);
        assert_eq!(a.total_ns, 7_200);
        assert_eq!(a.outcome, "ok");
        assert_eq!(a.ingress_lane, 0);
        assert_eq!(a.worker_lane, 5);
        assert_eq!(a.attempts, 1);
        let by_name: std::collections::HashMap<&str, u64> =
            STAGES.iter().copied().zip(a.stage_ns).collect();
        assert_eq!(by_name["queue_wait"], 2_000);
        assert_eq!(by_name["route"], 400);
        assert_eq!(by_name["validation"], 1_200);
        assert_eq!(by_name["commit_publish"], 300);
        assert_eq!(by_name["fsync"], 2_500);
        // exec: begin(3400)..commit(5500) = 2100, minus validation 1200
        // and publish 300.
        assert_eq!(by_name["exec"], 600);
        assert_eq!(a.stage_ns.iter().sum::<u64>(), a.total_ns);
        let shares = a.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn retry_chain_counts_backoff_and_attempts() {
        let chain = vec![
            rec(0, 0, 9, TxEvent::Ingress { shard: 0, class: 1 }),
            rec(100, 3, 9, TxEvent::Dequeue { wait_ns: 100 }),
            rec(200, 3, 9, TxEvent::Begin),
            rec(
                500,
                3,
                9,
                TxEvent::Abort {
                    kind: "cpu-stale-read",
                },
            ),
            rec(
                510,
                3,
                9,
                TxEvent::Backoff {
                    attempt: 1,
                    delay_ns: 400,
                },
            ),
            rec(1_000, 3, 9, TxEvent::Begin),
            rec(1_500, 3, 9, TxEvent::Commit { seq: 5 }),
            rec(1_600, 3, 9, TxEvent::Reply { outcome: "ok" }),
        ];
        check_chain(&chain).unwrap();
        let a = attribute(&chain).unwrap();
        assert_eq!(a.attempts, 2);
        let by_name: std::collections::HashMap<&str, u64> =
            STAGES.iter().copied().zip(a.stage_ns).collect();
        assert_eq!(by_name["backoff"], 400);
        // window 200..1500 = 1300 minus backoff 400.
        assert_eq!(by_name["exec"], 900);
        assert_eq!(a.stage_ns.iter().sum::<u64>(), a.total_ns);
    }

    #[test]
    fn shed_chain_attributes_to_other() {
        let chain = vec![
            rec(10, 0, 3, TxEvent::Ingress { shard: 1, class: 0 }),
            rec(40, 0, 3, TxEvent::Reply { outcome: "shed" }),
        ];
        check_chain(&chain).unwrap();
        let a = attribute(&chain).unwrap();
        assert_eq!(a.total_ns, 30);
        assert_eq!(a.stage_ns[STAGE_COUNT - 1], 30);
        assert_eq!(a.outcome, "shed");
        assert_eq!(a.worker_lane, 0);
    }

    #[test]
    fn incomplete_chain_returns_none() {
        let mut chain = committed_chain();
        chain.remove(0); // ingress evicted by ring wrap
        assert!(attribute(&chain).is_none());
        let mut chain = committed_chain();
        chain.pop(); // reply missing
        assert!(attribute(&chain).is_none());
    }

    #[test]
    fn over_explained_chain_is_scaled_not_negative() {
        // Worker-measured wait_ns exceeds the whole request window
        // (possible when clocks are sampled at different points).
        let chain = vec![
            rec(0, 0, 4, TxEvent::Ingress { shard: 0, class: 0 }),
            rec(100, 1, 4, TxEvent::Dequeue { wait_ns: 10_000 }),
            rec(150, 1, 4, TxEvent::Reply { outcome: "ok" }),
        ];
        let a = attribute(&chain).unwrap();
        assert_eq!(a.stage_ns.iter().sum::<u64>(), a.total_ns);
        let shares = a.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn check_chain_rejects_stage_violations() {
        let mut chain = committed_chain();
        chain.swap(1, 2); // begin before dequeue
        assert!(check_chain(&chain).is_err());

        let mut chain = committed_chain();
        chain[6] = rec(5_400, 5, 7, TxEvent::WalAppend { seq: 42, writes: 1 });
        chain.sort_by_key(|e| e.ns); // wal-append now precedes commit
        assert!(check_chain(&chain).is_err());

        let chain = committed_chain();
        assert!(check_chain(&chain[1..]).is_err()); // no ingress
    }

    #[test]
    fn group_chains_splits_and_sorts() {
        let events = vec![
            rec(5, 1, 2, TxEvent::Begin),
            rec(1, 0, 1, TxEvent::Begin),
            rec(3, 1, 1, TxEvent::Commit { seq: 1 }),
            rec(2, 2, 0, TxEvent::WalFsync { records: 1, ns: 5 }),
        ];
        let chains = group_chains(&events);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].0, 1);
        assert_eq!(chains[0].1.len(), 2);
        assert!(chains[0].1[0].ns <= chains[0].1[1].ns);
        assert_eq!(chains[1].0, 2);
    }

    #[test]
    fn aggregate_shares_sum_to_one() {
        let chain = committed_chain();
        let a = attribute(&chain).unwrap();
        let agg = aggregate_shares(&[a.clone(), a]);
        assert!((agg.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(aggregate_shares(&[]), [0.0; STAGE_COUNT]);
    }
}
