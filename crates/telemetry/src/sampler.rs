//! Tail-based trace sampling.
//!
//! Recording every request's full event chain is cheap (the flight
//! recorder's rings are bounded) but *exporting* and analysing every
//! chain is not, and the chains that matter for latency work are the
//! slow ones. The tail sampler decides — once per request, at reply
//! time, after the total latency is known — whether that request's
//! chain is worth keeping:
//!
//! * requests are bucketed by `log2(latency)`; each bucket keeps the
//!   slowest `k` requests seen (a min-heap-style reservoir), so the
//!   export always contains the tail of every latency regime, not just
//!   the global maximum;
//! * requests that aborted, escalated, or were shed are force-kept
//!   (up to a generous cap) regardless of latency — failures are always
//!   worth explaining.
//!
//! The per-request fast path is lock-free: one relaxed counter bump and
//! one relaxed load of the request's bucket *threshold* (the bucket's
//! current k-th slowest latency). Only a request that beats its
//! bucket's tail — which becomes vanishingly rare once reservoirs warm
//! up, because thresholds only ratchet upward — or a force-kept failure
//! takes the mutex. That keeps always-on overhead inside the flight
//! recorder's noise bar even at full closed-loop throughput.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::recorder::EventRecord;

/// Number of `log2(latency_ns)` buckets. 64 covers every possible u64
/// latency.
const BUCKETS: usize = 64;

/// Cap on force-kept (aborted/escalated/shed) traces, to bound memory on
/// pathological runs. Overflow is counted, not silently ignored.
const FORCED_CAP: usize = 1 << 16;

/// Default slowest-k reservoir size per latency bucket.
pub const DEFAULT_TAIL_K: usize = 8;

struct SamplerState {
    /// Slowest-k reservoir per log2 bucket: `(latency_ns, trace)` pairs,
    /// unordered; the minimum is evicted on overflow.
    buckets: Vec<Vec<(u64, u64)>>,
    k: usize,
    forced: Vec<u64>,
    forced_overflow: u64,
}

impl SamplerState {
    const fn new() -> Self {
        Self {
            buckets: Vec::new(),
            k: DEFAULT_TAIL_K,
            forced: Vec::new(),
            forced_overflow: 0,
        }
    }
}

static SAMPLER: Mutex<SamplerState> = Mutex::new(SamplerState::new());

/// Requests offered since the last reset, bumped outside the lock.
static OBSERVED: AtomicU64 = AtomicU64::new(0);

/// Per-bucket admission threshold: the bucket's k-th slowest latency
/// once its reservoir is full, 0 before that. Read on the lock-free
/// fast path; only written under the `SAMPLER` lock, so it ratchets
/// monotonically between resets — a stale read can only cause a
/// harmless extra lock acquisition, never a missed keepable request.
static THRESHOLDS: [AtomicU64; BUCKETS] = [const { AtomicU64::new(0) }; BUCKETS];

fn bucket_of(latency_ns: u64) -> usize {
    (u64::BITS - latency_ns.leading_zeros()) as usize % BUCKETS
}

/// Resets the sampler and sets the slowest-k reservoir size per latency
/// bucket (clamped to at least 1). Called alongside
/// [`enable`](crate::enable) when tail-sampled tracing is wanted.
pub fn sampler_reset(k: usize) {
    if let Ok(mut s) = SAMPLER.lock() {
        s.buckets = vec![Vec::new(); BUCKETS];
        s.k = k.max(1);
        s.forced.clear();
        s.forced_overflow = 0;
        // Reset thresholds while holding the lock so no concurrent slow
        // path can ratchet a stale value back in after the clear.
        for t in &THRESHOLDS {
            t.store(0, Ordering::Relaxed);
        }
        OBSERVED.store(0, Ordering::Relaxed);
    }
}

/// Offers one finished request to the sampler. Called exactly once per
/// request at reply time, when its end-to-end latency is known.
/// `force_keep` marks requests that must be kept regardless of latency
/// (aborted, escalated, shed). No-op for trace 0.
pub fn observe_request(trace: u64, latency_ns: u64, force_keep: bool) {
    if trace == 0 {
        return;
    }
    OBSERVED.fetch_add(1, Ordering::Relaxed);
    let b = bucket_of(latency_ns);
    // Lock-free fast path: a request no slower than its bucket's k-th
    // slowest cannot change the reservoir, so don't even try.
    if !force_keep && latency_ns <= THRESHOLDS[b].load(Ordering::Relaxed) {
        return;
    }
    let Ok(mut s) = SAMPLER.lock() else { return };
    if s.buckets.is_empty() {
        s.buckets = vec![Vec::new(); BUCKETS];
    }
    if force_keep {
        if s.forced.len() < FORCED_CAP {
            s.forced.push(trace);
        } else {
            s.forced_overflow += 1;
        }
        return;
    }
    let k = s.k;
    let bucket = &mut s.buckets[b];
    if bucket.len() < k {
        bucket.push((latency_ns, trace));
    } else {
        // Evict the current minimum if this request is slower.
        if let Some((min_idx, &(min_lat, _))) =
            bucket.iter().enumerate().min_by_key(|&(_, &(lat, _))| lat)
        {
            if latency_ns > min_lat {
                bucket[min_idx] = (latency_ns, trace);
            }
        }
    }
    if bucket.len() == k {
        let new_min = bucket.iter().map(|&(lat, _)| lat).min().unwrap_or(0);
        THRESHOLDS[b].store(new_min, Ordering::Relaxed);
    }
}

/// The set of trace ids currently kept by the sampler (reservoir
/// survivors plus force-kept failures).
pub fn sampled_traces() -> HashSet<u64> {
    let mut kept = HashSet::new();
    if let Ok(s) = SAMPLER.lock() {
        for b in &s.buckets {
            kept.extend(b.iter().map(|&(_, t)| t));
        }
        kept.extend(s.forced.iter().copied());
    }
    kept
}

/// Total requests offered to the sampler since the last
/// [`sampler_reset`].
pub fn sampler_observed() -> u64 {
    OBSERVED.load(Ordering::Relaxed)
}

/// Drops events whose trace was not sampled. Trace-0 events
/// (infrastructure: WAL fsyncs, replication batches, faults) are always
/// kept — they correlate with sampled chains by sequence number, not by
/// trace id.
pub fn filter_sampled(events: &mut Vec<EventRecord>, kept: &HashSet<u64>) {
    events.retain(|e| e.trace == 0 || kept.contains(&e.trace));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TxEvent;

    /// Sampler state is process-global; serialise tests touching it.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn keeps_slowest_k_per_bucket() {
        let _g = serial();
        sampler_reset(2);
        // Five requests in the same log2 bucket (1024..2047 ns).
        for (trace, lat) in [(1u64, 1100u64), (2, 1500), (3, 1200), (4, 1900), (5, 1300)] {
            observe_request(trace, lat, false);
        }
        let kept = sampled_traces();
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&2) && kept.contains(&4), "kept {kept:?}");
        assert_eq!(sampler_observed(), 5);
    }

    #[test]
    fn different_buckets_do_not_compete() {
        let _g = serial();
        sampler_reset(1);
        observe_request(1, 100, false); // ~2^7 bucket
        observe_request(2, 10_000, false); // ~2^14 bucket
        observe_request(3, 10_000_000, false); // ~2^24 bucket
        let kept = sampled_traces();
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn failures_are_force_kept() {
        let _g = serial();
        sampler_reset(1);
        observe_request(1, 5000, false);
        observe_request(2, 7000, false); // same log2 bucket: evicts 1
        observe_request(3, 1, true); // fast but aborted: kept anyway
        let kept = sampled_traces();
        assert!(kept.contains(&2) && kept.contains(&3));
        assert!(!kept.contains(&1));
    }

    #[test]
    fn threshold_fast_path_skips_but_never_loses_keepable_requests() {
        let _g = serial();
        sampler_reset(2);
        observe_request(1, 1100, false);
        observe_request(2, 1500, false);
        // Bucket full: the threshold is now 1100. An equal-or-slower-
        // than-threshold request is skipped on the fast path...
        observe_request(3, 1100, false);
        assert!(!sampled_traces().contains(&3));
        // ...but a slower one still displaces the reservoir minimum.
        observe_request(4, 1300, false);
        let kept = sampled_traces();
        assert!(kept.contains(&2) && kept.contains(&4), "kept {kept:?}");
        assert!(!kept.contains(&1));
        assert_eq!(sampler_observed(), 4);
    }

    #[test]
    fn trace_zero_is_ignored() {
        let _g = serial();
        sampler_reset(4);
        observe_request(0, 1000, true);
        assert_eq!(sampler_observed(), 0);
        assert!(sampled_traces().is_empty());
    }

    #[test]
    fn filter_keeps_infra_and_sampled_only() {
        let _g = serial();
        let mk = |trace, ns| EventRecord {
            ns,
            lane: 0,
            attempt: 1,
            trace,
            event: TxEvent::Begin,
        };
        let mut events = vec![mk(7, 1), mk(8, 2), mk(0, 3)];
        let kept: HashSet<u64> = [7].into_iter().collect();
        filter_sampled(&mut events, &kept);
        assert_eq!(events.len(), 2);
        assert!(events.iter().any(|e| e.trace == 7));
        assert!(events.iter().any(|e| e.trace == 0));
    }
}
