//! The transaction flight recorder.
//!
//! Every participating thread owns a private ring buffer (a *lane*) of
//! [`EventRecord`]s. Emission appends to the calling thread's lane only
//! — no cross-thread synchronisation, no locks, no allocation after the
//! ring is first sized — which makes it safe at commit-path frequencies
//! and legal inside re-executable atomic closures: an aborted attempt's
//! events simply stay in the ring attributed to that attempt number.
//!
//! Memory is bounded: each lane holds at most the configured ring
//! capacity (default [`DEFAULT_RING_EVENTS`] events of
//! `size_of::<EventRecord>()` bytes each, ≈ 48 B, so ≈ 192 KiB per
//! thread at the default); older events are overwritten and counted in
//! `dropped`.
//!
//! Cold paths go through a global mutex: [`flush_thread`] moves a lane's
//! contents into the global collected buffer (called once per thread at
//! worker exit), [`drain_events`] takes everything for export, and
//! [`dump_anomaly`] snapshots the *calling thread's* recent history into
//! the dump list — anomalies (escalation, livelock cap, durability loss,
//! worker panic) are detected on the thread whose history explains them,
//! so the observing thread can always read its own ring without racing.
//!
//! When the recorder is disabled ([`enabled`] is false) every
//! instrumentation point costs one relaxed atomic load and a branch.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_EVENTS: usize = 4096;

/// One transaction-lifecycle event. All variants are `Copy` and carry
/// only scalars and `&'static str` labels so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TxEvent {
    /// A request entered the TxKV service and was assigned to a shard
    /// queue. Emitted on the *client* thread, under the freshly minted
    /// trace id.
    Ingress {
        /// Destination shard index.
        shard: u32,
        /// The request's scheduling class.
        class: u32,
    },
    /// A shard worker dequeued the request and started processing it.
    Dequeue {
        /// Time the request spent waiting in the shard queue, ns.
        wait_ns: u64,
    },
    /// The worker finished the request and sent the reply.
    Reply {
        /// `"ok"` for success, otherwise the error label (`"shed"`,
        /// `"aborted"`, ...).
        outcome: &'static str,
    },
    /// A transaction attempt began. Bumps the lane's attempt counter.
    Begin,
    /// The attempt's read set grew to `len` addresses (sampled at powers
    /// of two to bound event volume).
    ReadSet {
        /// Read-set size at the sample point.
        len: u32,
    },
    /// The attempt's write set grew to `len` addresses (sampled at
    /// powers of two).
    WriteSet {
        /// Write-set size at the sample point.
        len: u32,
    },
    /// A validation request was submitted to the FPGA service.
    ValidateSubmit {
        /// Read-set size in the request.
        reads: u32,
        /// Write/update-set size in the request.
        writes: u32,
    },
    /// The FPGA verdict arrived.
    Verdict {
        /// `"commit"`, `"abort-cycle"`, `"abort-window"` or `"stopped"`.
        verdict: &'static str,
        /// Modelled end-to-end validation latency (timing model), ns.
        model_ns: u64,
        /// Modelled Detector-stage share of `model_ns`, ns.
        detector_ns: u64,
        /// Modelled Manager-stage share of `model_ns`, ns.
        manager_ns: u64,
        /// Requests in flight at the validation service (occupancy).
        in_flight: u32,
    },
    /// The attempt aborted.
    Abort {
        /// Canonical `AbortKind::as_label()` string.
        kind: &'static str,
    },
    /// The attempt committed.
    Commit {
        /// Global commit sequence number (0 for read-only commits and
        /// for backends without one).
        seq: u64,
    },
    /// The thread escalated to irrevocable (fallback-locked) execution.
    Escalated {
        /// Consecutive aborts that triggered the escalation.
        consecutive_aborts: u32,
    },
    /// A WAL append for this transaction was acknowledged durable.
    WalAppend {
        /// The appended commit sequence number.
        seq: u64,
        /// Number of key-value writes in the record.
        writes: u32,
    },
    /// The WAL writer completed an fsync batch.
    WalFsync {
        /// Records covered by the fsync.
        records: u64,
        /// Wall-clock fsync duration, ns.
        ns: u64,
    },
    /// The retry policy backed off before re-attempting.
    Backoff {
        /// 1-based attempt number that just failed.
        attempt: u32,
        /// Backoff delay before the next attempt, ns.
        delay_ns: u64,
    },
    /// The fault injector perturbed the validation service.
    Fault {
        /// Injected fault kind (delay, reorder, spurious verdict, ...).
        kind: &'static str,
    },
    /// A committed transaction's durability acknowledgement was lost
    /// (WAL dead).
    DurabilityLost,
    /// A transaction body panicked in a worker.
    WorkerPanic,
    /// The replication shipper broadcast a stream batch to a follower.
    ReplShip {
        /// First commit sequence number in the batch.
        first_seq: u64,
        /// Records in the batch.
        records: u32,
        /// Follower the batch was shipped to.
        follower: u32,
    },
    /// A follower applied a replication batch to its store.
    ReplApply {
        /// The follower's index in the cluster.
        follower: u32,
        /// First sequence number *not yet* applied after this batch (the
        /// follower's new watermark).
        next_seq: u64,
        /// Records applied from the batch (duplicates skipped).
        records: u32,
    },
    /// The cluster coordinator completed a primary fail-over.
    Failover {
        /// The cluster epoch after the fail-over.
        epoch: u64,
        /// Index of the follower elected as the new primary.
        elected: u32,
    },
    /// The hybrid scheduler routed a transaction attempt to a backend.
    Route {
        /// The caller-supplied scheduling class of the transaction.
        class: u32,
        /// `"htm"` or `"sw"` — the path the router chose.
        path: &'static str,
    },
    /// The hybrid scheduler made a transaction wait before admission
    /// (conflict-serialization token or backend mode drain).
    RouteDefer {
        /// The caller-supplied scheduling class of the transaction.
        class: u32,
        /// `"token"` (conflict serialization) or `"mode-drain"` (waiting
        /// for the other engine's transactions to retire).
        reason: &'static str,
    },
}

impl TxEvent {
    /// Short stable name for rendering and tests.
    pub fn name(&self) -> &'static str {
        match self {
            TxEvent::Ingress { .. } => "ingress",
            TxEvent::Dequeue { .. } => "dequeue",
            TxEvent::Reply { .. } => "reply",
            TxEvent::Begin => "begin",
            TxEvent::ReadSet { .. } => "read-set",
            TxEvent::WriteSet { .. } => "write-set",
            TxEvent::ValidateSubmit { .. } => "validate-submit",
            TxEvent::Verdict { .. } => "verdict",
            TxEvent::Abort { .. } => "abort",
            TxEvent::Commit { .. } => "commit",
            TxEvent::Escalated { .. } => "escalated",
            TxEvent::WalAppend { .. } => "wal-append",
            TxEvent::WalFsync { .. } => "wal-fsync",
            TxEvent::Backoff { .. } => "backoff",
            TxEvent::Fault { .. } => "fault",
            TxEvent::DurabilityLost => "durability-lost",
            TxEvent::WorkerPanic => "worker-panic",
            TxEvent::ReplShip { .. } => "repl-ship",
            TxEvent::ReplApply { .. } => "repl-apply",
            TxEvent::Failover { .. } => "failover",
            TxEvent::Route { .. } => "route",
            TxEvent::RouteDefer { .. } => "route-defer",
        }
    }
}

/// A recorded event with its timing and attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// Nanoseconds since the recorder was (first) enabled.
    pub ns: u64,
    /// Recorder lane id (one per participating thread).
    pub lane: u32,
    /// Per-lane transaction attempt number (bumped by [`TxEvent::Begin`]).
    pub attempt: u64,
    /// Causal trace id of the request this event belongs to, captured
    /// from the emitting thread's trace context at emission time. 0
    /// means "no request context" (infrastructure events such as WAL
    /// fsyncs or replication batches, or tracing disabled).
    pub trace: u64,
    /// The event.
    pub event: TxEvent,
}

/// An anomaly dump: the dumping thread's buffered history at the moment
/// the anomaly was observed.
#[derive(Debug, Clone)]
pub struct AnomalyDump {
    /// Why the dump was taken (e.g. `"irrevocability-escalation"`).
    pub reason: &'static str,
    /// Nanoseconds since recorder enable at the dump point.
    pub ns: u64,
    /// Lane (thread) that observed the anomaly.
    pub lane: u32,
    /// Events overwritten by ring wrap-around before this dump (0 means
    /// `events` is the lane's complete history).
    pub dropped: u64,
    /// The lane's buffered events, oldest first.
    pub events: Vec<EventRecord>,
}

impl AnomalyDump {
    /// Human-readable rendering, one event per line.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "anomaly `{}` on lane {} at {} ns ({} events, {} dropped)\n",
            self.reason,
            self.lane,
            self.ns,
            self.events.len(),
            self.dropped
        );
        for e in &self.events {
            let _ = writeln!(
                out,
                "  {:>12} ns  attempt {:>4}  {:?}",
                e.ns, e.attempt, e.event
            );
        }
        out
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU32 = AtomicU32::new(0);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RING_EVENTS);
static NEXT_LANE: AtomicU32 = AtomicU32::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static COLLECTED: Mutex<Vec<EventRecord>> = Mutex::new(Vec::new());
static DUMPS: Mutex<Vec<AnomalyDump>> = Mutex::new(Vec::new());
static LANE_NAMES: Mutex<Vec<(u32, String)>> = Mutex::new(Vec::new());

struct Lane {
    id: u32,
    generation: u32,
    attempt: u64,
    cap: usize,
    buf: Vec<EventRecord>,
    /// Next overwrite position once `buf` is full.
    head: usize,
    dropped: u64,
}

thread_local! {
    static LANE: RefCell<Option<Lane>> = const { RefCell::new(None) };
    /// The request trace id events on this thread are currently
    /// attributed to. Plain per-thread state, not part of any atomic
    /// closure, so setting it is re-execution-safe: re-running an
    /// attempt re-stamps the same id.
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Mints a fresh non-zero trace id. Called once per request at TxKV
/// ingress; ids are process-global and never reused within a run.
#[inline]
pub fn mint_trace() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// Sets the calling thread's trace context: subsequent events emitted on
/// this thread carry `trace` until [`clear_current_trace`] or the next
/// `set_current_trace`. Idempotent, so calling it again for the same
/// request (e.g. before a re-executed attempt) is harmless.
#[inline]
pub fn set_current_trace(trace: u64) {
    CURRENT_TRACE.with(|t| t.set(trace));
}

/// Clears the calling thread's trace context; subsequent events carry
/// trace 0 (no request attribution).
#[inline]
pub fn clear_current_trace() {
    CURRENT_TRACE.with(|t| t.set(0));
}

/// The calling thread's current trace context (0 when unset).
// `Cell::get` is passed as a path, not called as `.get(..)`: the
// lint's name-based blocking propagation would otherwise conflate this
// accessor with blocking `get`s elsewhere in the workspace and taint
// every `Lane::push` call site.
#[inline]
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

impl Lane {
    fn new() -> Self {
        let id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("lane-{id}"));
        if let Ok(mut names) = LANE_NAMES.lock() {
            names.push((id, name));
        }
        Self {
            id,
            generation: GENERATION.load(Ordering::Relaxed),
            attempt: 0,
            cap: RING_CAP.load(Ordering::Relaxed).max(16),
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Discards buffered state when the recorder was re-enabled since
    /// this lane last recorded (stale events from a previous run).
    fn refresh(&mut self) {
        let generation = GENERATION.load(Ordering::Relaxed);
        if self.generation != generation {
            self.generation = generation;
            self.attempt = 0;
            self.cap = RING_CAP.load(Ordering::Relaxed).max(16);
            self.buf.clear();
            self.head = 0;
            self.dropped = 0;
        }
    }

    fn push(&mut self, event: TxEvent) {
        self.refresh();
        if matches!(event, TxEvent::Begin) {
            self.attempt += 1;
        }
        let rec = EventRecord {
            ns: now_ns(),
            lane: self.id,
            attempt: self.attempt,
            trace: current_trace(),
            event,
        };
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Buffered events, oldest first.
    fn in_order(&self) -> Vec<EventRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// True when the flight recorder is enabled. This relaxed load is the
/// entire disabled-path cost of every instrumentation point.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables the recorder with the given per-thread ring capacity (in
/// events; clamped to at least 16), clearing previously collected
/// events, dumps, and — lazily, on their next emission — stale lane
/// contents from a previous enable.
pub fn enable(ring_events: usize) {
    let _ = EPOCH.get_or_init(Instant::now);
    RING_CAP.store(ring_events.max(16), Ordering::Relaxed);
    GENERATION.fetch_add(1, Ordering::Relaxed);
    if let Ok(mut c) = COLLECTED.lock() {
        c.clear();
    }
    if let Ok(mut d) = DUMPS.lock() {
        d.clear();
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables the recorder. In-flight emissions on other threads may still
/// land in their lanes; they are discarded on the next [`enable`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Records `event` on the calling thread's lane. Callers should use the
/// [`tlm_event!`](crate::tlm_event) macro instead, which performs the
/// enabled check before evaluating the event expression.
pub fn emit(event: TxEvent) {
    if !enabled() {
        return;
    }
    LANE.with(|l| {
        if let Ok(mut slot) = l.try_borrow_mut() {
            slot.get_or_insert_with(Lane::new).push(event);
        }
    });
}

/// Moves the calling thread's buffered events into the global collected
/// buffer. Call once per participating thread when it finishes (worker
/// exit, service shutdown); [`drain_events`] flushes the *calling*
/// thread automatically.
pub fn flush_thread() {
    LANE.with(|l| {
        let mut slot = l.borrow_mut();
        if let Some(lane) = slot.as_mut() {
            lane.refresh();
            if lane.buf.is_empty() {
                return;
            }
            let events = lane.in_order();
            lane.buf.clear();
            lane.head = 0;
            if let Ok(mut c) = COLLECTED.lock() {
                c.extend_from_slice(&events);
            }
        }
    });
}

/// Flushes the calling thread, then takes and returns every collected
/// event, sorted by timestamp. Threads that have not called
/// [`flush_thread`] keep their buffered events.
pub fn drain_events() -> Vec<EventRecord> {
    flush_thread();
    let mut events = match COLLECTED.lock() {
        Ok(mut c) => std::mem::take(&mut *c),
        Err(_) => Vec::new(),
    };
    events.sort_by_key(|e| (e.ns, e.lane));
    events
}

/// Snapshots the calling thread's buffered history as an [`AnomalyDump`]
/// with the given reason. No-op when the recorder is disabled.
pub fn dump_anomaly(reason: &'static str) {
    if !enabled() {
        return;
    }
    LANE.with(|l| {
        let mut slot = l.borrow_mut();
        let Some(lane) = slot.as_mut() else { return };
        lane.refresh();
        let dump = AnomalyDump {
            reason,
            ns: now_ns(),
            lane: lane.id,
            dropped: lane.dropped,
            events: lane.in_order(),
        };
        if let Ok(mut d) = DUMPS.lock() {
            d.push(dump);
        }
    });
}

/// Takes and returns every anomaly dump recorded since [`enable`].
pub fn take_dumps() -> Vec<AnomalyDump> {
    match DUMPS.lock() {
        Ok(mut d) => std::mem::take(&mut *d),
        Err(_) => Vec::new(),
    }
}

/// `(lane id, thread name)` pairs for every lane ever created, for
/// labelling trace tracks.
pub fn lane_names() -> Vec<(u32, String)> {
    LANE_NAMES.lock().map(|n| n.clone()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The recorder is process-global; tests in this module serialise on
    /// this lock so enable/disable cycles don't interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let _g = serial();
        disable();
        crate::tlm_event!(TxEvent::Begin);
        enable(64);
        assert!(drain_events().is_empty());
        disable();
    }

    #[test]
    fn events_carry_attempt_numbers_and_order() {
        let _g = serial();
        enable(64);
        emit(TxEvent::Begin);
        emit(TxEvent::ReadSet { len: 1 });
        emit(TxEvent::Abort {
            kind: "cpu-stale-read",
        });
        emit(TxEvent::Begin);
        emit(TxEvent::Commit { seq: 9 });
        let events = drain_events();
        disable();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].attempt, 1);
        assert_eq!(events[2].attempt, 1);
        assert_eq!(events[3].attempt, 2);
        assert_eq!(events[4].event, TxEvent::Commit { seq: 9 });
        assert!(events.windows(2).all(|w| w[0].ns <= w[1].ns));
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let _g = serial();
        enable(16); // clamped minimum
        for i in 0..40 {
            emit(TxEvent::Commit { seq: i });
        }
        LANE.with(|l| {
            let mut slot = l.borrow_mut();
            let lane = slot.as_mut().unwrap();
            lane.refresh();
            assert_eq!(lane.buf.len(), 16);
            assert_eq!(lane.dropped, 24);
            let events = lane.in_order();
            // Oldest surviving event first.
            assert_eq!(events[0].event, TxEvent::Commit { seq: 24 });
            assert_eq!(events[15].event, TxEvent::Commit { seq: 39 });
        });
        let _ = drain_events();
        disable();
    }

    #[test]
    fn cross_thread_flush_collects_everything() {
        let _g = serial();
        enable(1024);
        std::thread::scope(|s| {
            for t in 0..3 {
                s.spawn(move || {
                    emit(TxEvent::Begin);
                    emit(TxEvent::Commit { seq: t });
                    flush_thread();
                });
            }
        });
        let events = drain_events();
        disable();
        assert_eq!(events.len(), 6);
        let lanes: std::collections::HashSet<u32> = events.iter().map(|e| e.lane).collect();
        assert_eq!(lanes.len(), 3);
    }

    #[test]
    fn anomaly_dump_snapshots_own_history() {
        let _g = serial();
        enable(256);
        emit(TxEvent::Begin);
        emit(TxEvent::Abort { kind: "fpga-cycle" });
        emit(TxEvent::Begin);
        emit(TxEvent::Abort { kind: "fpga-cycle" });
        dump_anomaly("test-escalation");
        let dumps = take_dumps();
        let _ = drain_events();
        disable();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.reason, "test-escalation");
        assert_eq!(d.dropped, 0);
        assert_eq!(d.events.len(), 4);
        assert_eq!(d.events[3].attempt, 2);
        assert!(d.to_text().contains("test-escalation"));
    }

    #[test]
    fn trace_context_stamps_events() {
        let _g = serial();
        enable(64);
        let t = mint_trace();
        assert_ne!(t, 0);
        set_current_trace(t);
        emit(TxEvent::Begin);
        emit(TxEvent::Commit { seq: 1 });
        clear_current_trace();
        emit(TxEvent::WalFsync { records: 1, ns: 10 });
        let events = drain_events();
        disable();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].trace, t);
        assert_eq!(events[1].trace, t);
        assert_eq!(events[2].trace, 0);
    }

    #[test]
    fn ring_wraparound_does_not_leak_across_generation_bump() {
        let _g = serial();
        // First generation: wrap the ring several times over so head is
        // mid-buffer and `dropped` is non-zero when the recorder stops.
        enable(16);
        for i in 0..50 {
            emit(TxEvent::Commit { seq: i });
        }
        LANE.with(|l| {
            let mut slot = l.borrow_mut();
            let lane = slot.as_mut().unwrap();
            lane.refresh();
            assert_eq!(lane.buf.len(), 16);
            assert!(lane.dropped > 0);
            assert_ne!(lane.head, 0, "wrap must leave head mid-buffer");
        });
        disable();
        // Second generation: the stale wrapped ring must be discarded on
        // the lane's next emission, not rotated into the new export.
        enable(16);
        emit(TxEvent::Begin);
        emit(TxEvent::Commit { seq: 1000 });
        LANE.with(|l| {
            let mut slot = l.borrow_mut();
            let lane = slot.as_mut().unwrap();
            assert_eq!(lane.head, 0, "generation bump must reset head");
            assert_eq!(lane.dropped, 0, "generation bump must reset drops");
        });
        let events = drain_events();
        disable();
        assert_eq!(events.len(), 2, "stale-generation events leaked");
        assert_eq!(events[0].event, TxEvent::Begin);
        assert_eq!(events[0].attempt, 1, "attempt counter must restart");
        assert_eq!(events[1].event, TxEvent::Commit { seq: 1000 });
        // Wrap the new generation's ring too: survivors must all be
        // post-bump events.
        enable(16);
        for i in 0..40 {
            emit(TxEvent::Commit { seq: 2000 + i });
        }
        let events = drain_events();
        disable();
        assert_eq!(events.len(), 16);
        assert!(events
            .iter()
            .all(|e| matches!(e.event, TxEvent::Commit { seq } if seq >= 2000)));
    }

    #[test]
    fn reenable_discards_stale_lane_contents() {
        let _g = serial();
        enable(64);
        emit(TxEvent::Begin);
        disable();
        enable(64);
        emit(TxEvent::Commit { seq: 1 });
        let events = drain_events();
        disable();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event, TxEvent::Commit { seq: 1 });
        // Attempt counter also reset with the generation.
        assert_eq!(events[0].attempt, 0);
    }
}
