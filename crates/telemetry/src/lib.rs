//! `rococo-telemetry`: the observability layer for the ROCoCoTM stack.
//!
//! Three pillars, all dependency-free (std only) so every other crate in
//! the workspace can depend on this one without cycles:
//!
//! 1. [`registry`] — a metrics registry of named counters, gauges and
//!    histograms with label support, rendered as Prometheus text
//!    exposition or as a JSON snapshot. The stats structs scattered
//!    across the stack (`ShardStats`, `TmStats`, `EngineStats`,
//!    `FaultStats`, `WalStats`) each gain an adapter in their home crate
//!    that re-exports them here under one `rococo_*` namespace.
//!
//! 2. [`recorder`] — a transaction *flight recorder*: per-thread ring
//!    buffers of lifecycle events (begin, read/write-set growth,
//!    validate submit, FPGA verdict with pipeline occupancy, abort with
//!    its [`TxEvent::Abort`] kind label, commit sequence number,
//!    irrevocability escalation, WAL append/fsync acknowledgement, retry
//!    backoff, injected faults). Emission is buffered and re-execution
//!    safe — an aborted transaction attempt simply leaves its events in
//!    the ring, attributed to that attempt — which is why emission is
//!    legal inside atomic closures (and allowlisted by `rococo-lint`'s
//!    `atomic-side-effect` rule). When the recorder is disabled the cost
//!    at every instrumentation point is a branch on one relaxed atomic
//!    load: no allocation, no locking, no clock read.
//!
//! 3. [`trace`] — a Chrome trace-event (Perfetto-loadable) exporter that
//!    renders per-transaction spans and FPGA Detector→Manager stage
//!    occupancy on a shared timeline, either live from drained recorder
//!    events or from the cycle-level pipeline simulator (`trace_dump`).
//!
//! The [`json`] module is a minimal JSON escape/parse helper used by the
//! renderers and by the artifact schema tests; it exists because the
//! vendored `serde` shim is declaration-only and serializes nothing.
//!
//! On top of the recorder sit the causal-tracing pieces: every
//! [`EventRecord`] carries the emitting thread's current *trace id*
//! (minted per request at TxKV ingress, stamped via
//! [`set_current_trace`]), the [`sampler`] keeps full event chains only
//! for tail-latency and failed requests, and [`attr`] decomposes a
//! sampled chain's end-to-end latency into critical-path stages. The
//! [`quantile`] module is the one shared implementation of
//! nearest-rank percentile selection used by every latency surface in
//! the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod json;
pub mod quantile;
pub mod recorder;
pub mod registry;
pub mod sampler;
pub mod trace;

pub use attr::{aggregate_shares, attribute, check_chain, group_chains, Attribution, STAGES};
pub use recorder::{
    clear_current_trace, current_trace, disable, drain_events, dump_anomaly, emit, enable, enabled,
    flush_thread, lane_names, mint_trace, set_current_trace, take_dumps, AnomalyDump, EventRecord,
    TxEvent, DEFAULT_RING_EVENTS,
};
pub use registry::{validate_prometheus, HistogramPoints, MetricsRegistry};
pub use sampler::{
    filter_sampled, observe_request, sampled_traces, sampler_observed, sampler_reset,
    DEFAULT_TAIL_K,
};
pub use trace::{build_tx_trace, Arg, TraceBuilder, DETECTOR_TID, FPGA_PID, MANAGER_TID, TX_PID};

/// Emits a flight-recorder event if the recorder is enabled.
///
/// The event expression is evaluated *only after* the enabled check, so
/// a disabled recorder costs one relaxed atomic load and a branch — the
/// argument may therefore read cheap state (set sizes, sequence
/// numbers) without taxing the disabled hot path.
///
/// Emission is buffered into the calling thread's ring and never blocks,
/// allocates on the hot path (the ring is pre-sized), or performs I/O,
/// which makes it legal inside re-executable atomic closures.
#[macro_export]
macro_rules! tlm_event {
    ($ev:expr) => {
        if $crate::enabled() {
            $crate::emit($ev);
        }
    };
}
