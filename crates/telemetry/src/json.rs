//! Minimal JSON support: string escaping for the renderers and a strict
//! recursive-descent parser for the artifact schema tests and the CI
//! smoke checker. The vendored `serde` shim is declaration-only, so all
//! JSON in this workspace is hand-rendered; this module is the one place
//! that knows how to read it back.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key order deterministic for tests.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `src`, requiring that the whole input is one JSON value.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Validates that `src` is a single well-formed JSON document.
pub fn validate(src: &str) -> Result<(), String> {
    Json::parse(src).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not produced by our renderers;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at offset {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid; copy bytes until the next
                    // char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"s":"x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{\"a\":1}trailing",
            "01x",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1}";
        let doc = format!("{{\"k\":\"{}\"}}", escape(original));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_passes_through() {
        let v = Json::parse("{\"k\":\"héllo → wörld\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("héllo → wörld"));
    }
}
