//! The metrics registry: named counters, gauges and histograms with
//! label support, rendered as Prometheus text exposition (version 0.0.4)
//! or as a JSON snapshot.
//!
//! The registry is a *snapshot sink*, not a live aggregation tree: the
//! existing lock-free stats structs stay the source of truth on the hot
//! path, and an exporter walks them into a fresh registry whenever an
//! exposition is wanted (the TxKV scraper does this periodically). That
//! keeps the registry simple — plain `String`s and `Vec`s behind a
//! `&mut self` API — and keeps the hot path untouched.
//!
//! Naming scheme: every metric is `rococo_<subsystem>_<what>[_total]`
//! with snake_case names, `_total` on monotonic counters, and units in
//! the name (`_ns`, `_bytes`). Labels carry dimensions (shard, abort
//! kind, fsync policy), never units.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::escape;

/// A histogram observation set in exporter form: cumulative counts at
/// ascending upper bounds, plus the total count and sum of observed
/// values. `bounds` and `cumulative` are parallel; counts at or below
/// `bounds[i]` are `cumulative[i]`, and `count` covers the implicit
/// `+Inf` bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramPoints {
    /// Ascending bucket upper bounds (inclusive), in the metric's unit.
    pub bounds: Vec<u64>,
    /// Cumulative observation counts at each bound.
    pub cumulative: Vec<u64>,
    /// Total observation count (the `+Inf` bucket).
    pub count: u64,
    /// Sum of all observed values, in the metric's unit.
    pub sum: f64,
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramPoints),
}

#[derive(Debug, Clone)]
struct Sample {
    labels: Vec<(String, String)>,
    value: Value,
}

#[derive(Debug, Clone)]
struct Metric {
    help: String,
    samples: Vec<Sample>,
}

/// A snapshot registry of metrics, keyed by name. See the module docs
/// for the naming scheme and intended use.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a monotonic counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push(name, help, labels, Value::Counter(value));
    }

    /// Records a gauge sample (a value that can go up or down).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, help, labels, Value::Gauge(value));
    }

    /// Records a histogram sample.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        points: HistogramPoints,
    ) {
        debug_assert!(
            points.bounds.len() == points.cumulative.len(),
            "bounds/cumulative length mismatch for {name}"
        );
        self.push(name, help, labels, Value::Histogram(points));
    }

    /// Number of distinct metric names registered.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    fn push(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: Value) {
        assert!(valid_name(name), "invalid metric name `{name}`");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name `{k}` on `{name}`");
        }
        let metric = self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric {
                help: help.to_string(),
                samples: Vec::new(),
            });
        metric.samples.push(Sample {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
    }

    /// Renders the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            let kind = match metric.samples.first().map(|s| &s.value) {
                Some(Value::Counter(_)) => "counter",
                Some(Value::Gauge(_)) => "gauge",
                Some(Value::Histogram(_)) => "histogram",
                None => continue,
            };
            let _ = writeln!(out, "# HELP {name} {}", metric.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for sample in &metric.samples {
                match &sample.value {
                    Value::Counter(v) => {
                        let _ = writeln!(out, "{name}{} {v}", label_block(&sample.labels, &[]));
                    }
                    Value::Gauge(v) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            label_block(&sample.labels, &[]),
                            fmt_f64(*v)
                        );
                    }
                    Value::Histogram(h) => {
                        for (bound, cum) in h.bounds.iter().zip(&h.cumulative) {
                            let le = bound.to_string();
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                label_block(&sample.labels, &[("le", &le)])
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            label_block(&sample.labels, &[("le", "+Inf")]),
                            h.count
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            label_block(&sample.labels, &[]),
                            fmt_f64(h.sum)
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            label_block(&sample.labels, &[]),
                            h.count
                        );
                    }
                }
            }
        }
        out
    }

    /// Renders the JSON snapshot: `{"metrics":[{name,kind,labels,...}]}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        let mut first = true;
        for (name, metric) in &self.metrics {
            for sample in &metric.samples {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{{\"name\":\"{}\",", escape(name));
                out.push_str("\"labels\":{");
                for (n, (k, v)) in sample.labels.iter().enumerate() {
                    if n > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
                }
                out.push_str("},");
                match &sample.value {
                    Value::Counter(v) => {
                        let _ = write!(out, "\"kind\":\"counter\",\"value\":{v}}}");
                    }
                    Value::Gauge(v) => {
                        let _ = write!(out, "\"kind\":\"gauge\",\"value\":{}}}", fmt_f64(*v));
                    }
                    Value::Histogram(h) => {
                        out.push_str("\"kind\":\"histogram\",\"buckets\":[");
                        for (n, (bound, cum)) in h.bounds.iter().zip(&h.cumulative).enumerate() {
                            if n > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "{{\"le\":{bound},\"count\":{cum}}}");
                        }
                        let _ = write!(out, "],\"count\":{},\"sum\":{}}}", h.count, fmt_f64(h.sum));
                    }
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Formats an `f64` so it parses back as JSON (no `inf`/`NaN` tokens).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .next()
            .is_some_and(|b| b.is_ascii_alphabetic() || b == b'_')
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Validates a Prometheus text exposition: every non-empty line is a
/// comment (`# HELP` / `# TYPE`) or a `name{labels} value` sample with a
/// parseable value. Returns the number of sample lines.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (n, line) in text.lines().enumerate() {
        let lineno = n + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return Err(format!("line {lineno}: unknown comment form"));
            }
            continue;
        }
        // `name{labels} value` or `name value`.
        let (name_part, value_part) = match line.find('{') {
            Some(open) => {
                let close = line[open..]
                    .find('}')
                    .map(|c| open + c)
                    .ok_or_else(|| format!("line {lineno}: unterminated label block"))?;
                validate_labels(&line[open + 1..close])
                    .map_err(|e| format!("line {lineno}: {e}"))?;
                (&line[..open], line[close + 1..].trim())
            }
            None => {
                let sp = line
                    .find(' ')
                    .ok_or_else(|| format!("line {lineno}: no value"))?;
                (&line[..sp], line[sp + 1..].trim())
            }
        };
        if !valid_name(name_part) {
            return Err(format!("line {lineno}: bad metric name `{name_part}`"));
        }
        if value_part.parse::<f64>().is_err() && value_part != "+Inf" && value_part != "-Inf" {
            return Err(format!("line {lineno}: bad value `{value_part}`"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(samples)
}

fn validate_labels(block: &str) -> Result<(), String> {
    if block.is_empty() {
        return Ok(());
    }
    // Split on commas outside quotes.
    let mut in_quotes = false;
    let mut escaped = false;
    let mut start = 0usize;
    let mut parts = Vec::new();
    for (i, c) in block.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                parts.push(&block[start..i]);
                start = i + 1;
                escaped = false;
            }
            _ => escaped = false,
        }
    }
    parts.push(&block[start..]);
    for p in parts {
        let eq = p
            .find('=')
            .ok_or_else(|| format!("label `{p}` has no `=`"))?;
        let (k, v) = (&p[..eq], &p[eq + 1..]);
        if !valid_name(k) {
            return Err(format!("bad label name `{k}`"));
        }
        if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
            return Err(format!("label value `{v}` not quoted"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter(
            "rococo_tm_commits_total",
            "committed transactions",
            &[("backend", "rococo")],
            42,
        );
        reg.counter(
            "rococo_tm_aborts_total",
            "aborted attempts by kind",
            &[("kind", "fpga-cycle")],
            7,
        );
        reg.gauge("rococo_fpga_in_flight", "validations in flight", &[], 2.5);
        reg.histogram(
            "rococo_txkv_latency_ns",
            "request latency",
            &[("shard", "0")],
            HistogramPoints {
                bounds: vec![1_000, 1_000_000],
                cumulative: vec![3, 9],
                count: 10,
                sum: 12_345.0,
            },
        );
        reg
    }

    #[test]
    fn prometheus_exposition_parses_and_counts_samples() {
        let text = sample_registry().render_prometheus();
        // 2 counters + 1 gauge + histogram (2 bounds + Inf + sum + count).
        assert_eq!(validate_prometheus(&text), Ok(8), "{text}");
        assert!(text.contains("# TYPE rococo_tm_commits_total counter"));
        assert!(text.contains("rococo_tm_aborts_total{kind=\"fpga-cycle\"} 7"));
        assert!(text.contains("rococo_txkv_latency_ns_bucket{shard=\"0\",le=\"+Inf\"} 10"));
    }

    #[test]
    fn json_snapshot_is_well_formed_and_structured() {
        let doc = sample_registry().render_json();
        let v = Json::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        let metrics = v.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), 4);
        let hist = metrics
            .iter()
            .find(|m| m.get("kind").and_then(Json::as_str) == Some("histogram"))
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(10.0));
        assert_eq!(hist.get("buckets").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn empty_and_bad_expositions_are_rejected() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("name_only_no_value\n").is_err());
        assert!(validate_prometheus("x{unclosed=\"1\" 3\n").is_err());
        assert!(validate_prometheus("# BOGUS comment\nm 1\n").is_err());
        assert!(validate_prometheus("m{l=\"a\"} 1\n").is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected_at_registration() {
        MetricsRegistry::new().counter("bad-name", "", &[], 1);
    }

    #[test]
    fn label_values_with_quotes_render_escaped() {
        let mut reg = MetricsRegistry::new();
        reg.counter("m_total", "h", &[("k", "va\"lue")], 1);
        let text = reg.render_prometheus();
        assert!(text.contains("m_total{k=\"va\\\"lue\"} 1"), "{text}");
        assert!(validate_prometheus(&text).is_ok());
        assert!(Json::parse(&reg.render_json()).is_ok());
    }
}
