//! Chrome trace-event (Perfetto-loadable) export.
//!
//! Renders JSON in the Trace Event Format's "JSON Object Format":
//! `{"traceEvents":[...],"displayTimeUnit":"ns"}` with complete (`"X"`)
//! duration events, instant (`"i"`) events and metadata (`"M"`) records.
//! Load the output at `ui.perfetto.dev` or `chrome://tracing`.
//!
//! Two producers use the builder:
//!
//! - [`build_tx_trace`] turns drained flight-recorder events into
//!   per-transaction spans (one track per lane, pid
//!   [`TX_PID`]) with validation sub-spans, and projects each verdict's
//!   modelled Detector/Manager stage occupancy onto the FPGA process
//!   (pid [`FPGA_PID`]) *within the wall-clock validation window*, so
//!   transaction spans and pipeline stage slices share one timeline and
//!   genuinely overlap. The stage slices carry their model-time lengths
//!   in `args` — wall-window projection changes their scale, never their
//!   proportions.
//! - The `trace_dump` bench bin drives the cycle-level
//!   `PipelinedValidator` directly and emits exact model-time slices
//!   through the same builder.

use crate::json::escape;
use crate::recorder::{EventRecord, TxEvent};
use std::fmt::Write as _;

/// Trace pid under which per-transaction (per-lane) tracks are emitted.
pub const TX_PID: u32 = 1;
/// Trace pid under which FPGA pipeline stage tracks are emitted.
pub const FPGA_PID: u32 = 2;
/// Detector-stage track tid within [`FPGA_PID`].
pub const DETECTOR_TID: u32 = 1;
/// Manager-stage track tid within [`FPGA_PID`].
pub const MANAGER_TID: u32 = 2;

/// One typed argument value for an event's `args` block.
#[derive(Debug, Clone)]
pub enum Arg {
    /// Rendered as a JSON number.
    Num(f64),
    /// Rendered as a JSON string.
    Str(String),
}

impl From<u64> for Arg {
    fn from(v: u64) -> Self {
        Arg::Num(v as f64)
    }
}
impl From<u32> for Arg {
    fn from(v: u32) -> Self {
        Arg::Num(v as f64)
    }
}
impl From<f64> for Arg {
    fn from(v: f64) -> Self {
        Arg::Num(v)
    }
}
impl From<&str> for Arg {
    fn from(v: &str) -> Self {
        Arg::Str(v.to_string())
    }
}
impl From<String> for Arg {
    fn from(v: String) -> Self {
        Arg::Str(v)
    }
}

/// Incremental builder for a trace-event JSON document.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<String>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a complete (`"X"`) duration event. Timestamps and durations
    /// are microseconds (the trace-event unit); durations below 1 ns are
    /// clamped up so viewers render the slice.
    #[allow(clippy::too_many_arguments)] // mirrors the trace-event field list
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        pid: u32,
        tid: u32,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, Arg)],
    ) {
        let mut e = format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts},\"dur\":{dur}",
            escape(name),
            escape(cat),
            ts = fmt_us(ts_us),
            dur = fmt_us(dur_us.max(0.001)),
        );
        push_args(&mut e, args);
        e.push('}');
        self.events.push(e);
    }

    /// Adds a thread-scoped instant (`"i"`) event.
    pub fn instant(
        &mut self,
        name: &str,
        cat: &str,
        pid: u32,
        tid: u32,
        ts_us: f64,
        args: &[(&str, Arg)],
    ) {
        let mut e = format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\
             \"tid\":{tid},\"ts\":{ts}",
            escape(name),
            escape(cat),
            ts = fmt_us(ts_us),
        );
        push_args(&mut e, args);
        e.push('}');
        self.events.push(e);
    }

    /// Adds a flow event (`"s"` start / `"t"` step / `"f"` finish).
    /// Events sharing an `id` are linked by an arrow in the viewer,
    /// which is how one request's spans are connected across worker
    /// threads: the flow id is the request's trace id.
    pub fn flow(&mut self, ph: char, name: &str, id: u64, pid: u32, tid: u32, ts_us: f64) {
        debug_assert!(matches!(ph, 's' | 't' | 'f'));
        let bp = if ph == 'f' { ",\"bp\":\"e\"" } else { "" };
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"{ph}\",\"id\":{id},\"pid\":{pid},\
             \"tid\":{tid},\"ts\":{ts}{bp}}}",
            escape(name),
            ts = fmt_us(ts_us),
        ));
    }

    /// Names a process track.
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// Names a thread track.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
    }

    /// Renders the full JSON document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(e);
        }
        out.push_str("]}");
        out
    }
}

fn push_args(e: &mut String, args: &[(&str, Arg)]) {
    if args.is_empty() {
        return;
    }
    e.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            e.push(',');
        }
        match v {
            Arg::Num(n) => {
                let n = if n.is_finite() { *n } else { 0.0 };
                let _ = write!(e, "\"{}\":{n}", escape(k));
            }
            Arg::Str(s) => {
                let _ = write!(e, "\"{}\":\"{}\"", escape(k), escape(s));
            }
        }
    }
    e.push('}');
}

/// Formats a microsecond quantity with fixed sub-ns precision so output
/// is deterministic and never uses exponent notation.
fn fmt_us(v: f64) -> String {
    let s = format!("{v:.4}");
    // Trim trailing zeros but keep at least one digit after the point
    // trimmed entirely when the value is integral.
    let t = s.trim_end_matches('0').trim_end_matches('.');
    if t.is_empty() {
        "0".to_string()
    } else {
        t.to_string()
    }
}

/// Builds a trace document from drained flight-recorder events (plus
/// `(lane, thread name)` pairs from
/// [`lane_names`](crate::recorder::lane_names) for track labels).
///
/// Per lane: each attempt becomes a `tx` span from its `Begin` to its
/// `Commit`/`Abort` (attempts still open when the recorder drained are
/// skipped); `ValidateSubmit`→`Verdict` becomes a nested `validate`
/// span, and the verdict's modelled Detector/Manager occupancy is
/// projected into that wall-clock window on the FPGA process tracks.
/// WAL, backoff, fault and anomaly events render as instants.
pub fn build_tx_trace(events: &[EventRecord], lanes: &[(u32, String)]) -> String {
    let mut tb = TraceBuilder::new();
    tb.process_name(TX_PID, "transactions");
    tb.process_name(FPGA_PID, "fpga-pipeline (model, wall-projected)");
    tb.thread_name(FPGA_PID, DETECTOR_TID, "Detector");
    tb.thread_name(FPGA_PID, MANAGER_TID, "Manager");

    let mut seen_lanes: Vec<u32> = events.iter().map(|e| e.lane).collect();
    seen_lanes.sort_unstable();
    seen_lanes.dedup();
    for lane in &seen_lanes {
        let label = lanes
            .iter()
            .find(|(id, _)| id == lane)
            .map(|(_, n)| n.as_str())
            .unwrap_or("worker");
        tb.thread_name(TX_PID, *lane, &format!("{label} (lane {lane})"));
    }

    for lane in seen_lanes {
        let mut begin_ns: Option<u64> = None;
        let mut submit_ns: Option<u64> = None;
        let mut attempt = 0u64;
        for e in events.iter().filter(|e| e.lane == lane) {
            let ts = e.ns as f64 / 1000.0;
            match e.event {
                TxEvent::Ingress { shard, class } => {
                    tb.instant(
                        "ingress",
                        "trace",
                        TX_PID,
                        lane,
                        ts,
                        &[
                            ("trace", e.trace.into()),
                            ("shard", shard.into()),
                            ("class", class.into()),
                        ],
                    );
                    if e.trace != 0 {
                        tb.flow('s', "req", e.trace, TX_PID, lane, ts);
                    }
                }
                TxEvent::Dequeue { wait_ns } => {
                    tb.instant(
                        "dequeue",
                        "trace",
                        TX_PID,
                        lane,
                        ts,
                        &[("trace", e.trace.into()), ("wait_ns", wait_ns.into())],
                    );
                    if e.trace != 0 {
                        tb.flow('t', "req", e.trace, TX_PID, lane, ts);
                    }
                }
                TxEvent::Reply { outcome } => {
                    tb.instant(
                        "reply",
                        "trace",
                        TX_PID,
                        lane,
                        ts,
                        &[("trace", e.trace.into()), ("outcome", outcome.into())],
                    );
                    if e.trace != 0 {
                        tb.flow('f', "req", e.trace, TX_PID, lane, ts);
                    }
                }
                TxEvent::Begin => {
                    begin_ns = Some(e.ns);
                    submit_ns = None;
                    attempt = e.attempt;
                }
                TxEvent::ValidateSubmit { .. } => submit_ns = Some(e.ns),
                TxEvent::Verdict {
                    verdict,
                    model_ns,
                    detector_ns,
                    manager_ns,
                    in_flight,
                } => {
                    if let Some(sub) = submit_ns.take() {
                        let wall = (e.ns.saturating_sub(sub)).max(1) as f64;
                        tb.complete(
                            "validate",
                            "validate",
                            TX_PID,
                            lane,
                            sub as f64 / 1000.0,
                            wall / 1000.0,
                            &[
                                ("verdict", verdict.into()),
                                ("model_ns", model_ns.into()),
                                ("in_flight", in_flight.into()),
                            ],
                        );
                        // Project model-time stage occupancy onto the
                        // wall-clock validation window: CCI transfer
                        // halves bracket the Detector and Manager
                        // stages, scaled by wall/model.
                        let model = model_ns.max(1) as f64;
                        let scale = wall / model;
                        let cci = (model - (detector_ns + manager_ns) as f64).max(0.0);
                        let det_start = sub as f64 + (cci / 2.0) * scale;
                        let det_dur = detector_ns as f64 * scale;
                        let mgr_start = det_start + det_dur;
                        let mgr_dur = manager_ns as f64 * scale;
                        let margs: &[(&str, Arg)] = &[
                            ("lane", lane.into()),
                            ("attempt", e.attempt.into()),
                            ("model_ns", model_ns.into()),
                        ];
                        tb.complete(
                            "detector",
                            "fpga",
                            FPGA_PID,
                            DETECTOR_TID,
                            det_start / 1000.0,
                            det_dur / 1000.0,
                            margs,
                        );
                        tb.complete(
                            "manager",
                            "fpga",
                            FPGA_PID,
                            MANAGER_TID,
                            mgr_start / 1000.0,
                            mgr_dur / 1000.0,
                            margs,
                        );
                    }
                }
                TxEvent::Commit { seq } => {
                    if let Some(b) = begin_ns.take() {
                        tb.complete(
                            "tx",
                            "tx",
                            TX_PID,
                            lane,
                            b as f64 / 1000.0,
                            (e.ns.saturating_sub(b)) as f64 / 1000.0,
                            &[
                                ("outcome", "commit".into()),
                                ("seq", seq.into()),
                                ("attempt", attempt.into()),
                            ],
                        );
                    }
                }
                TxEvent::Abort { kind } => {
                    if let Some(b) = begin_ns.take() {
                        tb.complete(
                            "tx",
                            "tx",
                            TX_PID,
                            lane,
                            b as f64 / 1000.0,
                            (e.ns.saturating_sub(b)) as f64 / 1000.0,
                            &[
                                ("outcome", "abort".into()),
                                ("kind", kind.into()),
                                ("attempt", attempt.into()),
                            ],
                        );
                    }
                }
                TxEvent::Escalated { consecutive_aborts } => tb.instant(
                    "escalated",
                    "anomaly",
                    TX_PID,
                    lane,
                    ts,
                    &[("consecutive_aborts", consecutive_aborts.into())],
                ),
                TxEvent::WalAppend { seq, writes } => tb.instant(
                    "wal-append",
                    "wal",
                    TX_PID,
                    lane,
                    ts,
                    &[("seq", seq.into()), ("writes", writes.into())],
                ),
                TxEvent::WalFsync { records, ns } => tb.complete(
                    "wal-fsync",
                    "wal",
                    TX_PID,
                    lane,
                    (e.ns.saturating_sub(ns)) as f64 / 1000.0,
                    ns as f64 / 1000.0,
                    &[("records", records.into())],
                ),
                TxEvent::Backoff { attempt, delay_ns } => tb.instant(
                    "backoff",
                    "retry",
                    TX_PID,
                    lane,
                    ts,
                    &[("attempt", attempt.into()), ("delay_ns", delay_ns.into())],
                ),
                TxEvent::Fault { kind } => {
                    tb.instant("fault", "fault", TX_PID, lane, ts, &[("kind", kind.into())])
                }
                TxEvent::DurabilityLost => {
                    tb.instant("durability-lost", "anomaly", TX_PID, lane, ts, &[])
                }
                TxEvent::WorkerPanic => {
                    tb.instant("worker-panic", "anomaly", TX_PID, lane, ts, &[])
                }
                TxEvent::ReplShip {
                    first_seq,
                    records,
                    follower,
                } => tb.instant(
                    "repl-ship",
                    "repl",
                    TX_PID,
                    lane,
                    ts,
                    &[
                        ("first_seq", first_seq.into()),
                        ("records", records.into()),
                        ("follower", follower.into()),
                    ],
                ),
                TxEvent::ReplApply {
                    follower,
                    next_seq,
                    records,
                } => tb.instant(
                    "repl-apply",
                    "repl",
                    TX_PID,
                    lane,
                    ts,
                    &[
                        ("follower", follower.into()),
                        ("next_seq", next_seq.into()),
                        ("records", records.into()),
                    ],
                ),
                TxEvent::Failover { epoch, elected } => tb.instant(
                    "failover",
                    "anomaly",
                    TX_PID,
                    lane,
                    ts,
                    &[("epoch", epoch.into()), ("elected", elected.into())],
                ),
                TxEvent::Route { class, path } => tb.instant(
                    "route",
                    "sched",
                    TX_PID,
                    lane,
                    ts,
                    &[("class", class.into()), ("path", path.into())],
                ),
                TxEvent::RouteDefer { class, reason } => tb.instant(
                    "route-defer",
                    "sched",
                    TX_PID,
                    lane,
                    ts,
                    &[("class", class.into()), ("reason", reason.into())],
                ),
                TxEvent::ReadSet { .. } | TxEvent::WriteSet { .. } => {
                    tb.instant(
                        e.event.name(),
                        "tx",
                        TX_PID,
                        lane,
                        ts,
                        &[(
                            "len",
                            match e.event {
                                TxEvent::ReadSet { len } | TxEvent::WriteSet { len } => len.into(),
                                _ => unreachable!(),
                            },
                        )],
                    );
                }
            }
        }
    }
    tb.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn rec(ns: u64, lane: u32, attempt: u64, event: TxEvent) -> EventRecord {
        EventRecord {
            ns,
            lane,
            attempt,
            trace: 0,
            event,
        }
    }

    /// Trace events of a given name as (ts, dur) pairs.
    fn spans(doc: &Json, name: &str) -> Vec<(f64, f64)> {
        doc.get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
            .map(|e| {
                (
                    e.get("ts").unwrap().as_f64().unwrap(),
                    e.get("dur").map(|d| d.as_f64().unwrap()).unwrap_or(0.0),
                )
            })
            .collect()
    }

    #[test]
    fn builder_renders_valid_json() {
        let mut tb = TraceBuilder::new();
        tb.process_name(1, "p");
        tb.thread_name(1, 2, "t \"quoted\"");
        tb.complete("span", "cat", 1, 2, 10.5, 3.25, &[("k", 7u64.into())]);
        tb.instant("mark", "cat", 1, 2, 11.0, &[("s", "v".into())]);
        let doc = Json::parse(&tb.render()).expect("valid JSON");
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn tx_span_overlaps_fpga_stage_slices() {
        let events = vec![
            rec(1_000, 0, 1, TxEvent::Begin),
            rec(
                2_000,
                0,
                1,
                TxEvent::ValidateSubmit {
                    reads: 4,
                    writes: 2,
                },
            ),
            rec(
                8_000,
                0,
                1,
                TxEvent::Verdict {
                    verdict: "commit",
                    model_ns: 3_000,
                    detector_ns: 1_000,
                    manager_ns: 1_000,
                    in_flight: 1,
                },
            ),
            rec(9_000, 0, 1, TxEvent::Commit { seq: 5 }),
        ];
        let doc = Json::parse(&build_tx_trace(&events, &[(0, "w0".into())])).unwrap();
        let tx = spans(&doc, "tx");
        let det = spans(&doc, "detector");
        let mgr = spans(&doc, "manager");
        assert_eq!(tx.len(), 1);
        assert_eq!(det.len(), 1);
        assert_eq!(mgr.len(), 1);
        // Stage slices land inside the wall-clock validate window, which
        // is inside the tx span: genuine overlap on the shared timeline.
        let (tx_ts, tx_dur) = tx[0];
        for (ts, dur) in det.iter().chain(&mgr) {
            assert!(*ts >= tx_ts && ts + dur <= tx_ts + tx_dur + 1e-6);
        }
        // Manager follows detector contiguously.
        assert!((det[0].0 + det[0].1 - mgr[0].0).abs() < 1e-6);
        // Projection preserves det:mgr proportions (1:1 here).
        assert!((det[0].1 - mgr[0].1).abs() < 1e-6);
    }

    #[test]
    fn aborted_attempts_and_instants_render() {
        let events = vec![
            rec(0, 3, 1, TxEvent::Begin),
            rec(500, 3, 1, TxEvent::Abort { kind: "fpga-cycle" }),
            rec(
                600,
                3,
                1,
                TxEvent::Backoff {
                    attempt: 1,
                    delay_ns: 250,
                },
            ),
            rec(700, 3, 2, TxEvent::Begin),
            rec(900, 3, 2, TxEvent::WalAppend { seq: 1, writes: 2 }),
            rec(950, 3, 2, TxEvent::Commit { seq: 1 }),
        ];
        let doc = Json::parse(&build_tx_trace(&events, &[])).unwrap();
        assert_eq!(spans(&doc, "tx").len(), 2);
        assert_eq!(spans(&doc, "backoff").len(), 1);
        assert_eq!(spans(&doc, "wal-append").len(), 1);
    }

    #[test]
    fn flow_events_link_request_across_lanes() {
        let mut events = vec![
            rec(100, 0, 0, TxEvent::Ingress { shard: 1, class: 0 }),
            rec(500, 3, 0, TxEvent::Dequeue { wait_ns: 400 }),
            rec(900, 3, 0, TxEvent::Reply { outcome: "ok" }),
        ];
        for e in &mut events {
            e.trace = 9;
        }
        let doc = Json::parse(&build_tx_trace(&events, &[])).unwrap();
        let flows: Vec<(String, f64)> = doc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("flow"))
            .map(|e| {
                (
                    e.get("ph").unwrap().as_str().unwrap().to_string(),
                    e.get("id").unwrap().as_f64().unwrap(),
                )
            })
            .collect();
        let phases: Vec<&str> = flows.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(phases, ["s", "t", "f"]);
        assert!(flows.iter().all(|&(_, id)| id == 9.0));
        // The ingress/dequeue/reply instants render too.
        assert_eq!(spans(&doc, "ingress").len(), 1);
        assert_eq!(spans(&doc, "dequeue").len(), 1);
        assert_eq!(spans(&doc, "reply").len(), 1);
    }

    #[test]
    fn sub_nanosecond_durations_are_clamped_visible() {
        let mut tb = TraceBuilder::new();
        tb.complete("tiny", "t", 1, 1, 0.0, 0.0, &[]);
        let doc = Json::parse(&tb.render()).unwrap();
        let (_, dur) = spans(&doc, "tiny")[0];
        assert!(dur > 0.0);
    }
}
