//! Model-based property tests: transactional data structures against
//! std-library reference models (sequential runtime).

use proptest::prelude::*;
use rococo_stamp::ds::{TmHashMap, TmList, TmPq, TmQueue, TmSkipList};
use rococo_stm::{atomically, SeqTm, TmConfig, TmSystem};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

fn tm() -> SeqTm {
    SeqTm::with_config(TmConfig {
        heap_words: 1 << 18,
        max_threads: 1,
    })
}

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u64, u64),
    Put(u64, u64),
    Remove(u64),
    Get(u64),
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..50, 0u64..1000).prop_map(|(k, v)| MapOp::Insert(k, v)),
            (0u64..50, 0u64..1000).prop_map(|(k, v)| MapOp::Put(k, v)),
            (0u64..50).prop_map(MapOp::Remove),
            (0u64..50).prop_map(MapOp::Get),
        ],
        0..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn skiplist_matches_btreemap(ops in map_ops()) {
        let tm = tm();
        let sl = TmSkipList::create(tm.heap());
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            atomically(&tm, 0, |tx| {
                match op {
                    MapOp::Insert(k, v) => {
                        let inserted = sl.insert(tx, tm.heap(), k, v)?;
                        let expect = !model.contains_key(&k);
                        assert_eq!(inserted, expect, "insert {k}");
                        if expect {
                            model.insert(k, v);
                        }
                    }
                    MapOp::Put(k, v) => {
                        if sl.update(tx, k, v)? {
                            assert!(model.contains_key(&k));
                            model.insert(k, v);
                        } else {
                            assert!(!model.contains_key(&k));
                        }
                    }
                    MapOp::Remove(k) => {
                        assert_eq!(sl.remove(tx, k)?, model.remove(&k), "remove {k}");
                    }
                    MapOp::Get(k) => {
                        assert_eq!(sl.get(tx, k)?, model.get(&k).copied(), "get {k}");
                    }
                }
                Ok(())
            });
        }
        let entries = atomically(&tm, 0, |tx| sl.entries(tx));
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(entries, expected);
    }

    #[test]
    fn hashmap_matches_btreemap(ops in map_ops()) {
        let tm = tm();
        let map = TmHashMap::create(tm.heap(), 8);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            atomically(&tm, 0, |tx| {
                match op {
                    MapOp::Insert(k, v) => {
                        let inserted = map.insert(tx, tm.heap(), k, v)?;
                        assert_eq!(inserted, !model.contains_key(&k));
                        model.entry(k).or_insert(v);
                    }
                    MapOp::Put(k, v) => {
                        let old = map.put(tx, tm.heap(), k, v)?;
                        assert_eq!(old, model.insert(k, v));
                    }
                    MapOp::Remove(k) => {
                        assert_eq!(map.remove(tx, k)?, model.remove(&k));
                    }
                    MapOp::Get(k) => {
                        assert_eq!(map.get(tx, k)?, model.get(&k).copied());
                    }
                }
                Ok(())
            });
        }
        let mut entries = atomically(&tm, 0, |tx| map.entries(tx));
        entries.sort_unstable();
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(entries, expected);
    }

    #[test]
    fn list_matches_btreemap(ops in map_ops()) {
        let tm = tm();
        let list = TmList::create(tm.heap());
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            atomically(&tm, 0, |tx| {
                match op {
                    MapOp::Insert(k, v) => {
                        let inserted = list.insert_with(tx, tm.heap(), k, v)?;
                        assert_eq!(inserted, !model.contains_key(&k));
                        model.entry(k).or_insert(v);
                    }
                    MapOp::Put(k, v) => {
                        let old = list.put(tx, tm.heap(), k, v)?;
                        assert_eq!(old, model.insert(k, v));
                    }
                    MapOp::Remove(k) => {
                        assert_eq!(list.remove(tx, k)?, model.remove(&k));
                    }
                    MapOp::Get(k) => {
                        assert_eq!(list.get(tx, k)?, model.get(&k).copied());
                    }
                }
                Ok(())
            });
        }
        let entries = atomically(&tm, 0, |tx| list.entries(tx));
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(entries, expected);
    }

    #[test]
    fn queue_matches_vecdeque(ops in prop::collection::vec(prop::option::of(0u64..1000), 0..120)) {
        let tm = tm();
        let q = TmQueue::create(tm.heap(), 32);
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            atomically(&tm, 0, |tx| {
                match op {
                    Some(v) => {
                        let pushed = q.push(tx, v)?;
                        assert_eq!(pushed, model.len() < 32);
                        if pushed {
                            model.push_back(v);
                        }
                    }
                    None => {
                        assert_eq!(q.pop(tx)?, model.pop_front());
                    }
                }
                assert_eq!(q.len(tx)?, model.len() as u64);
                Ok(())
            });
        }
    }

    #[test]
    fn pq_matches_binaryheap(ops in prop::collection::vec(prop::option::of(0u64..1000), 0..120)) {
        let tm = tm();
        let pq = TmPq::create(tm.heap(), 32);
        let mut model: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
        for op in ops {
            atomically(&tm, 0, |tx| {
                match op {
                    Some(k) => {
                        let pushed = pq.push(tx, k, k ^ 0xff)?;
                        assert_eq!(pushed, model.len() < 32);
                        if pushed {
                            model.push(std::cmp::Reverse(k));
                        }
                    }
                    None => {
                        let got = pq.pop_min(tx)?;
                        let want = model.pop().map(|std::cmp::Reverse(k)| (k, k ^ 0xff));
                        assert_eq!(got.map(|(k, _)| k), want.map(|(k, _)| k));
                    }
                }
                Ok(())
            });
        }
    }
}
