//! vacation — a travel-reservation system over ordered-map tables.
//!
//! Three resource tables (cars, flights, rooms) hold `(available, price)`
//! per item id; a customer table tracks per-customer bills. Client tasks
//! are mixes of: **make-reservation** (query several random items per
//! table, reserve the cheapest available one), **update-tables** (reprice
//! random items), and **check-customer** (read a customer's bill). The
//! low/high-contention presets differ in how concentrated the queried id
//! range is, mirroring STAMP's `-q` parameter.

use crate::apps::AppResult;
use crate::ds::{tm_fetch_add, TmSkipList};
use crate::harness::{parallel_phase, partition, Preset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rococo_stm::{atomically, TmSystem};

/// vacation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Items per resource table.
    pub relations: usize,
    /// Number of customers.
    pub customers: usize,
    /// Client tasks to execute.
    pub tasks: usize,
    /// Random item queries per reservation task.
    pub queries_per_task: usize,
    /// Fraction of the id range tasks touch (1.0 = whole table; smaller =
    /// more contention).
    pub query_range: f64,
    /// Percent of tasks that are reservations (the rest split between
    /// repricing and customer checks).
    pub reserve_pct: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Preset sizes; `high_contention` narrows the queried range and
    /// increases the update share, like STAMP's vacation-high.
    pub fn preset(p: Preset, high_contention: bool) -> Self {
        let (query_range, reserve_pct) = if high_contention {
            (0.05, 60)
        } else {
            (0.6, 90)
        };
        match p {
            Preset::Tiny => Self {
                relations: 64,
                customers: 32,
                tasks: 400,
                queries_per_task: 4,
                query_range,
                reserve_pct,
                seed: 0xace,
            },
            Preset::Small => Self {
                relations: 1024,
                customers: 256,
                tasks: 4096,
                queries_per_task: 8,
                query_range,
                reserve_pct,
                seed: 0xace,
            },
            Preset::Paper => Self {
                relations: 8192,
                customers: 1024,
                tasks: 32768,
                queries_per_task: 10,
                query_range,
                reserve_pct,
                seed: 0xace,
            },
        }
    }

    /// Heap words needed.
    pub fn heap_words(&self) -> usize {
        // 3 resource tables + customer table: skip-list nodes are at most
        // 15 words; populated sequentially (no abort leaks), plus slack.
        (3 * self.relations + self.customers) * 16 + 8192
    }
}

const TABLES: usize = 3;

fn pack(avail: u64, price: u64) -> u64 {
    (avail << 32) | price
}

fn unpack(v: u64) -> (u64, u64) {
    (v >> 32, v & 0xffff_ffff)
}

/// Runs vacation on `sys` with `threads` workers.
pub fn run<S: TmSystem>(sys: &S, threads: usize, cfg: &Config) -> AppResult {
    let heap = sys.heap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Populate the tables.
    let tables: Vec<TmSkipList> = (0..TABLES).map(|_| TmSkipList::create(heap)).collect();
    let customers = TmSkipList::create(heap);
    let initial_avail = 10u64;
    {
        use rococo_stm::atomically as setup;
        for table in &tables {
            for id in 0..cfg.relations as u64 {
                let price = rng.gen_range(100..1000u64);
                setup(sys, 0, |tx| {
                    table.insert(tx, heap, id, pack(initial_avail, price))
                });
            }
        }
        for c in 0..cfg.customers as u64 {
            setup(sys, 0, |tx| customers.insert(tx, heap, c, 0));
        }
    }
    // Per-thread audit tallies (a shared counter would serialise every
    // reservation; STAMP's manager keeps no such global).
    let reservations_made = heap.alloc(threads);
    let revenue = heap.alloc(threads);

    let range = ((cfg.relations as f64 * cfg.query_range) as u64).max(2);
    let parallel = parallel_phase(sys, threads, |t| {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64) << 32);
        for task in partition(cfg.tasks, threads, t) {
            let kind = rng.gen_range(0..100u32);
            if kind < cfg.reserve_pct {
                // Make reservation: in each table, query q random ids and
                // reserve the cheapest available.
                let customer = rng.gen_range(0..cfg.customers as u64);
                let ids: Vec<Vec<u64>> = (0..TABLES)
                    .map(|_| {
                        (0..cfg.queries_per_task)
                            .map(|_| rng.gen_range(0..range))
                            .collect()
                    })
                    .collect();
                atomically(sys, t, |tx| {
                    let mut bill = 0u64;
                    let mut booked = 0u64;
                    for (table, ids) in tables.iter().zip(&ids) {
                        let mut best: Option<(u64, u64, u64)> = None; // (price, id, packed)
                        for &id in ids {
                            if let Some(v) = table.get(tx, id)? {
                                let (avail, price) = unpack(v);
                                if avail > 0 && best.is_none_or(|(bp, _, _)| price < bp) {
                                    best = Some((price, id, v));
                                }
                            }
                        }
                        if let Some((price, id, v)) = best {
                            let (avail, _) = unpack(v);
                            table.update(tx, id, pack(avail - 1, price))?;
                            bill += price;
                            booked += 1;
                        }
                    }
                    if booked > 0 {
                        let old = customers.get(tx, customer)?.unwrap_or(0);
                        customers.update(tx, customer, old + bill)?;
                        tm_fetch_add(tx, reservations_made + t, booked)?;
                        tm_fetch_add(tx, revenue + t, bill)?;
                    }
                    Ok(())
                });
            } else if kind < cfg.reserve_pct + (100 - cfg.reserve_pct) / 2 {
                // Update tables: reprice a random item in each table.
                let repricings: Vec<(u64, u64)> = (0..TABLES as u64)
                    .map(|i| (rng.gen_range(0..range), 100 + (task as u64 * 7 + i) % 900))
                    .collect();
                atomically(sys, t, |tx| {
                    for (table, &(id, new_price)) in tables.iter().zip(&repricings) {
                        if let Some(v) = table.get(tx, id)? {
                            let (avail, _) = unpack(v);
                            table.update(tx, id, pack(avail, new_price))?;
                        }
                    }
                    Ok(())
                });
            } else {
                // Check customer: read-only audit of one bill.
                let customer = rng.gen_range(0..cfg.customers as u64);
                atomically(sys, t, |tx| {
                    let _ = customers.get(tx, customer)?;
                    Ok(())
                });
            }
        }
    });

    // Validation: conservation — resources handed out across all tables
    // equal the reservation counter, and billed revenue equals the sum of
    // customer bills.
    let handed_out: u64 = atomically(sys, 0, |tx| {
        let mut total = 0;
        for table in &tables {
            for (_, v) in table.entries(tx)? {
                let (avail, _) = unpack(v);
                total += initial_avail - avail;
            }
        }
        Ok(total)
    });
    let billed: u64 = atomically(sys, 0, |tx| {
        Ok(customers.entries(tx)?.iter().map(|&(_, b)| b).sum())
    });
    let made: u64 = (0..threads)
        .map(|t| heap.load_direct(reservations_made + t))
        .sum();
    let rev: u64 = (0..threads).map(|t| heap.load_direct(revenue + t)).sum();
    let validated = handed_out == made && billed == rev;

    AppResult {
        validated,
        checksum: made.wrapping_mul(31).wrapping_add(rev),
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{RococoTm, SeqTm, TinyStm, TmConfig, TsxHtm};

    #[test]
    fn sequential_validates() {
        for high in [false, true] {
            let cfg = Config::preset(Preset::Tiny, high);
            let tm = SeqTm::with_config(TmConfig {
                heap_words: cfg.heap_words(),
                max_threads: 1,
            });
            let r = run(&tm, 1, &cfg);
            assert!(r.validated, "high={high}");
            assert!(r.checksum > 0, "some reservations must happen");
        }
    }

    #[test]
    fn conservation_holds_concurrently() {
        let cfg = Config::preset(Preset::Tiny, true);
        let mk = TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 4,
        };
        assert!(run(&TinyStm::with_config(mk), 4, &cfg).validated);
        assert!(run(&RococoTm::with_config(mk), 4, &cfg).validated);
        assert!(run(&TsxHtm::with_config(mk), 4, &cfg).validated);
    }
}
