//! ssca2 — Scalable Synthetic Compact Applications 2, kernel 1.
//!
//! The STAMP configuration of SSCA2 exercises kernel 1: constructing a
//! directed multigraph's adjacency structure in parallel. Transactions are
//! tiny — append one edge to a node's adjacency list and bump two counters
//! — and contention is low; the benchmark therefore stresses
//! per-transaction *overhead* (the paper singles it out as the adverse case
//! for out-of-core validation).

use crate::apps::AppResult;
use crate::ds::{tm_fetch_add, TmList};
use crate::harness::{parallel_phase, partition, Preset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rococo_stm::{atomically, TmSystem};

/// ssca2 parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of graph nodes.
    pub nodes: usize,
    /// Number of directed edges (distinct (u, v) pairs).
    pub edges: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Preset sizes.
    pub fn preset(p: Preset) -> Self {
        match p {
            Preset::Tiny => Self {
                nodes: 64,
                edges: 256,
                seed: 0x55ca2,
            },
            Preset::Small => Self {
                nodes: 512,
                edges: 4096,
                seed: 0x55ca2,
            },
            Preset::Paper => Self {
                nodes: 2048,
                edges: 32768,
                seed: 0x55ca2,
            },
        }
    }

    /// Heap words needed.
    pub fn heap_words(&self) -> usize {
        // degrees + weight counter + per-node list sentinels + edge nodes,
        // with generous slack: the bump allocator does not reclaim nodes
        // allocated by aborted (retried) insertions.
        self.nodes + 8 + self.nodes * 3 + self.edges * 3 * 16 + 4096
    }
}

/// Generates `edges` distinct directed edges with weights.
fn generate_edges(cfg: &Config) -> Vec<(u64, u64, u64)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(cfg.edges);
    while out.len() < cfg.edges {
        let u = rng.gen_range(0..cfg.nodes as u64);
        let v = rng.gen_range(0..cfg.nodes as u64);
        if u != v && seen.insert((u, v)) {
            out.push((u, v, rng.gen_range(1..100u64)));
        }
    }
    out
}

/// Runs ssca2 on `sys` with `threads` workers.
pub fn run<S: TmSystem>(sys: &S, threads: usize, cfg: &Config) -> AppResult {
    let heap = sys.heap();
    let edges = generate_edges(cfg);
    let expected_weight: u64 = edges.iter().map(|&(_, _, w)| w).sum();

    // Shared state: per-node degree counters and adjacency lists (like
    // STAMP's kernel 1, there is no global accumulator inside the
    // transactions — that would serialise every edge insertion).
    let degrees: Vec<usize> = (0..cfg.nodes).map(|_| heap.alloc(1)).collect();
    let adjacency: Vec<TmList> = (0..cfg.nodes).map(|_| TmList::create(heap)).collect();

    let parallel = parallel_phase(sys, threads, |t| {
        for &(u, v, w) in &edges[partition(edges.len(), threads, t)] {
            atomically(sys, t, |tx| {
                adjacency[u as usize].insert_with(tx, heap, v, w)?;
                tm_fetch_add(tx, degrees[u as usize], 1)?;
                Ok(())
            });
        }
    });

    // Validation: degree sum equals the edge count, adjacency lists agree
    // with the degrees, and the weight accumulator matches the input.
    let degree_sum: u64 = degrees.iter().map(|&d| heap.load_direct(d)).sum();
    let mut adj_total = 0usize;
    let mut adj_weight = 0u64;
    let mut per_node_consistent = true;
    for (n, list) in adjacency.iter().enumerate() {
        let entries = atomically(sys, 0, |tx| list.entries(tx));
        per_node_consistent &= entries.len() as u64 == heap.load_direct(degrees[n]);
        adj_total += entries.len();
        adj_weight += entries.iter().map(|&(_, w)| w).sum::<u64>();
    }
    let validated = per_node_consistent
        && degree_sum == cfg.edges as u64
        && adj_total == cfg.edges
        && adj_weight == expected_weight;
    AppResult {
        validated,
        checksum: adj_weight,
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{RococoTm, SeqTm, TinyStm, TmConfig, TsxHtm};

    #[test]
    fn sequential_validates() {
        let cfg = Config::preset(Preset::Tiny);
        let tm = SeqTm::with_config(TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 1,
        });
        let r = run(&tm, 1, &cfg);
        assert!(r.validated);
    }

    #[test]
    fn all_systems_agree() {
        let cfg = Config::preset(Preset::Tiny);
        let mk = |_| TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 4,
        };
        let seq = run(
            &SeqTm::with_config(TmConfig {
                heap_words: cfg.heap_words(),
                max_threads: 1,
            }),
            1,
            &cfg,
        );
        let tiny = run(&TinyStm::with_config(mk(())), 4, &cfg);
        let htm = run(&TsxHtm::with_config(mk(())), 4, &cfg);
        let roc = run(&RococoTm::with_config(mk(())), 4, &cfg);
        for r in [&tiny, &htm, &roc] {
            assert!(r.validated);
            assert_eq!(r.checksum, seq.checksum, "deterministic total weight");
        }
    }
}
