//! labyrinth — transactional maze routing (Lee's algorithm).
//!
//! A shared 3-D grid holds cell ownership; each transaction routes one
//! (source, destination) pair: it explores the grid with a breadth-first
//! wavefront **reading cells transactionally** (so the snapshot machinery
//! sees a huge read set — the property Figure 11 highlights for this
//! benchmark), then claims the chosen path by writing every path cell.
//! Two concurrent routes crossing the same cells conflict and one retries
//! against the updated grid.

use crate::apps::AppResult;
use crate::ds::tm_fetch_add;
use crate::harness::{parallel_phase, Preset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rococo_stm::{atomically, Abort, TmSystem, Transaction};
use std::collections::HashMap;
use std::collections::VecDeque;

/// labyrinth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Grid width.
    pub x: usize,
    /// Grid height.
    pub y: usize,
    /// Grid depth (layers).
    pub z: usize,
    /// Number of (source, destination) route requests.
    pub routes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Preset sizes.
    pub fn preset(p: Preset) -> Self {
        match p {
            Preset::Tiny => Self {
                x: 16,
                y: 16,
                z: 2,
                routes: 12,
                seed: 0x1ab1,
            },
            Preset::Small => Self {
                x: 32,
                y: 32,
                z: 3,
                routes: 48,
                seed: 0x1ab1,
            },
            Preset::Paper => Self {
                x: 64,
                y: 64,
                z: 3,
                routes: 128,
                seed: 0x1ab1,
            },
        }
    }

    fn cells(&self) -> usize {
        self.x * self.y * self.z
    }

    /// Heap words needed: the grid plus counters and route flags.
    pub fn heap_words(&self) -> usize {
        self.cells() + self.routes + 64
    }
}

/// Runs labyrinth on `sys` with `threads` workers.
pub fn run<S: TmSystem>(sys: &S, threads: usize, cfg: &Config) -> AppResult {
    let heap = sys.heap();
    let grid = heap.alloc(cfg.cells());
    let routed_flags = heap.alloc(cfg.routes); // route id -> 1 if routed
    let work_counter = heap.alloc(1);
    let failed = heap.alloc(threads); // per-thread failure tallies

    // Endpoints: distinct free cells, pairwise distinct.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut used = std::collections::HashSet::new();
    let mut pick = |rng: &mut StdRng| loop {
        let c = rng.gen_range(0..cfg.cells());
        if used.insert(c) {
            return c;
        }
    };
    let endpoints: Vec<(usize, usize)> = (0..cfg.routes)
        .map(|_| (pick(&mut rng), pick(&mut rng)))
        .collect();
    // Pre-claim every route's endpoints so no other route can pave over
    // them before the owner gets to run.
    for (route, &(src, dst)) in endpoints.iter().enumerate() {
        heap.store_direct(grid + src, route as u64 + 1);
        heap.store_direct(grid + dst, route as u64 + 1);
    }

    let idx_of = |x: usize, y: usize, z: usize| (z * cfg.y + y) * cfg.x + x;
    let coords_of = |i: usize| {
        let x = i % cfg.x;
        let y = (i / cfg.x) % cfg.y;
        let z = i / (cfg.x * cfg.y);
        (x, y, z)
    };
    let neighbours = |i: usize| {
        let (x, y, z) = coords_of(i);
        let mut out = Vec::with_capacity(6);
        if x > 0 {
            out.push(idx_of(x - 1, y, z));
        }
        if x + 1 < cfg.x {
            out.push(idx_of(x + 1, y, z));
        }
        if y > 0 {
            out.push(idx_of(x, y - 1, z));
        }
        if y + 1 < cfg.y {
            out.push(idx_of(x, y + 1, z));
        }
        if z > 0 {
            out.push(idx_of(x, y, z - 1));
        }
        if z + 1 < cfg.z {
            out.push(idx_of(x, y, z + 1));
        }
        out
    };

    // BFS over transactional reads; returns the path if one exists.
    let route_one =
        |tx: &mut <S as TmSystem>::Tx<'_>, route: usize| -> Result<Option<Vec<usize>>, Abort> {
            let (src, dst) = endpoints[route];
            let me = route as u64 + 1;
            let mut parent: HashMap<usize, usize> = HashMap::new();
            let mut queue = VecDeque::from([src]);
            parent.insert(src, src);
            let mut found = false;
            while let Some(cell) = queue.pop_front() {
                if cell == dst {
                    found = true;
                    break;
                }
                for n in neighbours(cell) {
                    if parent.contains_key(&n) {
                        continue;
                    }
                    let owner = tx.read(grid + n)?;
                    if owner == 0 || owner == me {
                        parent.insert(n, cell);
                        queue.push_back(n);
                    }
                }
            }
            if !found {
                return Ok(None);
            }
            let mut path = vec![dst];
            let mut cur = dst;
            while cur != src {
                cur = parent[&cur];
                path.push(cur);
            }
            Ok(Some(path))
        };

    let parallel = parallel_phase(sys, threads, |t| {
        loop {
            // Grab the next route request.
            let route = atomically(sys, t, |tx| tm_fetch_add(tx, work_counter, 1)) - 1;
            if route >= cfg.routes as u64 {
                break;
            }
            let route = route as usize;
            atomically(sys, t, |tx| {
                match route_one(tx, route)? {
                    Some(path) => {
                        for &cell in &path {
                            tx.write(grid + cell, route as u64 + 1)?;
                        }
                        tx.write(routed_flags + route, 1)?;
                    }
                    None => {
                        tm_fetch_add(tx, failed + t, 1)?;
                        tx.write(routed_flags + route, 0)?;
                    }
                }
                Ok(())
            });
        }
    });

    // Validation (host side, after all transactions finished):
    // every routed path's cells are exclusively owned, connected, and
    // contain both endpoints; routed + failed == routes.
    let mut routed = 0u64;
    let mut valid = true;
    for (route, &(src, dst)) in endpoints.iter().enumerate() {
        if heap.load_direct(routed_flags + route) != 1 {
            continue;
        }
        routed += 1;
        let me = route as u64 + 1;
        let cells: Vec<usize> = (0..cfg.cells())
            .filter(|&i| heap.load_direct(grid + i) == me)
            .collect();
        if !cells.contains(&src) || !cells.contains(&dst) {
            valid = false;
            continue;
        }
        // Connectivity within owned cells.
        let set: std::collections::HashSet<usize> = cells.iter().copied().collect();
        let mut seen = std::collections::HashSet::from([src]);
        let mut queue = VecDeque::from([src]);
        while let Some(c) = queue.pop_front() {
            for n in neighbours(c) {
                if set.contains(&n) && seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        if !seen.contains(&dst) {
            valid = false;
        }
    }
    let failed: u64 = (0..threads).map(|t| heap.load_direct(failed + t)).sum();
    let validated = valid && routed + failed == cfg.routes as u64;
    AppResult {
        validated,
        checksum: routed.wrapping_mul(257).wrapping_add(failed),
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{RococoTm, SeqTm, TinyStm, TmConfig};

    #[test]
    fn sequential_routes_and_validates() {
        let cfg = Config::preset(Preset::Tiny);
        let tm = SeqTm::with_config(TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 1,
        });
        let r = run(&tm, 1, &cfg);
        assert!(r.validated);
        assert!(r.checksum > 0, "at least one route must succeed");
    }

    #[test]
    fn concurrent_paths_never_overlap() {
        let cfg = Config::preset(Preset::Tiny);
        let mk = TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 4,
        };
        assert!(run(&TinyStm::with_config(mk), 4, &cfg).validated);
        assert!(run(&RococoTm::with_config(mk), 4, &cfg).validated);
    }
}
