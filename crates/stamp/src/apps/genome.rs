//! genome — gene sequencing: segment deduplication and overlap matching.
//!
//! A random genome over the {A, C, G, T} alphabet is cut into all
//! overlapping windows of `seg_len` characters (bit-packed two bits per
//! character, so a segment is one `u64`). The transactional phases mirror
//! STAMP's:
//!
//! 1. **Deduplication** — every (duplicated) segment is inserted into a
//!    transactional hash set; duplicates are rejected by the set.
//! 2. **Overlap matching** — a prefix index maps each unique segment's
//!    leading `seg_len − 1` characters to the segment; each segment then
//!    looks up the segment whose prefix equals its own suffix and links to
//!    it, claiming the successor transactionally (each segment may be
//!    claimed by exactly one predecessor).
//!
//! With a random genome the `(seg_len − 1)`-mers are unique with
//! overwhelming probability, so the links reconstruct the genome: the
//! validation walks the chain from the unclaimed head segment and compares
//! against the original genome.

use crate::apps::AppResult;
use crate::ds::TmHashMap;
use crate::harness::{parallel_phase, partition, Preset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rococo_stm::{atomically, TmSystem};

/// genome parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Genome length in characters.
    pub genome_len: usize,
    /// Segment window length in characters (≤ 31 so a segment plus flags
    /// packs into a `u64`).
    pub seg_len: usize,
    /// How many times each window is duplicated in the input pool.
    pub duplication: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Preset sizes.
    pub fn preset(p: Preset) -> Self {
        match p {
            Preset::Tiny => Self {
                genome_len: 256,
                seg_len: 24,
                duplication: 3,
                seed: 0x9e40,
            },
            Preset::Small => Self {
                genome_len: 4096,
                seg_len: 24,
                duplication: 4,
                seed: 0x9e40,
            },
            Preset::Paper => Self {
                genome_len: 16384,
                seg_len: 24,
                duplication: 6,
                seed: 0x9e40,
            },
        }
    }

    fn windows(&self) -> usize {
        self.genome_len - self.seg_len + 1
    }

    /// Heap words needed (with slack for nodes leaked by aborted retries).
    pub fn heap_words(&self) -> usize {
        let n = self.windows();
        // Four hash maps worth of sentinels plus node allocations, with
        // an 8x abort-leak margin.
        n * 3 * 4 * 8 + (n / 4).max(16) * 3 * 4 + 8192
    }
}

fn pack_genome(cfg: &Config) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.genome_len).map(|_| rng.gen_range(0..4u8)).collect()
}

fn window_key(genome: &[u8], pos: usize, len: usize) -> u64 {
    genome[pos..pos + len]
        .iter()
        .fold(0u64, |k, &c| (k << 2) | c as u64)
}

/// Runs genome on `sys` with `threads` workers.
pub fn run<S: TmSystem>(sys: &S, threads: usize, cfg: &Config) -> AppResult {
    assert!(
        cfg.seg_len >= 2 && cfg.seg_len <= 31,
        "seg_len out of range"
    );
    let heap = sys.heap();
    let genome = pack_genome(cfg);
    let n_windows = cfg.windows();

    // The duplicated, shuffled segment pool (host side; the "input file").
    let mut pool: Vec<u64> = Vec::with_capacity(n_windows * cfg.duplication);
    for pos in 0..n_windows {
        let key = window_key(&genome, pos, cfg.seg_len);
        for _ in 0..cfg.duplication {
            pool.push(key);
        }
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xdead);
    for i in (1..pool.len()).rev() {
        pool.swap(i, rng.gen_range(0..=i));
    }

    let buckets = (n_windows / 4).max(16);
    let dedup = TmHashMap::create(heap, buckets);
    let prefix_index = TmHashMap::create(heap, buckets);
    // claimed: segment key -> 1 when some predecessor linked to it.
    let claimed = TmHashMap::create(heap, buckets);
    // successor: segment key -> successor key + 1 (0 = end of chain).
    let successor = TmHashMap::create(heap, buckets);

    // Phase 1: deduplication.
    let mut parallel = parallel_phase(sys, threads, |t| {
        for &seg in &pool[partition(pool.len(), threads, t)] {
            atomically(sys, t, |tx| {
                dedup.insert(tx, heap, seg, 1)?;
                Ok(())
            });
        }
    });
    let unique: Vec<u64> = atomically(sys, 0, |tx| {
        Ok(dedup.entries(tx)?.iter().map(|&(k, _)| k).collect())
    });

    // Phase 2a: build the prefix index (prefix = leading seg_len-1 chars).
    parallel += parallel_phase(sys, threads, |t| {
        for &seg in &unique[partition(unique.len(), threads, t)] {
            let prefix = seg >> 2;
            atomically(sys, t, |tx| {
                prefix_index.insert(tx, heap, prefix, seg)?;
                Ok(())
            });
        }
    });

    // Phase 2b: overlap matching — link each segment to the segment whose
    // prefix matches its suffix, claiming the successor exactly once.
    let suffix_mask = (1u64 << (2 * (cfg.seg_len - 1))) - 1;
    parallel += parallel_phase(sys, threads, |t| {
        for &seg in &unique[partition(unique.len(), threads, t)] {
            let suffix = seg & suffix_mask;
            atomically(sys, t, |tx| {
                if let Some(next) = prefix_index.get(tx, suffix)? {
                    if next != seg && claimed.insert(tx, heap, next, seg)? {
                        successor.insert(tx, heap, seg, next + 1)?;
                        return Ok(());
                    }
                }
                successor.insert(tx, heap, seg, 0)?; // chain end / no match
                Ok(())
            });
        }
    });

    // Validation: walk the chain from the head (the segment nobody
    // claimed) and compare with the original genome.
    let (validated, checksum) = atomically(sys, 0, |tx| {
        let mut head = None;
        let mut heads = 0usize;
        for &seg in &unique {
            if claimed.get(tx, seg)?.is_none() {
                heads += 1;
                head = Some(seg);
            }
        }
        let Some(mut cur) = head else {
            return Ok((false, 0));
        };
        // Reconstruct: the head contributes seg_len chars, every link one.
        let mut reconstructed = cfg.seg_len;
        let mut visited = 1usize;
        let mut digest = cur;
        while let Some(nx) = successor.get(tx, cur)? {
            if nx == 0 {
                break;
            }
            cur = nx - 1;
            visited += 1;
            reconstructed += 1;
            digest = digest.wrapping_mul(1099511628211) ^ cur;
        }
        let ok = heads == 1
            && visited == unique.len()
            && reconstructed == cfg.genome_len
            && unique.len() == cfg.windows();
        Ok((ok, digest))
    });

    AppResult {
        validated,
        checksum,
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{RococoTm, SeqTm, TinyStm, TmConfig};

    #[test]
    fn sequential_reconstructs_genome() {
        let cfg = Config::preset(Preset::Tiny);
        let tm = SeqTm::with_config(TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 1,
        });
        let r = run(&tm, 1, &cfg);
        assert!(r.validated);
    }

    #[test]
    fn parallel_systems_reconstruct_identically() {
        let cfg = Config::preset(Preset::Tiny);
        let seq = run(
            &SeqTm::with_config(TmConfig {
                heap_words: cfg.heap_words(),
                max_threads: 1,
            }),
            1,
            &cfg,
        );
        let mk = TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 4,
        };
        for r in [
            run(&TinyStm::with_config(mk), 4, &cfg),
            run(&RococoTm::with_config(mk), 4, &cfg),
        ] {
            assert!(r.validated);
            assert_eq!(r.checksum, seq.checksum, "chain is unique");
        }
    }
}
