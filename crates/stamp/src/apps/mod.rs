//! The STAMP applications (Figure 10's x-axis, `bayes` excluded as in the
//! paper).

pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod ssca2;
pub mod vacation;
pub mod yada;

use crate::harness::Preset;
use rococo_stm::TmSystem;
use serde::{Deserialize, Serialize};

/// A STAMP benchmark configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppId {
    /// Gene sequencing: segment deduplication + overlap matching.
    Genome,
    /// Network intrusion detection: packet reassembly + signature scan.
    Intruder,
    /// K-means clustering, low contention (many clusters).
    KmeansLow,
    /// K-means clustering, high contention (few clusters).
    KmeansHigh,
    /// Maze routing with transactional path claiming.
    Labyrinth,
    /// SSCA2 graph kernel: concurrent adjacency construction.
    Ssca2,
    /// Travel reservations, low contention.
    VacationLow,
    /// Travel reservations, high contention.
    VacationHigh,
    /// Delaunay-style mesh refinement.
    Yada,
}

impl AppId {
    /// All applications in the paper's Figure 10 order.
    pub const ALL: [AppId; 9] = [
        AppId::Genome,
        AppId::Intruder,
        AppId::KmeansHigh,
        AppId::KmeansLow,
        AppId::Labyrinth,
        AppId::Ssca2,
        AppId::VacationHigh,
        AppId::VacationLow,
        AppId::Yada,
    ];

    /// Display name matching the paper's labels.
    pub fn name(&self) -> &'static str {
        match self {
            AppId::Genome => "genome",
            AppId::Intruder => "intruder",
            AppId::KmeansLow => "kmeans-low",
            AppId::KmeansHigh => "kmeans-high",
            AppId::Labyrinth => "labyrinth",
            AppId::Ssca2 => "ssca2",
            AppId::VacationLow => "vacation-low",
            AppId::VacationHigh => "vacation-high",
            AppId::Yada => "yada",
        }
    }
}

impl std::str::FromStr for AppId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AppId::ALL
            .iter()
            .find(|a| a.name() == s)
            .copied()
            .ok_or_else(|| format!("unknown app '{s}'"))
    }
}

/// The self-reported result of one application run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppResult {
    /// Whether the app-specific correctness check passed.
    pub validated: bool,
    /// A digest of the computed result (stable across systems for
    /// deterministic apps).
    pub checksum: u64,
    /// Wall time of the timed parallel phases (setup and validation
    /// excluded) — the quantity STAMP reports.
    pub parallel: std::time::Duration,
}

/// Heap words the app needs at the given preset (used by the harness to
/// size the TM system).
pub fn heap_words(app: AppId, preset: Preset) -> usize {
    match app {
        AppId::Genome => genome::Config::preset(preset).heap_words(),
        AppId::Intruder => intruder::Config::preset(preset).heap_words(),
        AppId::KmeansLow => kmeans::Config::preset(preset, false).heap_words(),
        AppId::KmeansHigh => kmeans::Config::preset(preset, true).heap_words(),
        AppId::Labyrinth => labyrinth::Config::preset(preset).heap_words(),
        AppId::Ssca2 => ssca2::Config::preset(preset).heap_words(),
        AppId::VacationLow => vacation::Config::preset(preset, false).heap_words(),
        AppId::VacationHigh => vacation::Config::preset(preset, true).heap_words(),
        AppId::Yada => yada::Config::preset(preset).heap_words(),
    }
}

/// Runs `app` on `sys` with `threads` workers.
pub fn dispatch<S: TmSystem>(app: AppId, sys: &S, threads: usize, preset: Preset) -> AppResult {
    match app {
        AppId::Genome => genome::run(sys, threads, &genome::Config::preset(preset)),
        AppId::Intruder => intruder::run(sys, threads, &intruder::Config::preset(preset)),
        AppId::KmeansLow => kmeans::run(sys, threads, &kmeans::Config::preset(preset, false)),
        AppId::KmeansHigh => kmeans::run(sys, threads, &kmeans::Config::preset(preset, true)),
        AppId::Labyrinth => labyrinth::run(sys, threads, &labyrinth::Config::preset(preset)),
        AppId::Ssca2 => ssca2::run(sys, threads, &ssca2::Config::preset(preset)),
        AppId::VacationLow => vacation::run(sys, threads, &vacation::Config::preset(preset, false)),
        AppId::VacationHigh => vacation::run(sys, threads, &vacation::Config::preset(preset, true)),
        AppId::Yada => yada::run(sys, threads, &yada::Config::preset(preset)),
    }
}
