//! kmeans — iterative clustering with transactional centroid accumulation.
//!
//! Points are partitioned across threads; each point's nearest centre is
//! computed from a read-only copy of the centres, then a transaction folds
//! the point into the chosen centre's accumulator (count + per-dimension
//! sums). Contention is governed by the number of clusters: STAMP's
//! "high-contention" configuration uses few clusters so threads collide on
//! the same accumulators, the "low-contention" one uses many.
//!
//! Coordinates are fixed-point (`×1024`) so accumulators live in integer
//! heap words.

use crate::apps::AppResult;
use crate::ds::tm_fetch_add;
use crate::harness::{parallel_phase, partition, Preset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rococo_stm::{atomically, TmSystem};
use std::sync::atomic::{AtomicBool, Ordering};

/// kmeans parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of points.
    pub points: usize,
    /// Dimensions per point.
    pub dims: usize,
    /// Number of clusters (few = high contention).
    pub clusters: usize,
    /// Lloyd iterations.
    pub iterations: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Preset sizes; `high_contention` selects the cluster count.
    pub fn preset(p: Preset, high_contention: bool) -> Self {
        let clusters = if high_contention { 4 } else { 40 };
        match p {
            Preset::Tiny => Self {
                points: 256,
                dims: 4,
                clusters,
                iterations: 3,
                seed: 0x33ea5,
            },
            Preset::Small => Self {
                points: 4096,
                dims: 8,
                clusters,
                iterations: 5,
                seed: 0x33ea5,
            },
            Preset::Paper => Self {
                points: 16384,
                dims: 16,
                clusters,
                iterations: 8,
                seed: 0x33ea5,
            },
        }
    }

    /// Heap words needed: per-cluster accumulators (count + dims sums).
    pub fn heap_words(&self) -> usize {
        self.clusters * (1 + self.dims) + 64
    }
}

/// Fixed-point scale.
const FP: u64 = 1024;

fn nearest(point: &[u64], centres: &[Vec<u64>]) -> usize {
    let mut best = 0usize;
    let mut best_d = u64::MAX;
    for (c, centre) in centres.iter().enumerate() {
        let d: u64 = point
            .iter()
            .zip(centre)
            .map(|(&a, &b)| {
                let diff = a.abs_diff(b);
                (diff / 32).saturating_mul(diff / 32) // scaled to avoid overflow
            })
            .sum();
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Runs kmeans on `sys` with `threads` workers.
pub fn run<S: TmSystem>(sys: &S, threads: usize, cfg: &Config) -> AppResult {
    let heap = sys.heap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let points: Vec<Vec<u64>> = (0..cfg.points)
        .map(|_| (0..cfg.dims).map(|_| rng.gen_range(0..100 * FP)).collect())
        .collect();

    // Per-cluster accumulator block: [count, sum_0, ..., sum_{d-1}].
    let acc: Vec<usize> = (0..cfg.clusters)
        .map(|_| heap.alloc(1 + cfg.dims))
        .collect();

    // Initial centres: the first k points.
    let mut centres: Vec<Vec<u64>> = points.iter().take(cfg.clusters).cloned().collect();
    let valid = AtomicBool::new(true);
    let mut parallel = std::time::Duration::ZERO;

    for _iter in 0..cfg.iterations {
        for &a in &acc {
            for d in 0..=cfg.dims {
                heap.store_direct(a + d, 0);
            }
        }
        let centres_ref = &centres;
        let acc_ref = &acc;
        let points_ref = &points;
        parallel += parallel_phase(sys, threads, |t| {
            for p in partition(points_ref.len(), threads, t) {
                let point = &points_ref[p];
                let c = nearest(point, centres_ref);
                atomically(sys, t, |tx| {
                    tm_fetch_add(tx, acc_ref[c], 1)?;
                    for (d, &coord) in point.iter().enumerate() {
                        tm_fetch_add(tx, acc_ref[c] + 1 + d, coord)?;
                    }
                    Ok(())
                });
            }
        });

        // Sequential reduction: recompute centres, check the invariant.
        let total: u64 = acc.iter().map(|&a| heap.load_direct(a)).sum();
        if total != cfg.points as u64 {
            valid.store(false, Ordering::SeqCst);
        }
        for (c, &a) in acc.iter().enumerate() {
            let count = heap.load_direct(a);
            if count == 0 {
                continue;
            }
            for (d, centre) in centres[c].iter_mut().enumerate().take(cfg.dims) {
                *centre = heap.load_direct(a + 1 + d) / count;
            }
        }
    }

    // Checksum: assignment histogram of the final centres (deterministic
    // given the same centre trajectory; identical across systems because
    // the reduction is exact integer arithmetic).
    let mut hist = vec![0u64; cfg.clusters];
    for p in &points {
        hist[nearest(p, &centres)] += 1;
    }
    let checksum = hist
        .iter()
        .fold(0u64, |h, &c| h.wrapping_mul(1099511628211).wrapping_add(c));

    AppResult {
        validated: valid.load(Ordering::SeqCst),
        checksum,
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{RococoTm, SeqTm, TinyStm, TmConfig};

    #[test]
    fn sequential_validates() {
        let cfg = Config::preset(Preset::Tiny, true);
        let tm = SeqTm::with_config(TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 1,
        });
        assert!(run(&tm, 1, &cfg).validated);
    }

    #[test]
    fn parallel_matches_sequential_checksum() {
        for high in [false, true] {
            let cfg = Config::preset(Preset::Tiny, high);
            let seq = run(
                &SeqTm::with_config(TmConfig {
                    heap_words: cfg.heap_words(),
                    max_threads: 1,
                }),
                1,
                &cfg,
            );
            let mk = TmConfig {
                heap_words: cfg.heap_words(),
                max_threads: 4,
            };
            for r in [
                run(&TinyStm::with_config(mk), 4, &cfg),
                run(&RococoTm::with_config(mk), 4, &cfg),
            ] {
                assert!(r.validated);
                assert_eq!(
                    r.checksum, seq.checksum,
                    "high={high}: integer accumulation is order-independent"
                );
            }
        }
    }
}
