//! yada — Delaunay-style mesh refinement (Ruppert's algorithm, scaled).
//!
//! A pool of triangles carries alive/bad flags and three neighbour links.
//! Worker transactions pop a bad triangle from a shared priority queue,
//! gather its *cavity* (the triangle plus its alive neighbours), kill the
//! cavity and retriangulate it with freshly allocated triangles, splicing
//! the boundary neighbours onto the new triangles. A deterministic hash
//! decides whether a new triangle is itself bad (bounded by a generation
//! cap so refinement terminates). Concurrent cavities that share a
//! boundary triangle conflict — the signature workload shape of STAMP's
//! yada.
//!
//! Compared to STAMP, the geometry is abstracted away (no coordinates /
//! circumcircles); the transactional structure — cavity reads, multi-node
//! writes, work-queue recycling — is preserved. See DESIGN.md.

use crate::apps::AppResult;
use crate::ds::{tm_fetch_add, TmPq};
use crate::harness::{parallel_phase, Preset};
use rococo_stm::{atomically, Abort, Addr, TmSystem, Transaction};
use std::sync::atomic::{AtomicU64, Ordering};

/// yada parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Initial triangles (arranged in a strip).
    pub initial: usize,
    /// Fraction (1/n) of initial triangles seeded as bad.
    pub bad_one_in: usize,
    /// Maximum refinement generation (bounds the cascade).
    pub max_generation: u64,
    /// Triangle-pool capacity (initial + refinements).
    pub capacity: usize,
}

impl Config {
    /// Preset sizes.
    pub fn preset(p: Preset) -> Self {
        match p {
            Preset::Tiny => Self {
                initial: 128,
                bad_one_in: 4,
                max_generation: 3,
                capacity: 4096,
            },
            Preset::Small => Self {
                initial: 1024,
                bad_one_in: 4,
                max_generation: 4,
                capacity: 65536,
            },
            Preset::Paper => Self {
                initial: 4096,
                bad_one_in: 3,
                max_generation: 5,
                capacity: 1 << 19,
            },
        }
    }

    /// Heap words needed.
    pub fn heap_words(&self) -> usize {
        self.capacity * REC + self.capacity * 2 + 4096
    }
}

// Triangle record layout: [alive, bad|generation<<1, n0, n1, n2] where a
// neighbour link holds id + 1 (0 = no neighbour).
const ALIVE: usize = 0;
const FLAGS: usize = 1;
const N0: usize = 2;
const REC: usize = 5;

fn is_bad_hash(id: u64) -> bool {
    id.wrapping_mul(0x9e3779b97f4a7c15)
        .rotate_left(17)
        .is_multiple_of(3)
}

/// Runs yada on `sys` with `threads` workers.
pub fn run<S: TmSystem>(sys: &S, threads: usize, cfg: &Config) -> AppResult {
    let heap = sys.heap();
    let pool = heap.alloc(cfg.capacity * REC);
    let rec = |id: u64| -> Addr { pool + (id as usize) * REC };

    // Fresh triangle ids come from a non-transactional allocator (like
    // malloc in STAMP: an aborted cavity leaks its ids, which is safe).
    let next_id = AtomicU64::new(0);
    // Per-thread ledgers: created/killed/pending tallies live in
    // thread-private words so the bookkeeping does not serialise
    // concurrent cavities; sums are taken read-only.
    let created = heap.alloc(threads);
    let killed = heap.alloc(threads);
    let pending = heap.alloc(threads);
    let work = TmPq::create(heap, cfg.capacity);

    // Build the initial strip: triangle i neighbours i-1 and i+1.
    let mut seeded = 0u64;
    for i in 0..cfg.initial as u64 {
        let r = rec(i);
        heap.store_direct(r + ALIVE, 1);
        let bad = u64::from(i % cfg.bad_one_in as u64 == 0);
        heap.store_direct(r + FLAGS, bad); // generation 0
        let left = if i == 0 { 0 } else { i }; // id-1 + 1
        let right = if i + 1 == cfg.initial as u64 {
            0
        } else {
            i + 2
        };
        heap.store_direct(r + N0, left);
        heap.store_direct(r + N0 + 1, right);
        heap.store_direct(r + N0 + 2, 0);
        seeded += bad;
    }
    next_id.store(cfg.initial as u64, Ordering::SeqCst);
    heap.store_direct(pending, seeded); // thread 0's slot carries the seed
    for i in 0..cfg.initial as u64 {
        if i % cfg.bad_one_in as u64 == 0 {
            let pushed = atomically(sys, 0, |tx| work.push(tx, i, i));
            assert!(pushed, "work heap sized for the whole pool");
        }
    }

    // One refinement step. Returns 0 when the queue is empty and nothing
    // is pending (global termination), 1 when an item was processed, and
    // 2 when the queue was momentarily empty but other threads still hold
    // pending work.
    let refine = |tx: &mut <S as TmSystem>::Tx<'_>, t: usize| -> Result<u8, Abort> {
        let Some((_, id)) = work.pop_min(tx)? else {
            let mut outstanding = 0u64;
            for slot in 0..threads {
                outstanding = outstanding.wrapping_add(tx.read(pending + slot)?);
            }
            return Ok(if outstanding > 0 { 2 } else { 0 });
        };
        let r = rec(id);
        let alive = tx.read(r + ALIVE)?;
        let flags = tx.read(r + FLAGS)?;
        if alive == 0 || flags & 1 == 0 {
            // Stale work item: the triangle was consumed by another cavity.
            tm_fetch_add(tx, pending + t, u64::MAX)?; // -1 (sums wrap safely)
            return Ok(1);
        }
        let generation = flags >> 1;

        // Gather the cavity: this triangle + alive neighbours; remember
        // the boundary (the neighbours' other links).
        let mut cavity = vec![id];
        let mut boundary = Vec::new();
        for slot in 0..3usize {
            let link = tx.read(r + N0 + slot)?;
            if link == 0 {
                continue;
            }
            let nb = link - 1;
            let nrec = rec(nb);
            if tx.read(nrec + ALIVE)? == 1 {
                cavity.push(nb);
                for s2 in 0..3usize {
                    let l2 = tx.read(nrec + N0 + s2)?;
                    if l2 != 0 && l2 - 1 != id && !cavity.contains(&(l2 - 1)) {
                        boundary.push(l2 - 1);
                    }
                }
            }
        }

        // Kill the cavity.
        for &c in &cavity {
            tx.write(rec(c) + ALIVE, 0)?;
            tx.write(rec(c) + FLAGS, 0)?;
        }
        tm_fetch_add(tx, killed + t, cavity.len() as u64)?;

        // Retriangulate: one new triangle per cavity member plus one,
        // chained linearly, with boundary links spliced on.
        let n_new = cavity.len() as u64 + 1;
        let base = next_id.fetch_add(n_new, Ordering::SeqCst);
        if base + n_new >= cfg.capacity as u64 {
            // Pool exhausted: stop refining this branch.
            tm_fetch_add(tx, pending + t, u64::MAX)?;
            return Ok(1);
        }
        let mut new_bad = 0u64;
        for k in 0..n_new {
            let nid = base + k;
            let nr = rec(nid);
            tx.write(nr + ALIVE, 1)?;
            let bad = generation + 1 < cfg.max_generation && is_bad_hash(nid);
            let flags = ((generation + 1) << 1) | u64::from(bad);
            tx.write(nr + FLAGS, flags)?;
            // Chain links to new siblings.
            let left = if k == 0 { 0 } else { base + k };
            let right = if k + 1 == n_new { 0 } else { base + k + 2 };
            tx.write(nr + N0, left)?;
            tx.write(nr + N0 + 1, right)?;
            // Splice one boundary neighbour, round-robin.
            let b = boundary.get(k as usize).copied();
            tx.write(nr + N0 + 2, b.map_or(0, |x| x + 1))?;
            if let Some(bn) = b {
                // Update the boundary triangle's link that pointed into
                // the cavity to point at this new triangle.
                let brec = rec(bn);
                for s in 0..3usize {
                    let l = tx.read(brec + N0 + s)?;
                    if l != 0 && cavity.contains(&(l - 1)) {
                        tx.write(brec + N0 + s, nid + 1)?;
                        break;
                    }
                }
            }
            if bad && work.push(tx, nid, nid)? {
                new_bad += 1;
            }
        }
        tm_fetch_add(tx, created + t, n_new)?;
        // pending += new_bad - 1 (this item done).
        tm_fetch_add(tx, pending + t, new_bad.wrapping_sub(1))?;
        Ok(1)
    };

    let parallel = parallel_phase(sys, threads, |t| loop {
        match atomically(sys, t, |tx| refine(tx, t)) {
            0 => break,
            1 => {}
            _ => std::thread::yield_now(),
        }
    });

    // Validation: alive count matches the ledger and no alive triangle
    // links to a dead one (boundary splicing kept the mesh consistent)...
    // links to dead triangles may legitimately remain where a cavity
    // neighbour was not on any boundary slot; what must hold is the
    // ledger: alive == initial + created - killed, and no bad alive
    // triangles remain below the generation cap.
    let total = next_id.load(Ordering::SeqCst).min(cfg.capacity as u64);
    let mut alive_count = 0u64;
    let mut bad_left = 0u64;
    for id in 0..total {
        let r = rec(id);
        if heap.load_direct(r + ALIVE) == 1 {
            alive_count += 1;
            if heap.load_direct(r + FLAGS) & 1 == 1 {
                bad_left += 1;
            }
        }
    }
    let created_v: u64 = (0..threads).map(|t| heap.load_direct(created + t)).sum();
    let killed_v: u64 = (0..threads).map(|t| heap.load_direct(killed + t)).sum();
    let pending_v: u64 = (0..threads).fold(0u64, |acc, t| {
        acc.wrapping_add(heap.load_direct(pending + t))
    });
    let validated =
        alive_count == cfg.initial as u64 + created_v - killed_v && bad_left == 0 && pending_v == 0;
    AppResult {
        validated,
        checksum: created_v.wrapping_mul(31).wrapping_add(killed_v),
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{RococoTm, SeqTm, TinyStm, TmConfig};

    #[test]
    fn sequential_refines_to_completion() {
        let cfg = Config::preset(Preset::Tiny);
        let tm = SeqTm::with_config(TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 1,
        });
        let r = run(&tm, 1, &cfg);
        assert!(r.validated);
        assert!(r.checksum > 0, "refinement must do work");
    }

    #[test]
    fn concurrent_refinement_keeps_ledger() {
        let cfg = Config::preset(Preset::Tiny);
        let mk = TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 4,
        };
        assert!(run(&TinyStm::with_config(mk), 4, &cfg).validated);
        assert!(run(&RococoTm::with_config(mk), 4, &cfg).validated);
    }
}
