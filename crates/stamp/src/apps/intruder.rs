//! intruder — network intrusion detection: capture, reassembly, detection.
//!
//! Fragmented flows arrive interleaved on a shared packet queue. Worker
//! transactions pop a fragment (capture), fold it into the flow's
//! reassembly record (a transactional map from flow id to received-count
//! and payload digest), and when the flow completes, run the detector on
//! the digest and record any attack. Conflicts arise on the shared queue
//! head and on flows whose fragments land in different threads — STAMP's
//! intruder is dominated by exactly these small, hot transactions.

use crate::apps::AppResult;
use crate::ds::{tm_fetch_add, TmHashMap, TmQueue};
use crate::harness::{parallel_phase, Preset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rococo_stm::{atomically, TmSystem};

/// intruder parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of flows.
    pub flows: usize,
    /// Fragments per flow.
    pub frags_per_flow: usize,
    /// Percent of flows carrying an attack payload.
    pub attack_pct: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Preset sizes.
    pub fn preset(p: Preset) -> Self {
        match p {
            Preset::Tiny => Self {
                flows: 64,
                frags_per_flow: 4,
                attack_pct: 10,
                seed: 0x17d3,
            },
            Preset::Small => Self {
                flows: 1024,
                frags_per_flow: 8,
                attack_pct: 10,
                seed: 0x17d3,
            },
            Preset::Paper => Self {
                flows: 8192,
                frags_per_flow: 16,
                attack_pct: 10,
                seed: 0x17d3,
            },
        }
    }

    fn total_frags(&self) -> usize {
        self.flows * self.frags_per_flow
    }

    /// Heap words needed (with slack for nodes leaked by aborted retries).
    pub fn heap_words(&self) -> usize {
        self.total_frags() + self.flows * 3 * 2 * 16 + self.flows * 4 + 8192
    }
}

/// A fragment encodes (flow id, payload piece) in one word.
fn encode(flow: u64, piece: u64) -> u64 {
    (flow << 32) | (piece & 0xffff_ffff)
}

fn decode(word: u64) -> (u64, u64) {
    (word >> 32, word & 0xffff_ffff)
}

/// Runs intruder on `sys` with `threads` workers.
pub fn run<S: TmSystem>(sys: &S, threads: usize, cfg: &Config) -> AppResult {
    let heap = sys.heap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Build flows: each flow's payload pieces XOR to its digest; attack
    // flows are marked by digest bit 0 (steered by construction).
    let mut fragments = Vec::with_capacity(cfg.total_frags());
    let mut expected_attacks = 0u64;
    for flow in 0..cfg.flows as u64 {
        let attack = rng.gen_range(0u32..100) < cfg.attack_pct;
        if attack {
            expected_attacks += 1;
        }
        let mut digest = 0u64;
        let mut pieces: Vec<u64> = (0..cfg.frags_per_flow - 1)
            .map(|_| {
                let p = rng.gen_range(0..1u64 << 31) << 1;
                digest ^= p;
                p
            })
            .collect();
        // Final piece steers the digest's low bit: 1 marks an attack.
        let last = digest ^ u64::from(attack);
        pieces.push(last & 0xffff_ffff);
        for piece in pieces {
            fragments.push(encode(flow, piece));
        }
    }
    // Shuffle so fragments of a flow interleave across the stream.
    for i in (1..fragments.len()).rev() {
        fragments.swap(i, rng.gen_range(0..=i));
    }

    // Shared state.
    let queue = TmQueue::create(heap, cfg.total_frags() + 1);
    for &f in &fragments {
        let pushed = atomically(sys, 0, |tx| queue.push(tx, f));
        assert!(pushed, "prefill cannot overflow");
    }
    // flow id -> received count; flow id -> digest accumulator.
    let counts = TmHashMap::create(heap, (cfg.flows / 2).max(16));
    let digests = TmHashMap::create(heap, (cfg.flows / 2).max(16));
    // Per-thread tallies: a single global counter would serialise every
    // completing flow.
    let completed = heap.alloc(threads);
    let detected = heap.alloc(threads);

    let frags = cfg.frags_per_flow as u64;
    let parallel = parallel_phase(sys, threads, |t| {
        loop {
            let done = atomically(sys, t, |tx| {
                // Capture.
                let Some(word) = queue.pop(tx)? else {
                    return Ok(true);
                };
                let (flow, piece) = decode(word);
                // Reassembly.
                let got = counts.get(tx, flow)?.unwrap_or(0) + 1;
                counts.put(tx, heap, flow, got)?;
                let digest = digests.get(tx, flow)?.unwrap_or(0) ^ piece;
                digests.put(tx, heap, flow, digest)?;
                // Detection on the completed flow.
                if got == frags {
                    tm_fetch_add(tx, completed + t, 1)?;
                    if digest & 1 == 1 {
                        tm_fetch_add(tx, detected + t, 1)?;
                    }
                }
                Ok(false)
            });
            if done {
                break;
            }
        }
    });

    let completed: u64 = (0..threads).map(|t| heap.load_direct(completed + t)).sum();
    let detected: u64 = (0..threads).map(|t| heap.load_direct(detected + t)).sum();
    let validated = completed == cfg.flows as u64 && detected == expected_attacks;
    AppResult {
        validated,
        checksum: detected.wrapping_mul(65599).wrapping_add(completed),
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{RococoTm, SeqTm, TinyStm, TmConfig, TsxHtm};

    #[test]
    fn sequential_detects_all_attacks() {
        let cfg = Config::preset(Preset::Tiny);
        let tm = SeqTm::with_config(TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 1,
        });
        let r = run(&tm, 1, &cfg);
        assert!(r.validated);
    }

    #[test]
    fn concurrent_reassembly_is_exact() {
        let cfg = Config::preset(Preset::Tiny);
        let seq = run(
            &SeqTm::with_config(TmConfig {
                heap_words: cfg.heap_words(),
                max_threads: 1,
            }),
            1,
            &cfg,
        );
        let mk = TmConfig {
            heap_words: cfg.heap_words(),
            max_threads: 4,
        };
        for r in [
            run(&TinyStm::with_config(mk), 4, &cfg),
            run(&TsxHtm::with_config(mk), 4, &cfg),
            run(&RococoTm::with_config(mk), 4, &cfg),
        ] {
            assert!(r.validated);
            assert_eq!(r.checksum, seq.checksum);
        }
    }
}
