//! A Rust port of the STAMP benchmark suite over the TM-generic interface
//! of `rococo-stm`.
//!
//! The paper evaluates ROCoCoTM with STAMP (Stanford Transactional
//! Applications for Multi-Processing) [Minh et al., IISWC'08], excluding
//! `bayes` "due to its high variability" — this port does the same. Every
//! application is written against [`rococo_stm::TmSystem`], so one code
//! base runs on ROCoCoTM, the TinySTM baseline, the TSX-style HTM
//! emulation, and the sequential reference used as the speedup baseline.
//!
//! Two layers:
//!
//! * [`ds`] — transactional data structures laid out on the word-addressed
//!   [`TmHeap`](rococo_stm::TmHeap): sorted list, hash map, deterministic
//!   skip list (standing in for STAMP's red-black tree — same `O(log n)`
//!   transactional footprint), queue and binary heap.
//! * [`apps`] — the eight benchmark configurations of Figure 10: `genome`,
//!   `intruder`, `kmeans` (low/high contention), `labyrinth`, `ssca2`,
//!   `vacation` (low/high contention) and `yada`, each with scaled input
//!   presets and a self-validation check.
//!
//! The [`harness`] module runs an application on a named TM system and
//! thread count, producing the statistics Figure 10 plots.
//!
//! # Example
//!
//! ```
//! use rococo_stamp::harness::{run, Preset, SystemKind};
//! use rococo_stamp::apps::AppId;
//!
//! let outcome = run(AppId::Ssca2, SystemKind::Rococo, 2, Preset::Tiny);
//! assert!(outcome.validated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod ds;
pub mod harness;
