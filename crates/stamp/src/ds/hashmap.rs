//! A fixed-bucket chained transactional hash map.

use crate::ds::list::TmList;
use rococo_stm::{Abort, TmHeap, Transaction};

/// A hash map from `u64` keys to `u64` values with a fixed number of
/// bucket lists. Concurrent transactions on different buckets never
/// conflict.
#[derive(Debug, Clone)]
pub struct TmHashMap {
    buckets: Vec<TmList>,
}

impl TmHashMap {
    /// Allocates an empty map with `n_buckets` buckets (non-transactional).
    ///
    /// # Panics
    ///
    /// Panics if `n_buckets == 0`.
    pub fn create(heap: &TmHeap, n_buckets: usize) -> Self {
        assert!(n_buckets > 0, "need at least one bucket");
        Self {
            buckets: (0..n_buckets).map(|_| TmList::create(heap)).collect(),
        }
    }

    fn bucket(&self, key: u64) -> &TmList {
        // Fibonacci hashing spreads sequential keys across buckets.
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        &self.buckets[(h as usize) % self.buckets.len()]
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Inserts `key → val`; `false` if the key already existed.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn insert<T: Transaction>(
        &self,
        tx: &mut T,
        heap: &TmHeap,
        key: u64,
        val: u64,
    ) -> Result<bool, Abort> {
        self.bucket(key).insert_with(tx, heap, key, val)
    }

    /// Inserts or overwrites `key → val`, returning the previous value.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn put<T: Transaction>(
        &self,
        tx: &mut T,
        heap: &TmHeap,
        key: u64,
        val: u64,
    ) -> Result<Option<u64>, Abort> {
        self.bucket(key).put(tx, heap, key, val)
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get<T: Transaction>(&self, tx: &mut T, key: u64) -> Result<Option<u64>, Abort> {
        self.bucket(key).get(tx, key)
    }

    /// Removes `key`, returning its value if present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn remove<T: Transaction>(&self, tx: &mut T, key: u64) -> Result<Option<u64>, Abort> {
        self.bucket(key).remove(tx, key)
    }

    /// Collects every `(key, value)` pair (bucket by bucket; key order
    /// within buckets only). Sequential verification helper.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn entries<T: Transaction>(&self, tx: &mut T) -> Result<Vec<(u64, u64)>, Abort> {
        let mut out = Vec::new();
        for b in &self.buckets {
            out.extend(b.entries(tx)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{atomically, RococoTm, SeqTm, TmConfig, TmSystem};
    use std::sync::Arc;

    #[test]
    fn basic_map_operations() {
        let tm = SeqTm::with_config(TmConfig {
            heap_words: 1 << 14,
            max_threads: 1,
        });
        let map = TmHashMap::create(tm.heap(), 16);
        atomically(&tm, 0, |tx| {
            for k in 0..100u64 {
                assert!(map.insert(tx, tm.heap(), k, k * 2)?);
            }
            assert!(!map.insert(tx, tm.heap(), 50, 0)?);
            assert_eq!(map.get(tx, 50)?, Some(100));
            assert_eq!(map.remove(tx, 50)?, Some(100));
            assert_eq!(map.get(tx, 50)?, None);
            assert_eq!(map.entries(tx)?.len(), 99);
            Ok(())
        });
    }

    #[test]
    fn concurrent_inserts_all_land() {
        let tm = Arc::new(RococoTm::with_config(TmConfig {
            heap_words: 1 << 16,
            max_threads: 4,
        }));
        let map = Arc::new(TmHashMap::create(tm.heap(), 64));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let tm = tm.clone();
            let map = map.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let key = t * 1000 + i;
                    atomically(&*tm, t as usize, |tx| {
                        map.insert(tx, tm.heap(), key, key)?;
                        Ok(())
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        atomically(&*tm, 0, |tx| {
            assert_eq!(map.entries(tx)?.len(), 1000);
            Ok(())
        });
    }
}
