//! A bounded transactional FIFO queue.

use rococo_stm::{Abort, Addr, TmHeap, Transaction};

// Layout: [head, tail, cap, data...]; head/tail are monotonically
// increasing counters, slot = counter % cap.
const HEAD: usize = 0;
const TAIL: usize = 1;
const CAP: usize = 2;
const DATA: usize = 3;

/// A bounded FIFO queue of `u64` values (packet/work queues of `intruder`
/// and `labyrinth`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmQueue {
    base: Addr,
}

impl TmQueue {
    /// Allocates an empty queue with capacity `cap` (non-transactional).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn create(heap: &TmHeap, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        let base = heap.alloc(DATA + cap);
        heap.store_direct(base + CAP, cap as u64);
        Self { base }
    }

    /// Enqueues `val`; returns `false` if the queue is full.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn push<T: Transaction>(&self, tx: &mut T, val: u64) -> Result<bool, Abort> {
        let head = tx.read(self.base + HEAD)?;
        let tail = tx.read(self.base + TAIL)?;
        let cap = tx.read(self.base + CAP)?;
        if tail - head >= cap {
            return Ok(false);
        }
        tx.write(self.base + DATA + (tail % cap) as usize, val)?;
        tx.write(self.base + TAIL, tail + 1)?;
        Ok(true)
    }

    /// Dequeues the oldest value, if any.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn pop<T: Transaction>(&self, tx: &mut T) -> Result<Option<u64>, Abort> {
        let head = tx.read(self.base + HEAD)?;
        let tail = tx.read(self.base + TAIL)?;
        if head == tail {
            return Ok(None);
        }
        let cap = tx.read(self.base + CAP)?;
        let val = tx.read(self.base + DATA + (head % cap) as usize)?;
        tx.write(self.base + HEAD, head + 1)?;
        Ok(Some(val))
    }

    /// Number of queued values.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<T: Transaction>(&self, tx: &mut T) -> Result<u64, Abort> {
        Ok(tx.read(self.base + TAIL)? - tx.read(self.base + HEAD)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{atomically, SeqTm, TinyStm, TmConfig, TmSystem};
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let tm = SeqTm::with_config(TmConfig {
            heap_words: 64,
            max_threads: 1,
        });
        let q = TmQueue::create(tm.heap(), 4);
        atomically(&tm, 0, |tx| {
            assert_eq!(q.pop(tx)?, None);
            assert!(q.push(tx, 1)?);
            assert!(q.push(tx, 2)?);
            assert_eq!(q.len(tx)?, 2);
            assert_eq!(q.pop(tx)?, Some(1));
            assert_eq!(q.pop(tx)?, Some(2));
            assert_eq!(q.pop(tx)?, None);
            Ok(())
        });
    }

    #[test]
    fn full_queue_rejects() {
        let tm = SeqTm::with_config(TmConfig {
            heap_words: 64,
            max_threads: 1,
        });
        let q = TmQueue::create(tm.heap(), 2);
        atomically(&tm, 0, |tx| {
            assert!(q.push(tx, 1)?);
            assert!(q.push(tx, 2)?);
            assert!(!q.push(tx, 3)?);
            q.pop(tx)?;
            assert!(q.push(tx, 3)?, "wraparound after pop");
            Ok(())
        });
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        let tm = Arc::new(TinyStm::with_config(TmConfig {
            heap_words: 4096,
            max_threads: 8,
        }));
        let q = TmQueue::create(tm.heap(), 1024);
        let produced_per_thread = 300u64;
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..produced_per_thread {
                    loop {
                        let ok = atomically(&*tm, t as usize, |tx| q.push(tx, t * 1_000 + i));
                        if ok {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for t in 4..8u64 {
            let tm = tm.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < (produced_per_thread as usize) {
                    if let Some(v) = atomically(&*tm, t as usize, |tx| q.pop(tx)) {
                        got.push(v);
                    } else {
                        std::thread::yield_now();
                    }
                }
                got
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1200, "every pushed item popped exactly once");
    }
}
