//! A bounded transactional binary min-heap (priority queue).

use rococo_stm::{Abort, Addr, TmHeap, Transaction};

// Layout: [size, cap, (key, val) * cap].
const SIZE: usize = 0;
const CAP: usize = 1;
const DATA: usize = 2;

/// A bounded min-priority queue of `(key, value)` pairs (`yada`'s
/// bad-triangle work heap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmPq {
    base: Addr,
}

impl TmPq {
    /// Allocates an empty heap with room for `cap` entries
    /// (non-transactional).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn create(heap: &TmHeap, cap: usize) -> Self {
        assert!(cap > 0, "priority-queue capacity must be positive");
        let base = heap.alloc(DATA + cap * 2);
        heap.store_direct(base + CAP, cap as u64);
        Self { base }
    }

    fn key_at(&self, i: usize) -> Addr {
        self.base + DATA + i * 2
    }

    fn val_at(&self, i: usize) -> Addr {
        self.base + DATA + i * 2 + 1
    }

    /// Pushes `(key, val)`; returns `false` if the heap is full.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn push<T: Transaction>(&self, tx: &mut T, key: u64, val: u64) -> Result<bool, Abort> {
        let size = tx.read(self.base + SIZE)? as usize;
        let cap = tx.read(self.base + CAP)? as usize;
        if size >= cap {
            return Ok(false);
        }
        // Sift up.
        let mut i = size;
        tx.write(self.key_at(i), key)?;
        tx.write(self.val_at(i), val)?;
        while i > 0 {
            let parent = (i - 1) / 2;
            let pk = tx.read(self.key_at(parent))?;
            let ck = tx.read(self.key_at(i))?;
            if pk <= ck {
                break;
            }
            let pv = tx.read(self.val_at(parent))?;
            let cv = tx.read(self.val_at(i))?;
            tx.write(self.key_at(parent), ck)?;
            tx.write(self.val_at(parent), cv)?;
            tx.write(self.key_at(i), pk)?;
            tx.write(self.val_at(i), pv)?;
            i = parent;
        }
        tx.write(self.base + SIZE, size as u64 + 1)?;
        Ok(true)
    }

    /// Pops the minimum-key entry, if any.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn pop_min<T: Transaction>(&self, tx: &mut T) -> Result<Option<(u64, u64)>, Abort> {
        let size = tx.read(self.base + SIZE)? as usize;
        if size == 0 {
            return Ok(None);
        }
        let min_key = tx.read(self.key_at(0))?;
        let min_val = tx.read(self.val_at(0))?;
        let last_k = tx.read(self.key_at(size - 1))?;
        let last_v = tx.read(self.val_at(size - 1))?;
        tx.write(self.key_at(0), last_k)?;
        tx.write(self.val_at(0), last_v)?;
        let size = size - 1;
        tx.write(self.base + SIZE, size as u64)?;
        // Sift down.
        let mut i = 0usize;
        loop {
            let l = i * 2 + 1;
            let r = i * 2 + 2;
            let mut smallest = i;
            let mut sk = tx.read(self.key_at(i))?;
            if l < size {
                let lk = tx.read(self.key_at(l))?;
                if lk < sk {
                    smallest = l;
                    sk = lk;
                }
            }
            if r < size {
                let rk = tx.read(self.key_at(r))?;
                if rk < sk {
                    smallest = r;
                }
            }
            if smallest == i {
                break;
            }
            let ik = tx.read(self.key_at(i))?;
            let iv = tx.read(self.val_at(i))?;
            let jk = tx.read(self.key_at(smallest))?;
            let jv = tx.read(self.val_at(smallest))?;
            tx.write(self.key_at(i), jk)?;
            tx.write(self.val_at(i), jv)?;
            tx.write(self.key_at(smallest), ik)?;
            tx.write(self.val_at(smallest), iv)?;
            i = smallest;
        }
        Ok(Some((min_key, min_val)))
    }

    /// Number of stored entries.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<T: Transaction>(&self, tx: &mut T) -> Result<u64, Abort> {
        tx.read(self.base + SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rococo_stm::{atomically, SeqTm, TmConfig, TmSystem};

    fn setup(cap: usize) -> (SeqTm, TmPq) {
        let tm = SeqTm::with_config(TmConfig {
            heap_words: 4096,
            max_threads: 1,
        });
        let pq = TmPq::create(tm.heap(), cap);
        (tm, pq)
    }

    #[test]
    fn pops_in_key_order() {
        let (tm, pq) = setup(32);
        atomically(&tm, 0, |tx| {
            for k in [9u64, 3, 7, 1, 5] {
                assert!(pq.push(tx, k, k * 100)?);
            }
            let mut got = Vec::new();
            while let Some((k, v)) = pq.pop_min(tx)? {
                assert_eq!(v, k * 100);
                got.push(k);
            }
            assert_eq!(got, vec![1, 3, 5, 7, 9]);
            Ok(())
        });
    }

    #[test]
    fn full_heap_rejects() {
        let (tm, pq) = setup(2);
        atomically(&tm, 0, |tx| {
            assert!(pq.push(tx, 1, 0)?);
            assert!(pq.push(tx, 2, 0)?);
            assert!(!pq.push(tx, 3, 0)?);
            assert_eq!(pq.len(tx)?, 2);
            Ok(())
        });
    }

    #[test]
    fn duplicate_keys_allowed() {
        let (tm, pq) = setup(8);
        atomically(&tm, 0, |tx| {
            pq.push(tx, 4, 1)?;
            pq.push(tx, 4, 2)?;
            let a = pq.pop_min(tx)?.unwrap();
            let b = pq.pop_min(tx)?.unwrap();
            assert_eq!(a.0, 4);
            assert_eq!(b.0, 4);
            assert_ne!(a.1, b.1);
            Ok(())
        });
    }

    #[test]
    fn interleaved_push_pop_is_a_heap() {
        let (tm, pq) = setup(64);
        atomically(&tm, 0, |tx| {
            let mut x = 9u64;
            let mut model = std::collections::BinaryHeap::new();
            for step in 0..200 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if step % 3 != 2 {
                    let k = x % 1000;
                    if pq.push(tx, k, 0)? {
                        model.push(std::cmp::Reverse(k));
                    }
                } else {
                    let got = pq.pop_min(tx)?.map(|(k, _)| k);
                    let want = model.pop().map(|std::cmp::Reverse(k)| k);
                    assert_eq!(got, want, "step {step}");
                }
            }
            Ok(())
        });
    }
}
